#!/usr/bin/env python
"""Deterministic reproduction of a rare bug (§1, §6).

The paper argues trace modulation is "valuable in debugging mobile
systems because it enables the re-creation of conditions that trigger
rare but serious bugs".  This example stages exactly that workflow:

1. A fragile file-sync application runs over the live Wean scenario.
   It has a real bug: it gives up after a single RPC retry instead
   of backing off — but only the elevator ride's outage ever trips it.
2. The traversal is traced and distilled once.
3. The failure is then re-created *on demand, repeatedly, at the
   desk* by replaying the distilled trace on the wired testbed —
   no elevator required — and the fix is verified the same way.

Run:  python examples/debug_reproduction.py
"""

from __future__ import annotations

from repro import (
    Distiller,
    ModulationWorld,
    NfsClient,
    NfsServer,
    SERVER_ADDR,
    WeanScenario,
    collect_trace,
    install_modulation,
    measure_modulation_network,
)
from repro.protocols.rpc import RpcTimeout
from repro.sim import Timeout


class FileSyncApp:
    """Synchronizes a directory over NFS once per second.

    ``fragile=True`` reproduces the bug: any RPC timeout aborts the
    whole sync session.  The fixed version retries after backoff.
    """

    def __init__(self, client: NfsClient, fragile: bool):
        self.client = client
        self.fragile = fragile
        self.synced = 0
        self.crashed = False

    def run(self, duration: float):
        sim = self.client.host.sim
        # Tighter timeout than stock NFS: the app is latency-sensitive.
        self.client.rpc.initial_timeout = 0.8
        self.client.rpc.max_retries = 1 if self.fragile else 8
        base = yield from self.client.walk("sync")
        start = sim.now
        while sim.now - start < duration:
            try:
                entries = yield from self.client.readdir(base)
                for _, fid in entries:
                    yield from self.client.getattr(fid, force=True)
                self.synced += 1
            except RpcTimeout:
                if self.fragile:
                    self.crashed = True  # the bug: no retry, just die
                    return
                yield Timeout(2.0)
            yield Timeout(1.0)


def run_session(world, fragile, duration=200.0):
    server = NfsServer(world.server)
    server.fs.makedirs("sync")
    for i in range(6):
        server.fs.create_file(f"sync/doc{i}.txt", 2000)
    server.start()
    client = NfsClient(world.laptop, SERVER_ADDR)
    app = FileSyncApp(client, fragile=fragile)
    proc = world.laptop.spawn(app.run(duration))
    t = 0.0
    while proc.alive and t < duration + 30.0:
        t += 10.0
        world.run(until=t)
    return app


def main() -> None:
    scenario = WeanScenario()

    print("1. Field failure: the fragile app rides the Wean elevator...")
    live = scenario.make_live_world(seed=0, trial=0)
    app = run_session(live, fragile=True)
    print(f"   live run: synced {app.synced} times, "
          f"crashed={app.crashed}  <- the rare bug, seen once in the field")

    print("\n2. Collect + distill one traversal of the same path...")
    records = collect_trace(scenario, seed=0, trial=0)
    replay = Distiller().distill(records, name="wean-bug").replay
    comp = measure_modulation_network(duration=15.0).vb

    print("\n3. Re-create the failure at the desk, deterministically:")
    for attempt in range(3):
        world = ModulationWorld(seed=42)  # same seed -> same run
        install_modulation(world.laptop, world.laptop_device, replay,
                           world.rngs.stream("mod"),
                           compensation_vb=comp, loop=True)
        app = run_session(world, fragile=True)
        print(f"   replay #{attempt + 1}: synced {app.synced} times, "
              f"crashed={app.crashed}")

    print("\n4. Verify the fix against the identical conditions:")
    world = ModulationWorld(seed=42)
    install_modulation(world.laptop, world.laptop_device, replay,
                       world.rngs.stream("mod"),
                       compensation_vb=comp, loop=True)
    app = run_session(world, fragile=False)
    print(f"   fixed app: synced {app.synced} times, "
          f"crashed={app.crashed}  <- survives the replayed outage")


if __name__ == "__main__":
    main()
