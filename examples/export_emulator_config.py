#!/usr/bin/env python
"""Driving modern emulators from a distilled trace.

Trace modulation's lineage runs straight to Linux ``netem`` and to
Mahimahi's record-and-replay shells.  This example closes the loop: it
collects and distills a Wean traversal (elevator outage included),
then exports the replay trace as

* a ``tc netem`` shell script that steps rate/delay/loss through the
  trace's quality tuples, and
* an ``mm-link`` packet-delivery trace plus the matching
  ``mm-delay``/``mm-loss`` invocation,

so the very network this repository simulates can be imposed on real
Linux hosts.

Run:  python examples/export_emulator_config.py [output-dir]
"""

from __future__ import annotations

import os
import sys

from repro import Distiller, WeanScenario, collect_trace
from repro.core.export import (
    to_mahimahi_commands,
    to_mahimahi_trace,
    to_netem_script,
)


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "/tmp/repro-export"
    os.makedirs(out_dir, exist_ok=True)

    print("Collecting and distilling one Wean traversal...")
    records = collect_trace(WeanScenario(), seed=0, trial=0)
    replay = Distiller().distill(records, name="wean").replay
    print(f"  {len(replay)} tuples; "
          f"{replay.mean_bandwidth_bps() / 1e6:.2f} Mb/s bottleneck, "
          f"{replay.mean_loss() * 100:.1f}% mean loss "
          f"(the elevator ride is in there)")

    netem_path = os.path.join(out_dir, "wean-netem.sh")
    with open(netem_path, "w", encoding="utf-8") as f:
        f.write(to_netem_script(replay, dev="eth0", loop=True))
    os.chmod(netem_path, 0o755)

    mm_path = os.path.join(out_dir, "wean.up")
    with open(mm_path, "w", encoding="utf-8") as f:
        f.write(to_mahimahi_trace(replay))

    print(f"\nWrote {netem_path}")
    print("  apply with:   sudo sh wean-netem.sh eth0")
    print("  (steps `tc qdisc change ... netem` once per second, looping)")

    print(f"\nWrote {mm_path} "
          f"({sum(1 for _ in open(mm_path))} delivery opportunities)")
    print("  run inside:   "
          + to_mahimahi_commands(replay, "wean.up").strip())

    # Show the elevator in the generated netem schedule.
    with open(netem_path) as f:
        changes = [line for line in f if "qdisc change" in line]
    worst = max(changes, key=lambda line: "loss" in line and
                float(line.split("loss ")[1].rstrip("%\n"))
                if "loss" in line else 0.0)
    print("\nThe worst second of the traversal, as netem sees it:")
    print("  " + worst.strip())


if __name__ == "__main__":
    main()
