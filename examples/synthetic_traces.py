#!/usr/bin/env python
"""Modulation with synthetic traces (§6).

The paper's conclusion points out that replay traces need not come from
real networks: synthetic traces "generate characteristics that can only
be approximated by actual networks" — step and impulse bandwidth
variations for exercising adaptive systems (their reference [14]).

This example subjects a continuously-transferring TCP connection to a
bandwidth square wave and to a bandwidth impulse, and prints the
observed goodput over time — the raw material for studying an adaptive
application's agility.

Run:  python examples/synthetic_traces.py
"""

from __future__ import annotations

from repro import (
    ModulationWorld,
    SERVER_ADDR,
    LAPTOP_ADDR,
    impulse_trace,
    install_modulation,
    step_trace,
)
from repro.sim import Timeout


def goodput_timeline(trace, duration=60.0, bucket=5.0, seed=7):
    """Continuous bulk transfer; returns per-bucket goodput in Mb/s."""
    world = ModulationWorld(seed=seed)
    install_modulation(world.laptop, world.laptop_device, trace,
                       world.rngs.stream("mod"), compensation_vb=0.8e-6,
                       loop=True)
    progress = []

    def server():
        listener = world.server.tcp.listen(SERVER_ADDR, 2000)
        conn = yield from listener.accept()
        while True:
            got = yield from conn.recv_some()
            if got == 0:
                break
            progress.append((world.sim.now, got))

    def client():
        conn = yield from world.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR,
                                                   2000)
        while world.sim.now < duration:
            yield from conn.send_wait(8192)
        yield from conn.drain()
        yield from conn.close_and_wait()

    world.server.spawn(server())
    world.laptop.spawn(client())
    world.run(until=duration + 5.0)

    buckets = [0] * int(duration / bucket)
    for when, nbytes in progress:
        idx = int(when / bucket)
        if idx < len(buckets):
            buckets[idx] += nbytes
    return [b * 8 / bucket / 1e6 for b in buckets]


def render(label, series, scale=8.0):
    print(f"\n{label}")
    for i, mbps in enumerate(series):
        bar = "#" * int(round(mbps / scale * 40))
        print(f"  {i * 5:>3}-{i * 5 + 5:<3}s {bar} {mbps:.2f} Mb/s")


def main() -> None:
    step = step_trace(duration=60.0, period=15.0, latency=5e-3,
                      low_bandwidth_bps=0.4e6, high_bandwidth_bps=1.8e6)
    render("Step response: bandwidth square wave (0.4 <-> 1.8 Mb/s, 15 s)",
           goodput_timeline(step), scale=2.0)

    impulse = impulse_trace(duration=60.0, impulse_at=25.0, impulse_width=10.0,
                            latency=5e-3, base_bandwidth_bps=1.8e6,
                            impulse_bandwidth_bps=0.15e6)
    render("Impulse response: 10 s collapse to 0.15 Mb/s at t=25 s",
           goodput_timeline(impulse), scale=2.0)

    print("\nTCP tracks the square wave with a lag set by its congestion "
          "window growth;\nthe impulse shows the slow recovery after a "
          "coarse retransmission timeout —\nexactly the behaviours an "
          "adaptive transport or application must ride out.")


if __name__ == "__main__":
    main()
