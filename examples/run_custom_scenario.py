#!/usr/bin/env python
"""Run a data-only scenario through the cached pipeline API.

A scenario can be pure data — a TOML file of piecewise channel curves —
and still drive the paper's whole protocol: collect a traced traversal,
distill it into a replay trace, and modulate a benchmark over it.  This
example does exactly that with ``custom_scenario.toml``, twice, through
a content-addressed artifact cache: the second sweep loads every stage
from the store instead of recomputing it.

Run:  python examples/run_custom_scenario.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.scenarios import load_scenario
from repro.validation import FtpRunner, run_validation

HERE = Path(__file__).resolve().parent


def main() -> None:
    scenario = load_scenario(HERE / "custom_scenario.toml")
    print(f"loaded scenario {scenario.name!r}: "
          f"{scenario.duration:.0f}s traversal, "
          f"{len(scenario.checkpoints)} checkpoints")

    runner = FtpRunner(nbytes=200_000, direction="send")
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        started = time.perf_counter()
        cold = run_validation(scenario, runner, seed=0, trials=1,
                              workers=1, cache=cache_dir)
        cold_s = time.perf_counter() - started
        print(f"\ncold sweep: {cold.cache_misses} stage(s) computed "
              f"in {cold_s:.1f}s")
        print(cold.render(title=f"{scenario.name}: ftp-send, 1 trial"))

        started = time.perf_counter()
        warm = run_validation(scenario, runner, seed=0, trials=1,
                              workers=1, cache=cache_dir)
        warm_s = time.perf_counter() - started
        print(f"\nwarm sweep: {warm.cache_hits} hit(s), "
              f"{warm.cache_misses} recomputed, {warm_s:.2f}s "
              f"({cold_s / max(warm_s, 1e-9):.0f}x faster)")
        assert warm.render() == cold.render(), "cache changed results?!"
        print("warm table is byte-identical to the cold one")


if __name__ == "__main__":
    main()
