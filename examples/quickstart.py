#!/usr/bin/env python
"""Quickstart: the full trace-modulation pipeline in one page.

1. Walk the Porter path with the instrumented laptop, pinging the wired
   server (collection, §3.1).
2. Reduce the observations to a replay trace of network quality tuples
   (distillation, §3.2).
3. Replay that trace on an isolated Ethernet and measure an unmodified
   application — here a simple latency probe — experiencing the
   original wireless network (modulation, §3.3).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import statistics

from repro import (
    Distiller,
    ModulationWorld,
    PorterScenario,
    SERVER_ADDR,
    LAPTOP_ADDR,
    collect_trace,
    install_modulation,
    measure_modulation_network,
)
from repro.sim import Timeout


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Collection: one traversal of the Porter path.
    # ------------------------------------------------------------------
    scenario = PorterScenario()
    print(f"Collecting a trace of the {scenario.name!r} scenario "
          f"({scenario.duration:.0f} s traversal)...")
    records = collect_trace(scenario, seed=0, trial=0)
    print(f"  {len(records)} trace records collected")

    # ------------------------------------------------------------------
    # 2. Distillation: records -> replay trace.
    # ------------------------------------------------------------------
    result = Distiller().distill(records, name="porter-demo")
    replay = result.replay
    print(f"  distilled {result.groups_used} packet groups "
          f"({result.groups_corrected} corrected) into "
          f"{len(replay)} quality tuples")
    print(f"  mean latency  {replay.mean_latency() * 1e3:6.2f} ms")
    print(f"  mean bandwidth{replay.mean_bandwidth_bps() / 1e6:6.2f} Mb/s")
    print(f"  mean loss     {replay.mean_loss() * 100:6.2f} %")

    # The replay trace is a small, human-readable artifact:
    replay.save("/tmp/porter-demo.json")
    print("  replay trace saved to /tmp/porter-demo.json")

    # ------------------------------------------------------------------
    # 3. Modulation: replay the trace over an isolated Ethernet.
    # ------------------------------------------------------------------
    comp = measure_modulation_network(duration=20.0)
    print(f"Measured testbed bottleneck cost: {comp.vb * 1e6:.2f} us/byte "
          f"(~{comp.bandwidth_bps / 1e6:.1f} Mb/s) -> delay compensation")

    world = ModulationWorld(seed=1)
    install_modulation(world.laptop, world.laptop_device, replay,
                       world.rngs.stream("mod"),
                       compensation_vb=comp.vb, loop=True)

    rtts = []
    world.laptop.icmp.on_echo_reply(
        1, lambda pkt, now: rtts.append(now - pkt.meta["echo_sent_at"]))

    def probe():
        yield Timeout(0.5)
        for seq in range(30):
            world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, seq,
                                        1400)
            yield Timeout(1.0)

    world.laptop.spawn(probe())
    world.run(until=35.0)

    print(f"\nModulated Ethernet now behaves like the Porter WaveLAN:")
    print(f"  {len(rtts)}/30 probes answered "
          f"(loss replayed from the trace)")
    print(f"  RTT median {statistics.median(rtts) * 1e3:.1f} ms, "
          f"max {max(rtts) * 1e3:.1f} ms "
          f"(raw Ethernet would be ~2.5 ms)")


if __name__ == "__main__":
    main()
