#!/usr/bin/env python
"""Compare an application live vs. modulated on any scenario.

This is the paper's validation loop in miniature, usable from the
command line:

    python examples/emulate_scenario.py wean ftp
    python examples/emulate_scenario.py flagstaff web
    python examples/emulate_scenario.py chatterbox andrew --trials 2

It runs live trials over the simulated WaveLAN, collects and distills
traces, runs modulated trials on the isolated Ethernet, and reports the
paper's accuracy criterion (difference of means vs. the sum of the
standard deviations).
"""

from __future__ import annotations

import argparse

from repro import (
    AndrewRunner,
    FtpRunner,
    WebRunner,
    scenario_by_name,
    validate_scenario,
)

RUNNERS = {
    "ftp": lambda: FtpRunner(),
    "web": lambda: WebRunner(),
    "andrew": lambda: AndrewRunner(),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scenario",
                        choices=["wean", "porter", "flagstaff", "chatterbox"])
    parser.add_argument("benchmark", choices=sorted(RUNNERS))
    parser.add_argument("--trials", type=int, default=2,
                        help="trials per condition (paper used 4)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = scenario_by_name(args.scenario)
    runner = RUNNERS[args.benchmark]()
    print(f"Validating {args.benchmark!r} on {args.scenario!r} "
          f"({args.trials} trials per condition)...")

    validation = validate_scenario(scenario, runner, seed=args.seed,
                                   trials=args.trials)

    width = max(len(m) for m in validation.comparisons)
    print(f"\n{'metric':<{width}}  {'real (s)':>16}  {'modulated (s)':>16}  "
          f"{'dist/sigma':>10}  within")
    for metric, comp in validation.comparisons.items():
        print(f"{metric:<{width}}  {comp.real.format():>16}  "
              f"{comp.modulated.format():>16}  "
              f"{comp.sigma_distance:>10.2f}  "
              f"{'yes' if comp.accurate else 'NO'}")

    replay = validation.distillations[0].replay
    print(f"\nFirst distilled trace: {len(replay)} tuples, "
          f"F={replay.mean_latency() * 1e3:.2f} ms, "
          f"bw={replay.mean_bandwidth_bps() / 1e6:.2f} Mb/s, "
          f"L={replay.mean_loss() * 100:.1f} %")


if __name__ == "__main__":
    main()
