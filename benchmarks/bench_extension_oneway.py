"""Extension — one-way distillation with synchronized clocks (§6).

The paper's proposed fix for its FTP symmetry failure: *"synchronized
clocks would allow us to use one-way rather than round-trip
measurements"*.  This bench quantifies the payoff on a strongly
asymmetric channel (heavy uplink loss, clean downlink):

* live FTP send is much slower than receive;
* symmetric (round-trip) distillation cannot express that — both
  modulated directions land together, losing the ordering;
* one-way distillation restores the ordering and moves each direction
  toward its live value.
"""

import pytest

from conftest import SEED, emit, once

from repro.analysis import render_table
from repro.apps.ftp import FtpClient, FtpServer
from repro.apps.ping import ModifiedPing
from repro.core import (
    Distiller,
    OneWayDistiller,
    install_asymmetric_modulation,
    install_modulation,
    trace_collection_run,
)
from repro.hosts import LiveWorld, ModulationWorld, SERVER_ADDR
from repro.net.wavelan import ChannelConditions, ChannelProfile
from repro.sim.rng import derive_seed
from repro.validation import compensation_vb

FTP_BYTES = 6 * 1024 * 1024


class AsymmetricChannel(ChannelProfile):
    """Heavy uplink loss, nearly clean downlink."""

    def conditions(self, t):
        return ChannelConditions(signal_level=12.0, loss_prob_up=0.035,
                                 loss_prob_down=0.002,
                                 bandwidth_factor=0.8,
                                 access_latency_mean=0.0004)


def _run_ftp(world, direction):
    FtpServer(world.server).start()
    client = FtpClient(world.laptop, SERVER_ADDR)
    sink = {}

    def body():
        result = yield from client.transfer(direction, FTP_BYTES)
        sink["t"] = result.elapsed

    proc = world.laptop.spawn(body())
    t = 0.0
    while proc.alive and t < 2400.0:
        t += 20.0
        world.run(until=t)
    if proc.error:
        raise proc.error
    return sink["t"]


def _experiment():
    profile = AsymmetricChannel()

    live = {}
    for i, direction in enumerate(("send", "recv")):
        world = LiveWorld(profile=profile, seed=derive_seed(SEED, f"l{i}"))
        live[direction] = _run_ftp(world, direction)

    # Two-ended collection (synchronized clocks: zero laptop drift).
    world = LiveWorld(profile=profile, seed=derive_seed(SEED, "c"),
                      laptop_clock_drift=0.0)
    mobile = trace_collection_run(world.laptop, world.radio)
    remote = trace_collection_run(world.server, world.server.devices[0])
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    world.laptop.spawn(ping.run(120.0))
    world.run(until=124.0)

    symmetric = Distiller().distill(mobile.records).replay
    oneway = OneWayDistiller().distill(mobile.records, remote.records)

    comp = compensation_vb()
    results = {"live": live}
    for mode in ("symmetric", "oneway"):
        results[mode] = {}
        for direction in ("send", "recv"):
            mod = ModulationWorld(
                seed=derive_seed(SEED, f"{mode}:{direction}"))
            if mode == "symmetric":
                install_modulation(mod.laptop, mod.laptop_device, symmetric,
                                   mod.rngs.stream("m"),
                                   compensation_vb=comp, loop=True)
            else:
                install_asymmetric_modulation(
                    mod.laptop, mod.laptop_device, oneway.up, oneway.down,
                    mod.rngs.stream("m"), compensation_vb=comp, loop=True)
            results[mode][direction] = _run_ftp(mod, direction)
    results["loss"] = {
        "symmetric": symmetric.mean_loss(),
        "up": oneway.up.mean_loss(),
        "down": oneway.down.mean_loss(),
    }
    return results


def test_extension_oneway_distillation(benchmark):
    results = once(benchmark, _experiment)
    live, sym, one = results["live"], results["symmetric"], results["oneway"]
    loss = results["loss"]
    emit("extension_oneway", render_table(
        ["Condition", "send (s)", "recv (s)", "send-recv gap"],
        [["live WaveLAN", f"{live['send']:.1f}", f"{live['recv']:.1f}",
          f"{live['send'] - live['recv']:+.1f}"],
         ["modulated, round-trip traces", f"{sym['send']:.1f}",
          f"{sym['recv']:.1f}", f"{sym['send'] - sym['recv']:+.1f}"],
         ["modulated, one-way traces", f"{one['send']:.1f}",
          f"{one['recv']:.1f}", f"{one['send'] - one['recv']:+.1f}"]],
        title="Extension: one-way distillation (synchronized clocks, §6)",
        caption=(f"Distilled loss: round-trip {loss['symmetric'] * 100:.1f}% "
                 f"both ways; one-way {loss['up'] * 100:.1f}% up / "
                 f"{loss['down'] * 100:.1f}% down. Channel truth: 3.5% up, "
                 f"0.2% down.")))

    # Live is strongly asymmetric.
    live_gap = live["send"] - live["recv"]
    assert live_gap > 8.0
    # Round-trip distillation collapses the ordering: both directions
    # replay the same symmetric trace.
    sym_gap = sym["send"] - sym["recv"]
    assert abs(sym_gap) < live_gap * 0.4
    # One-way distillation restores a clear send-slower-than-recv gap.
    oneway_gap = one["send"] - one["recv"]
    assert oneway_gap > 3.0
    assert oneway_gap > abs(sym_gap) + 2.0
    # The per-direction loss estimates separate cleanly and track the
    # channel truth (3.5% up / 0.2% down).
    assert loss["up"] > 4 * max(loss["down"], 1e-4)
    assert loss["up"] == pytest.approx(0.035, abs=0.02)
