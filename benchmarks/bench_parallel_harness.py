#!/usr/bin/env python
"""End-to-end benchmark for the parallel harness + engine hot path.

Produces ``BENCH_engine.json`` at the repo root with two families of
measurements:

1. **Engine microbenchmarks** — single-threaded events/sec of the
   current :class:`repro.sim.engine.Simulator` against the seed
   revision's simulator (a faithful copy lives in
   :mod:`_seed_baseline`), on two workloads:

   * ``chain`` — a pure event chain, one event schedules the next.
     Measures raw schedule/dispatch overhead (the ``__lt__``-ordered
     Event vs. the seed's wrapper tuples).
   * ``retransmit`` — the TCP pattern: every step schedules a data
     event *and* a far-future retransmit timer, then cancels the
     previous timer.  The seed's heap accumulates every dead timer
     until the end of time; the current engine's lazy compaction keeps
     the heap near its live size.

2. **Validation-sweep wall clock** — the paper's Figure-7 FTP protocol
   over all four scenarios (``run_validation`` with ``baseline=True``),
   timed three ways, interleaved, best-of-N:

   * ``seed_serial`` — the seed revision's hot paths (via
     :func:`_seed_baseline.seed_mode`), serial;
   * ``serial`` — current code, ``workers=1``;
   * ``parallel`` — current code, ``workers=N`` (default 4).

   The serial and parallel sweeps must render byte-identical tables;
   the script asserts this on every repeat.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_harness.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel_harness.py --quick  # CI smoke

The full run takes a few minutes; ``--quick`` runs a reduced sweep
(smaller transfer, fewer trials, one repeat) in well under a minute and
still exercises every code path.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _seed_baseline import SeedSimulator, seed_mode  # noqa: E402

from repro.scenarios import ALL_SCENARIOS  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.validation.harness import FtpRunner  # noqa: E402
from repro.validation.parallel import run_validation  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_engine.json")


# ======================================================================
# Engine microbenchmarks
# ======================================================================
def _run_chain(sim, n: int) -> None:
    """One event chain: each callback schedules its successor."""
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    sim.run()


def _run_retransmit(sim, n: int) -> None:
    """TCP-style churn: schedule a data event plus a 30 s retransmit
    timer each step, cancelling the previous timer (it never fires)."""
    state = {"remaining": n, "timer": None}

    def _rto() -> None:  # pragma: no cover - timers are always cancelled
        raise AssertionError("retransmit timer fired")

    def tick() -> None:
        if state["timer"] is not None:
            state["timer"].cancel()
        state["remaining"] -= 1
        if state["remaining"] > 0:
            state["timer"] = sim.schedule(30.0, _rto)
            sim.schedule(0.001, tick)
        else:
            state["timer"] = None

    state["timer"] = sim.schedule(30.0, _rto)
    sim.schedule(0.001, tick)
    sim.run(until=float(n))  # stop before any surviving timer would fire


_WORKLOADS: Dict[str, Callable[[object, int], None]] = {
    "chain": _run_chain,
    "retransmit": _run_retransmit,
}


def bench_engine(n_events: int, repeats: int) -> Dict[str, object]:
    """Time each workload on the seed and current engines, best-of-N."""
    out: Dict[str, object] = {"n_events": n_events, "workloads": {}}
    speedups: List[float] = []
    stats_sample = None
    for name, workload in _WORKLOADS.items():
        seed_best = cur_best = math.inf
        for _ in range(repeats):
            sim = SeedSimulator()
            t0 = time.perf_counter()
            workload(sim, n_events)
            seed_best = min(seed_best, time.perf_counter() - t0)

            sim = Simulator()
            t0 = time.perf_counter()
            workload(sim, n_events)
            cur_best = min(cur_best, time.perf_counter() - t0)
            if name == "retransmit":
                stats_sample = sim.stats().as_dict()
        speedup = seed_best / cur_best
        speedups.append(speedup)
        out["workloads"][name] = {
            "seed_seconds": round(seed_best, 4),
            "current_seconds": round(cur_best, 4),
            "seed_events_per_sec": round(n_events / seed_best),
            "current_events_per_sec": round(n_events / cur_best),
            "speedup": round(speedup, 3),
        }
        print(f"  engine/{name:<11} seed {seed_best:7.3f}s   "
              f"current {cur_best:7.3f}s   {speedup:5.2f}x")
    out["single_thread_speedup"] = round(
        math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3)
    out["stats_sample"] = stats_sample
    return out


# ======================================================================
# Validation-sweep wall clock
# ======================================================================
def _time_sweep(runner: FtpRunner, trials: int, workers: int):
    t0 = time.perf_counter()
    sweep = run_validation(ALL_SCENARIOS, runner, seed=0, trials=trials,
                           baseline=True, workers=workers)
    return time.perf_counter() - t0, sweep


def bench_sweep(ftp_bytes: int, trials: int, workers: int,
                repeats: int) -> Dict[str, object]:
    """Time the three sweep legs, interleaved so machine noise hits all
    legs equally; keep the best of ``repeats`` for each."""
    runner = FtpRunner(nbytes=ftp_bytes)
    best = {"seed_serial": math.inf, "serial": math.inf, "parallel": math.inf}
    tables_identical = True
    workers_used = 0
    for rep in range(repeats):
        with seed_mode():
            elapsed, _ = _time_sweep(runner, trials, workers=1)
        best["seed_serial"] = min(best["seed_serial"], elapsed)
        print(f"  sweep[{rep}] seed_serial {elapsed:6.2f}s")

        elapsed, serial_sweep = _time_sweep(runner, trials, workers=1)
        best["serial"] = min(best["serial"], elapsed)
        print(f"  sweep[{rep}] serial      {elapsed:6.2f}s")

        elapsed, parallel_sweep = _time_sweep(runner, trials, workers=workers)
        best["parallel"] = min(best["parallel"], elapsed)
        workers_used = parallel_sweep.workers_used
        print(f"  sweep[{rep}] parallel    {elapsed:6.2f}s "
              f"(workers={parallel_sweep.workers_used})")

        if serial_sweep.render() != parallel_sweep.render():
            tables_identical = False
            print("  WARNING: serial and parallel tables differ!")
    return {
        "scenarios": [cls.name for cls in ALL_SCENARIOS],
        "ftp_bytes": ftp_bytes,
        "trials": trials,
        "workers": workers,
        "workers_used": workers_used,
        "repeats": repeats,
        "seed_serial_seconds": round(best["seed_serial"], 3),
        "serial_seconds": round(best["serial"], 3),
        "parallel_seconds": round(best["parallel"], 3),
        "speedup_serial_vs_seed_serial": round(
            best["seed_serial"] / best["serial"], 3),
        "speedup_parallel_vs_serial": round(
            best["serial"] / best["parallel"], 3),
        "speedup_parallel_vs_seed_serial": round(
            best["seed_serial"] / best["parallel"], 3),
        "tables_identical": tables_identical,
    }


# ======================================================================
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced CI smoke run (smaller sweep, one repeat)")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the parallel leg (default 4)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="best-of-N repeats (default 3, or 1 with --quick)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero if the parallel sweep is slower "
                         "than serial")
    args = ap.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 3)
    repeats = max(1, repeats)
    if args.quick:
        engine_events, ftp_bytes, trials = 50_000, 200_000, 2
    else:
        engine_events, ftp_bytes, trials = 300_000, 2_000_000, 4

    print(f"engine microbenchmarks ({engine_events:,} events, "
          f"best of {repeats}):")
    engine = bench_engine(engine_events, repeats)

    print(f"validation sweep (4 scenarios, ftp {ftp_bytes:,}B x{trials} "
          f"trials, best of {repeats}):")
    sweep = bench_sweep(ftp_bytes, trials, args.workers, repeats)

    regression = sweep["speedup_parallel_vs_serial"] < 1.0
    result = {
        "benchmark": "parallel_harness",
        "mode": "quick" if args.quick else "full",
        "engine": engine,
        "sweep": sweep,
        "parallel_regression": regression,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    if regression:
        print(f"WARNING: parallel sweep slower than serial "
              f"({sweep['speedup_parallel_vs_serial']:.2f}x) — "
              f"parallel_regression", file=sys.stderr)

    print(f"\nsingle-thread engine speedup : "
          f"{engine['single_thread_speedup']:.2f}x (target >= 1.2x)")
    print(f"parallel vs seed serial      : "
          f"{sweep['speedup_parallel_vs_seed_serial']:.2f}x (target >= 2x)")
    print(f"parallel vs current serial   : "
          f"{sweep['speedup_parallel_vs_serial']:.2f}x")
    print(f"tables identical             : {sweep['tables_identical']}")
    print(f"[written to {args.out}]")
    if not sweep["tables_identical"]:
        return 1
    if regression and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
