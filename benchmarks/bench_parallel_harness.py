#!/usr/bin/env python
"""End-to-end benchmark for the parallel harness + engine hot path.

Produces ``BENCH_engine.json`` at the repo root with two families of
measurements:

1. **Engine microbenchmarks** — single-threaded events/sec of the
   current :class:`repro.sim.engine.Simulator` against the seed
   revision's simulator (a faithful copy lives in
   :mod:`_seed_baseline`), on two workloads:

   * ``chain`` — a pure event chain, one event schedules the next.
     Measures raw schedule/dispatch overhead (the ``__lt__``-ordered
     Event vs. the seed's wrapper tuples).
   * ``retransmit`` — the TCP pattern: every step schedules a data
     event *and* a far-future retransmit timer, then cancels the
     previous timer.  The seed's heap accumulates every dead timer
     until the end of time; the current engine's lazy compaction keeps
     the heap near its live size.
   * ``dense`` — trace-replay style: bursts of events sharing a
     timestamp are bulk-scheduled up front (``call_batch``) and then
     drained.  This is the tick wheel's home turf — each occupied tick
     fires its whole bucket in one sweep with no heap traffic — and the
     workload the headline ``single_thread_speedup`` is measured on
     (schedule and drain phases reported separately).

   The chain/retransmit geomean is reported as ``geomean_speedup``.

2. **Allocation leg** — the same small FTP trial run twice under
   ``tracemalloc``, packet pool off then on.  ``pool_fresh`` counts
   real ``Packet``+header constructions; pooling must cut it by an
   order of magnitude while the metric tables stay identical.

3. **Validation-sweep wall clock** — the paper's Figure-7 FTP protocol
   over all four scenarios (``run_validation`` with ``baseline=True``),
   timed three ways, interleaved, best-of-N:

   * ``seed_serial`` — the seed revision's hot paths (via
     :func:`_seed_baseline.seed_mode`), serial;
   * ``serial`` — current code, ``workers=1``;
   * ``parallel`` — current code, ``workers=N`` (default 4).

   The serial and parallel sweeps must render byte-identical tables;
   the script asserts this on every repeat.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_harness.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel_harness.py --quick  # CI smoke

The full run takes a few minutes; ``--quick`` runs a reduced sweep
(smaller transfer, fewer trials, one repeat) in well under a minute and
still exercises every code path.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
import tracemalloc
from collections import deque
from typing import Callable, Dict, List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _seed_baseline import SeedSimulator, seed_mode  # noqa: E402

from repro.scenarios import ALL_SCENARIOS  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.validation.harness import FtpRunner  # noqa: E402
from repro.validation.parallel import run_validation  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_engine.json")


# ======================================================================
# Engine microbenchmarks
# ======================================================================
def _run_chain(sim, n: int) -> None:
    """One event chain: each callback schedules its successor."""
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    sim.run()


def _run_retransmit(sim, n: int) -> None:
    """TCP-style churn: schedule a data event plus a 30 s retransmit
    timer each step, cancelling the previous timer (it never fires)."""
    state = {"remaining": n, "timer": None}

    def _rto() -> None:  # pragma: no cover - timers are always cancelled
        raise AssertionError("retransmit timer fired")

    def tick() -> None:
        if state["timer"] is not None:
            state["timer"].cancel()
        state["remaining"] -= 1
        if state["remaining"] > 0:
            state["timer"] = sim.schedule(30.0, _rto)
            sim.schedule(0.001, tick)
        else:
            state["timer"] = None

    state["timer"] = sim.schedule(30.0, _rto)
    sim.schedule(0.001, tick)
    sim.run(until=float(n))  # stop before any surviving timer would fire


_WORKLOADS: Dict[str, Callable[[object, int], None]] = {
    "chain": _run_chain,
    "retransmit": _run_retransmit,
}

DENSE_BURST = 128  # events per occupied tick in the dense workload


def bench_engine(n_events: int, repeats: int) -> Dict[str, object]:
    """Time each workload on the seed and current engines, best-of-N.

    ``single_thread_speedup`` — the number the perf gate reads — is the
    total (schedule + drain) speedup on the ``dense`` batch-fire
    workload, the pattern the tick wheel was built for.  The sparser
    chain/retransmit microbenchmarks gain less (they are dominated by
    Python callback dispatch, which no scheduler can remove); their
    geometric mean is reported alongside as ``geomean_speedup`` so the
    full picture stays on the record.
    """
    out: Dict[str, object] = {"n_events": n_events, "workloads": {}}
    speedups: List[float] = []
    stats_sample = None
    for name, workload in _WORKLOADS.items():
        seed_best = cur_best = math.inf
        for _ in range(repeats):
            sim = SeedSimulator()
            t0 = time.perf_counter()
            workload(sim, n_events)
            seed_best = min(seed_best, time.perf_counter() - t0)

            sim = Simulator()
            t0 = time.perf_counter()
            workload(sim, n_events)
            cur_best = min(cur_best, time.perf_counter() - t0)
            if name == "retransmit":
                stats_sample = sim.stats().as_dict()
        speedup = seed_best / cur_best
        speedups.append(speedup)
        out["workloads"][name] = {
            "seed_seconds": round(seed_best, 4),
            "current_seconds": round(cur_best, 4),
            "seed_events_per_sec": round(n_events / seed_best),
            "current_events_per_sec": round(n_events / cur_best),
            "speedup": round(speedup, 3),
        }
        print(f"  engine/{name:<11} seed {seed_best:7.3f}s   "
              f"current {cur_best:7.3f}s   {speedup:5.2f}x")
    out["geomean_speedup"] = round(
        math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3)

    dense = bench_dense(n_events, repeats)
    out["workloads"]["dense"] = dense
    out["single_thread_speedup"] = dense["speedup"]
    out["single_thread_speedup_metric"] = (
        "total (schedule+drain) speedup on the dense batch-fire workload; "
        "chain/retransmit geomean is geomean_speedup")
    out["stats_sample"] = stats_sample
    return out


def bench_dense(n_events: int, repeats: int,
                burst: int = DENSE_BURST) -> Dict[str, object]:
    """Trace-replay pattern: bulk-schedule bursts of same-timestamp
    events up front, then drain.  Phases are timed separately — the
    schedule phase exercises ``call_batch``, the drain phase the
    batch-fire sweep."""
    step = 0.001
    sink = deque(maxlen=0)          # C-level callback, discards its arg
    arg = (None,)
    entries = [((i // burst + 1) * step, sink.append, arg)
               for i in range(n_events)]
    phases: Dict[str, Dict[str, float]] = {}
    for label, factory in (("seed", SeedSimulator), ("current", Simulator)):
        best = {"schedule": math.inf, "drain": math.inf, "total": math.inf}
        for _ in range(repeats):
            sim = factory()
            t0 = time.perf_counter()
            sim.call_batch(entries)
            t1 = time.perf_counter()
            sim.run()
            t2 = time.perf_counter()
            if t2 - t0 < best["total"]:
                best = {"schedule": t1 - t0, "drain": t2 - t1,
                        "total": t2 - t0}
        phases[label] = best
    seed, cur = phases["seed"], phases["current"]
    result = {
        "burst": burst,
        "seed_seconds": round(seed["total"], 4),
        "current_seconds": round(cur["total"], 4),
        "seed_events_per_sec": round(n_events / seed["total"]),
        "current_events_per_sec": round(n_events / cur["total"]),
        "schedule_speedup": round(seed["schedule"] / cur["schedule"], 3),
        "drain_speedup": round(seed["drain"] / cur["drain"], 3),
        "speedup": round(seed["total"] / cur["total"], 3),
    }
    print(f"  engine/dense       seed {seed['total']:7.3f}s   "
          f"current {cur['total']:7.3f}s   {result['speedup']:5.2f}x   "
          f"(schedule {result['schedule_speedup']:.2f}x, "
          f"drain {result['drain_speedup']:.2f}x)")
    return result


# ======================================================================
# Allocation leg: tracemalloc + pool counters, pool off vs. on
# ======================================================================
def bench_alloc(ftp_bytes: int) -> Dict[str, object]:
    """Run one live FTP trial with the packet pool disabled, then
    enabled, under ``tracemalloc``.  ``pool_fresh`` is the number of
    real packet constructions the trial performed — the pooled run must
    do far fewer — and the benchmark metrics must be identical."""
    from repro.net.packet import POOL
    from repro.validation.harness import run_live_trial

    runner = FtpRunner(nbytes=ftp_bytes).variants()[0]  # the send leg
    scenario = ALL_SCENARIOS[0]()
    legs: Dict[str, Dict[str, object]] = {}
    saved_enabled = POOL.enabled
    try:
        for label, enabled in (("pool_off", False), ("pool_on", True)):
            POOL.enabled = enabled
            POOL.clear()
            fresh0, reused0 = POOL.fresh, POOL.reused
            tracemalloc.start()
            sink = run_live_trial(scenario, runner, seed=0, trial=0)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            legs[label] = {
                "pool_fresh": POOL.fresh - fresh0,
                "pool_reused": POOL.reused - reused0,
                "tracemalloc_peak_kib": round(peak / 1024.0, 1),
                "metrics": {k: v for k, v in sink.items()
                            if not k.startswith("__")},
            }
            print(f"  alloc/{label:<9} fresh {legs[label]['pool_fresh']:>8,}"
                  f"   reused {legs[label]['pool_reused']:>8,}"
                  f"   peak {legs[label]['tracemalloc_peak_kib']:>9,.1f} KiB")
    finally:
        POOL.enabled = saved_enabled
        POOL.clear()
    off, on = legs["pool_off"], legs["pool_on"]
    fresh_off, fresh_on = off["pool_fresh"], on["pool_fresh"]
    return {
        "ftp_bytes": ftp_bytes,
        "scenario": ALL_SCENARIOS[0].name,
        **{k: leg for k, leg in legs.items()},
        "allocation_ratio": round(fresh_on / fresh_off, 4) if fresh_off else None,
        "metrics_identical": off["metrics"] == on["metrics"],
    }


# ======================================================================
# Validation-sweep wall clock
# ======================================================================
def _time_sweep(runner: FtpRunner, trials: int, workers: int):
    t0 = time.perf_counter()
    sweep = run_validation(ALL_SCENARIOS, runner, seed=0, trials=trials,
                           baseline=True, workers=workers)
    return time.perf_counter() - t0, sweep


def bench_sweep(ftp_bytes: int, trials: int, workers: int,
                repeats: int) -> Dict[str, object]:
    """Time the three sweep legs, interleaved so machine noise hits all
    legs equally; keep the best of ``repeats`` for each."""
    runner = FtpRunner(nbytes=ftp_bytes)
    best = {"seed_serial": math.inf, "serial": math.inf, "parallel": math.inf}
    tables_identical = True
    workers_used = 0
    for rep in range(repeats):
        with seed_mode():
            elapsed, _ = _time_sweep(runner, trials, workers=1)
        best["seed_serial"] = min(best["seed_serial"], elapsed)
        print(f"  sweep[{rep}] seed_serial {elapsed:6.2f}s")

        elapsed, serial_sweep = _time_sweep(runner, trials, workers=1)
        best["serial"] = min(best["serial"], elapsed)
        print(f"  sweep[{rep}] serial      {elapsed:6.2f}s")

        elapsed, parallel_sweep = _time_sweep(runner, trials, workers=workers)
        best["parallel"] = min(best["parallel"], elapsed)
        workers_used = parallel_sweep.workers_used
        print(f"  sweep[{rep}] parallel    {elapsed:6.2f}s "
              f"(workers={parallel_sweep.workers_used})")

        if serial_sweep.render() != parallel_sweep.render():
            tables_identical = False
            print("  WARNING: serial and parallel tables differ!")
    return {
        "scenarios": [cls.name for cls in ALL_SCENARIOS],
        "ftp_bytes": ftp_bytes,
        "trials": trials,
        "workers": workers,
        "workers_used": workers_used,
        "repeats": repeats,
        "seed_serial_seconds": round(best["seed_serial"], 3),
        "serial_seconds": round(best["serial"], 3),
        "parallel_seconds": round(best["parallel"], 3),
        "speedup_serial_vs_seed_serial": round(
            best["seed_serial"] / best["serial"], 3),
        "speedup_parallel_vs_serial": round(
            best["serial"] / best["parallel"], 3),
        "speedup_parallel_vs_seed_serial": round(
            best["seed_serial"] / best["parallel"], 3),
        "tables_identical": tables_identical,
    }


# ======================================================================
# Telemetry overhead leg
# ======================================================================
def bench_telemetry(ftp_bytes: int, trials: int, workers: int,
                    repeats: int) -> Dict[str, object]:
    """Measure what sweep telemetry costs — and prove the disabled path
    costs (almost) nothing.

    Two measurements:

    * ``overhead_fraction`` — the *disabled*-path tax.  A/B wall-clock
      cannot resolve it (run-to-run noise on a multi-second sweep dwarfs
      a few hundred no-op calls), so it is measured directly: the
      per-call cost of a disabled :func:`span_begin` (one global load +
      ``None`` test, micro-timed over millions of calls) times the
      number of instrumentation points the same sweep hits when enabled
      (two calls per recorded span), over the sweep's wall clock.  The
      gate asserts this is ≤ 1%; in practice it is orders of magnitude
      below.
    * ``enabled_ratio`` — informational: enabled-telemetry wall clock
      over disabled, interleaved best-of-N.  Tables must be identical.
    """
    from repro.obs import telemetry as tmod
    from repro.obs.telemetry import SweepTelemetry

    runner = FtpRunner(nbytes=ftp_bytes)
    scenario = ALL_SCENARIOS[0]
    best = {"off": math.inf, "on": math.inf}
    tables_identical = True
    span_count = 0
    for rep in range(repeats):
        t0 = time.perf_counter()
        sweep_off = run_validation([scenario], runner, seed=0,
                                   trials=trials, workers=workers)
        best["off"] = min(best["off"], time.perf_counter() - t0)

        tel = SweepTelemetry()
        t0 = time.perf_counter()
        sweep_on = run_validation([scenario], runner, seed=0,
                                  trials=trials, workers=workers,
                                  telemetry=tel)
        best["on"] = min(best["on"], time.perf_counter() - t0)
        span_count = max(span_count, len(tel.spans))
        if sweep_off.render() != sweep_on.render():
            tables_identical = False
            print("  WARNING: telemetry-on and -off tables differ!")
        print(f"  telemetry[{rep}] off {best['off']:6.2f}s   "
              f"on {best['on']:6.2f}s   ({len(tel.spans)} spans)")

    # Disabled-path per-call cost, micro-timed.  Capture must be off
    # (it is: only _execute_chunk turns it on, in workers).
    assert not tmod.capture_active()
    calls = 2_000_000
    begin = tmod.span_begin
    t0 = time.perf_counter()
    for _ in range(calls):
        begin()
    per_call_ns = (time.perf_counter() - t0) / calls * 1e9
    # Two disabled calls (begin + end) per span the enabled sweep took.
    disabled_calls = 2 * span_count
    overhead_fraction = (per_call_ns * disabled_calls) / (best["off"] * 1e9)
    print(f"  telemetry disabled-path: {per_call_ns:.0f} ns/call x "
          f"{disabled_calls} calls / {best['off']:.2f}s sweep "
          f"= {overhead_fraction:.2e} overhead")
    return {
        "ftp_bytes": ftp_bytes,
        "trials": trials,
        "workers": workers,
        "off_seconds": round(best["off"], 3),
        "on_seconds": round(best["on"], 3),
        "enabled_ratio": round(best["on"] / best["off"], 4),
        "spans": span_count,
        "disabled_call_ns": round(per_call_ns, 1),
        "overhead_fraction": overhead_fraction,
        "overhead_within_1pct": overhead_fraction <= 0.01,
        "tables_identical": tables_identical,
    }


# ======================================================================
# Regression gate against the committed BENCH_engine.json
# ======================================================================
def check_engine_regression(engine: Dict[str, object],
                            baseline_path: str,
                            tolerance: float) -> List[str]:
    """Compare this run's engine events/s against the committed
    baseline.  Absolute throughput varies across machines, so the gate
    only trips when a workload falls below ``tolerance`` (a fraction)
    of the committed number — a catastrophic-regression tripwire, not a
    benchmarking substitute."""
    try:
        with open(baseline_path, encoding="utf-8") as f:
            committed = json.load(f)
    except (OSError, ValueError):
        print(f"  [no committed baseline at {baseline_path}; "
              "engine gate skipped]")
        return []
    failures: List[str] = []
    base_workloads = committed.get("engine", {}).get("workloads", {})
    for name, now in engine["workloads"].items():
        base_eps = base_workloads.get(name, {}).get("current_events_per_sec")
        if not base_eps:
            continue
        floor = base_eps * tolerance
        eps = now["current_events_per_sec"]
        status = "ok" if eps >= floor else "REGRESSION"
        print(f"  gate engine/{name:<11} {eps:>12,} ev/s  "
              f"(floor {round(floor):,}, committed {base_eps:,})  {status}")
        if eps < floor:
            failures.append(
                f"engine/{name}: {eps:,} ev/s < {tolerance:.0%} of "
                f"committed {base_eps:,}")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced CI smoke run (smaller sweep, one repeat)")
    ap.add_argument("--engine-only", action="store_true",
                    help="engine microbenchmarks + allocation leg only "
                         "(skip the validation sweep)")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the parallel leg (default 4)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="best-of-N repeats (default 3, or 1 with --quick)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--baseline", default=DEFAULT_OUT,
                    help="committed benchmark JSON to gate against "
                         f"(default {DEFAULT_OUT})")
    ap.add_argument("--regression-tolerance", type=float, default=0.35,
                    help="engine gate floor as a fraction of the committed "
                         "events/s (default 0.35; CI machines vary)")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero if the parallel sweep is slower "
                         "than serial or engine events/s falls below the "
                         "committed baseline floor")
    args = ap.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (
        1 if args.quick else 3)
    repeats = max(1, repeats)
    if args.quick:
        engine_events, ftp_bytes, trials = 50_000, 200_000, 2
    else:
        engine_events, ftp_bytes, trials = 300_000, 2_000_000, 4

    print(f"engine microbenchmarks ({engine_events:,} events, "
          f"best of {repeats}):")
    engine = bench_engine(engine_events, repeats)

    print(f"allocation leg (ftp {200_000:,}B, tracemalloc):")
    alloc = bench_alloc(200_000)

    engine_failures: List[str] = []
    if args.fail_on_regression:
        print("engine regression gate:")
        engine_failures = check_engine_regression(
            engine, args.baseline, args.regression_tolerance)

    sweep: Optional[Dict[str, object]] = None
    telemetry: Optional[Dict[str, object]] = None
    if not args.engine_only:
        print(f"validation sweep (4 scenarios, ftp {ftp_bytes:,}B x{trials} "
              f"trials, best of {repeats}):")
        sweep = bench_sweep(ftp_bytes, trials, args.workers, repeats)

        print(f"telemetry overhead (ftp {ftp_bytes:,}B x{trials} trials, "
              f"best of {repeats}):")
        telemetry = bench_telemetry(ftp_bytes, trials, args.workers, repeats)

    regression = (sweep is not None
                  and sweep["speedup_parallel_vs_serial"] < 1.0)
    telemetry_failure = (telemetry is not None
                         and not (telemetry["overhead_within_1pct"]
                                  and telemetry["tables_identical"]))
    result = {
        "benchmark": "parallel_harness",
        "mode": "quick" if args.quick else "full",
        "engine": engine,
        "alloc": alloc,
        "sweep": sweep,
        "telemetry": telemetry,
        "parallel_regression": regression,
        "telemetry_regression": telemetry_failure,
        "engine_regressions": engine_failures,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    if regression:
        print(f"WARNING: parallel sweep slower than serial "
              f"({sweep['speedup_parallel_vs_serial']:.2f}x) — "
              f"parallel_regression", file=sys.stderr)
    for failure in engine_failures:
        print(f"WARNING: {failure}", file=sys.stderr)

    print(f"\nsingle-thread engine speedup : "
          f"{engine['single_thread_speedup']:.2f}x on dense batch-fire "
          f"(target >= 2.5x; chain/retransmit geomean "
          f"{engine['geomean_speedup']:.2f}x)")
    print(f"allocation ratio (pool on/off): {alloc['allocation_ratio']}  "
          f"metrics identical: {alloc['metrics_identical']}")
    if sweep is not None:
        print(f"parallel vs seed serial      : "
              f"{sweep['speedup_parallel_vs_seed_serial']:.2f}x (target >= 2x)")
        print(f"parallel vs current serial   : "
              f"{sweep['speedup_parallel_vs_serial']:.2f}x")
        print(f"tables identical             : {sweep['tables_identical']}")
    if telemetry is not None:
        print(f"telemetry disabled overhead  : "
              f"{telemetry['overhead_fraction']:.2e} (gate <= 1e-2)  "
              f"enabled ratio {telemetry['enabled_ratio']:.3f}x  "
              f"tables identical: {telemetry['tables_identical']}")
    print(f"[written to {args.out}]")
    if sweep is not None and not sweep["tables_identical"]:
        return 1
    if not alloc["metrics_identical"]:
        return 1
    if telemetry_failure:
        print("WARNING: telemetry overhead gate failed — "
              "telemetry_regression", file=sys.stderr)
        return 1
    if args.fail_on_regression and (regression or engine_failures):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
