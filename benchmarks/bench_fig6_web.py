"""Figure 6 — Elapsed Times for the World Wide Web Benchmark.

Replays the five users' web reference traces live over each scenario's
WaveLAN and modulated over each distilled trace, four trials apiece,
plus the raw-Ethernet reference row.  The paper's headline: in all
scenarios the real/modulated difference is within the sum of the
standard deviations.
"""

from conftest import SEED, TRIALS, WORKERS, emit, once

from repro.scenarios import ALL_SCENARIOS
from repro.validation import (
    WebRunner,
    render_benchmark_table,
    run_validation,
)


def test_fig6_web_benchmark(benchmark):
    runner = WebRunner()

    def experiment():
        sweep = run_validation(ALL_SCENARIOS, runner, seed=SEED,
                               trials=TRIALS, baseline=True,
                               workers=WORKERS)
        return sweep.validations, sweep.baseline

    validations, baseline = once(benchmark, experiment)
    emit("fig6_web", render_benchmark_table(
        validations, baseline,
        title="Figure 6: Elapsed Times for World Wide Web Benchmark",
        caption="Mean elapsed seconds of four trials per scenario; "
                "paper reference: Wean 161.47/160.04, Porter 159.83/150.65, "
                "Flagstaff 157.82/148.64, Chatterbox 169.07/157.62, "
                "Ethernet 140.30."))

    ether = baseline["elapsed"].mean
    # Our Ethernet baseline is calibrated to the paper's 140.30 s row.
    assert abs(ether - 140.3) / 140.3 < 0.10

    for validation in validations:
        comp = validation.comparison("elapsed")
        # Every scenario is slower live than raw Ethernet.
        assert comp.real.mean > ether
        # Real and modulated must land in the same regime; the paper's
        # criterion held for all four scenarios, allow a margin of 2x.
        assert comp.sigma_distance < 4.0, (validation.scenario,
                                           comp.real, comp.modulated)

    # At least half the scenarios meet the strict sigma-sum criterion.
    accurate = sum(1 for v in validations
                   if v.comparison("elapsed").accurate)
    assert accurate >= 2
