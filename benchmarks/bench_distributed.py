#!/usr/bin/env python
"""Distributed-sweep scaling benchmark and fleet-equivalence gate.

Produces ``BENCH_distributed.json`` at the repo root, characterizing
the multi-node execution fabric against the single-machine pool it
grew out of:

* ``scaling efficiency`` — wall clock of one warmed validation sweep
  on a 2-pseudo-host remote fleet (4 workers each, private stores,
  full artifact-sync plane) vs the same sweep on one 8-worker pool.
  The fleet pays process launch, socket framing and artifact sync;
  the gate is that it keeps **>= 0.8** of the pool's throughput, so
  going distributed is never a large regression on one box — it only
  unlocks more boxes.
* ``artifact-sync economy`` — bytes moved by the fingerprint-keyed
  FETCH/HAVE plane in the remote leg vs the bulk result bytes the
  pickle data plane ships over the pool pipe.  Content addressing
  must move a small fraction of what bulk shipping would.
* ``dispatch overhead`` — the work-stealing scheduler's bookkeeping
  must stay **<= 2%** of sweep wall on every leg (the same gate
  ``bench_runtime.py`` pins for the in-machine backends).
* ``fleet equivalence`` — every leg renders the serial table byte for
  byte.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed.py          # full
    PYTHONPATH=src python benchmarks/bench_distributed.py --quick  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.scenarios import ALL_SCENARIOS  # noqa: E402
from repro.validation.harness import FtpRunner  # noqa: E402
from repro.validation.parallel import (  # noqa: E402
    TrialExecutor,
    run_validation,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_distributed.json")

# The tentpole gates.
SCALING_EFFICIENCY_LIMIT = 0.8
DISPATCH_OVERHEAD_LIMIT = 0.02
HOSTS = "local:4,local:4"
POOL_WORKERS = 8


def bench_leg(ftp_bytes: int, trials: int, seeds: int, *,
              workers: Optional[int], transport: str,
              hosts: Optional[str] = None) -> Dict[str, object]:
    """One warmed validation sweep on one backend configuration."""
    runner = FtpRunner(nbytes=ftp_bytes)
    exe = TrialExecutor(workers=workers, transport=transport, hosts=hosts)
    try:
        # Untimed warm-up: backend start (fleet launch for the remote
        # leg), registry + import heat on every worker.
        run_validation([ALL_SCENARIOS[0]], runner, seed=0, trials=1,
                       executor=exe)
        before = exe.transport_stats()
        t0 = time.perf_counter()
        sweep = run_validation(ALL_SCENARIOS, runner, seed=0,
                               trials=trials, seeds=seeds, baseline=True,
                               executor=exe)
        wall = time.perf_counter() - t0
        stats = exe.transport_stats()
        dispatch_ns = (int(stats.get("dispatch_ns") or 0)
                       - int(before.get("dispatch_ns") or 0))
        leg: Dict[str, object] = {
            "transport": exe.transport_used,
            "workers_used": exe.effective_workers,
            "wall_seconds": round(wall, 3),
            "dispatch_fraction": round(dispatch_ns / (wall * 1e9), 5),
            "ipc_bytes_recv": (int(stats.get("ipc_bytes_recv") or 0)
                               - int(before.get("ipc_bytes_recv") or 0)),
            "fallback_reason": exe.fallback_reason,
            "table": sweep.render(),
        }
        backend = stats.get("backend")
        if backend:
            sync = backend.get("sync") or {}
            leg["fleet"] = {
                "nodes": [{k: n[k] for k in ("host", "workers",
                                             "chunks", "jobs")}
                          for n in backend.get("nodes", [])],
                "redispatches": backend.get("redispatches", 0),
                "workers_lost": backend.get("workers_lost", 0),
                "sync_bytes_fetched": sync.get("bytes_fetched", 0),
                "sync_bytes_pushed": sync.get("bytes_pushed", 0),
                "fetch_requests": sync.get("fetch_requests", 0),
                "unique_keys_fetched": sync.get("unique_keys_fetched", 0),
            }
        return leg
    finally:
        exe.shutdown()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced CI smoke run (smaller transfer, "
                         "fewer trials)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero if scaling efficiency drops "
                         f"below {SCALING_EFFICIENCY_LIMIT} or dispatch "
                         f"overhead exceeds "
                         f"{DISPATCH_OVERHEAD_LIMIT:.0%}")
    args = ap.parse_args(argv)

    ftp_bytes, trials, seeds = ((200_000, 2, 1) if args.quick
                                else (2_000_000, 4, 2))

    print(f"sweep: {len(ALL_SCENARIOS)} scenarios, ftp {ftp_bytes:,}B "
          f"x{trials} trials x{seeds} seed(s), baseline on")
    serial = bench_leg(ftp_bytes, trials, seeds, workers=1,
                       transport="auto")
    print(f"  serial              {serial['wall_seconds']:7.2f}s")
    pool_pickle = bench_leg(ftp_bytes, trials, seeds,
                            workers=POOL_WORKERS, transport="pickle")
    print(f"  pool x{POOL_WORKERS} (pickle)   "
          f"{pool_pickle['wall_seconds']:7.2f}s")
    pool = bench_leg(ftp_bytes, trials, seeds, workers=POOL_WORKERS,
                     transport="auto")
    print(f"  pool x{POOL_WORKERS} (envelope) {pool['wall_seconds']:7.2f}s")
    remote = bench_leg(ftp_bytes, trials, seeds, workers=None,
                       transport="remote", hosts=HOSTS)
    print(f"  remote {HOSTS}  {remote['wall_seconds']:7.2f}s")

    tables_identical = (serial["table"] == pool_pickle["table"]
                        == pool["table"] == remote["table"])
    efficiency = round(
        float(pool["wall_seconds"]) / float(remote["wall_seconds"]), 4)
    # The pickle leg exists for the byte-economy comparison; its
    # dispatch fraction includes pickling every bulk payload, which is
    # exactly what the envelope/remote data planes exist to avoid, so
    # the 2% gate covers the default planes (same gate as
    # bench_runtime.py).
    overhead = max(float(leg["dispatch_fraction"])
                   for leg in (serial, pool, remote))
    sync_bytes = int(remote["fleet"]["sync_bytes_fetched"])
    bulk_bytes = int(pool_pickle["ipc_bytes_recv"])
    sync_ratio = (round(sync_bytes / bulk_bytes, 4) if bulk_bytes
                  else None)

    result: Dict[str, object] = {
        "benchmark": "distributed_sweep",
        "mode": "quick" if args.quick else "full",
        "workload": {
            "scenarios": [cls.name for cls in ALL_SCENARIOS],
            "ftp_bytes": ftp_bytes,
            "trials": trials,
            "seeds": seeds,
            "hosts": HOSTS,
            "pool_workers": POOL_WORKERS,
            "baseline": True,
        },
        "legs": {
            name: {k: v for k, v in leg.items() if k != "table"}
            for name, leg in (("serial", serial),
                              ("pool_pickle", pool_pickle),
                              ("pool_envelope", pool),
                              ("remote", remote))
        },
        "scaling_efficiency": efficiency,
        "scaling_efficiency_limit": SCALING_EFFICIENCY_LIMIT,
        "artifact_sync_bytes": sync_bytes,
        "bulk_result_bytes": bulk_bytes,
        "sync_to_bulk_ratio": sync_ratio,
        "dispatch_overhead_fraction": round(overhead, 5),
        "dispatch_overhead_limit": DISPATCH_OVERHEAD_LIMIT,
        "tables_identical": tables_identical,
    }
    result["scaling_regression"] = efficiency < SCALING_EFFICIENCY_LIMIT
    result["dispatch_regression"] = overhead > DISPATCH_OVERHEAD_LIMIT

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    print(f"\nscaling efficiency (pool/remote) : {efficiency:.2f} "
          f"(limit {SCALING_EFFICIENCY_LIMIT})")
    print(f"artifact-sync vs bulk bytes      : {sync_bytes:,} / "
          f"{bulk_bytes:,}"
          + (f" ({sync_ratio:.1%})" if sync_ratio is not None else ""))
    print(f"dispatch overhead (worst leg)    : {overhead:.3%} "
          f"(limit {DISPATCH_OVERHEAD_LIMIT:.0%})")
    print(f"tables identical                 : {tables_identical}")
    print(f"[written to {args.out}]")

    failed = not tables_identical
    if result["scaling_regression"]:
        print("WARNING: fleet scaling efficiency below limit "
              "(scaling_regression)", file=sys.stderr)
        failed = failed or args.fail_on_regression
    if result["dispatch_regression"]:
        print("WARNING: scheduler dispatch overhead above limit "
              "(dispatch_regression)", file=sys.stderr)
        failed = failed or args.fail_on_regression
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
