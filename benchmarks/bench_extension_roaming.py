"""Extension — explicit WavePoint roaming (§3.1.1).

The paper's scenarios fold handoff effects into hand-measured profiles;
this extension models the roaming protocol explicitly (signal-strength
association with hysteresis, a deauth/reauth outage per handoff) and
shows that the methodology handles it end to end: the handoff signature
survives collection and distillation, and a benchmark modulated from
the distilled trace tracks the live run.
"""

from conftest import SEED, emit, once

from repro.analysis import render_table
from repro.scenarios import RoamingScenario
from repro.validation import (
    FtpRunner,
    characterize_scenario,
    validate_scenario,
)


def test_extension_roaming_characterization(benchmark):
    scenario = RoamingScenario(wavepoints=4, handoff_outage=0.8)
    character = once(benchmark,
                     lambda: characterize_scenario(scenario, seed=SEED,
                                                   trials=2))
    emit("extension_roaming_traces", character.render())

    # The sawtooth coverage pattern: checkpoints under WavePoints see
    # stronger signal than the boundary checkpoints.
    labels, lo, hi = character.checkpoint_ranges("signal")
    # r0 bin [0, 0.2) contains AP0 (0.125); r1 bin [0.2, 0.4) spans the
    # AP0/AP1 boundary (0.25) and AP1 (0.375) — both see peaks; the
    # boundary dips show up in the minima instead.
    assert max(hi) > 20.0
    assert min(lo) < max(hi) - 8.0  # coverage dips between WavePoints

    # Handoffs leave loss spikes somewhere along the path.
    loss_values = character.all_values("loss_pct")
    assert max(loss_values) > 5.0


def test_extension_roaming_validation(benchmark):
    scenario = RoamingScenario(wavepoints=4, handoff_outage=0.8)
    validation = once(benchmark,
                      lambda: validate_scenario(scenario, FtpRunner(),
                                                seed=SEED, trials=2))
    rows = []
    for metric, comp in validation.comparisons.items():
        rows.append([metric, comp.real.format(), comp.modulated.format(),
                     f"{comp.sigma_distance:.2f}"])
    emit("extension_roaming_ftp", render_table(
        ["Metric", "Real (s)", "Modulated (s)", "dist/sigma"], rows,
        title="Extension: FTP under explicit WavePoint roaming",
        caption="Live handoff outages are captured by collection/"
                "distillation and re-imposed by modulation."))

    for metric, comp in validation.comparisons.items():
        ratio = comp.modulated.mean / comp.real.mean
        assert 0.7 < ratio < 1.3, (metric, comp.real, comp.modulated)
