"""Figure 5 — Chatterbox Traces (busy conference room).

No motion: five SynRGen laptops contend for the medium.  Signal level
stays consistently high (~18), yet latency and bandwidth are worse than
the quiet mobile scenarios because of the interfering traffic.  The
figure renders histograms rather than per-checkpoint series.
"""

from conftest import SEED, TRIALS, emit, once

from repro.scenarios import ChatterboxScenario, PorterScenario
from repro.validation import characterize_scenario


def test_fig5_chatterbox_traces(benchmark):
    character = once(benchmark,
                     lambda: characterize_scenario(ChatterboxScenario(),
                                                   seed=SEED, trials=TRIALS))
    emit("fig5_chatterbox", character.render())

    # Consistently high signal (typically around 18).
    signal = character.all_values("signal")
    mean_signal = sum(signal) / len(signal)
    assert 15.0 < mean_signal < 21.0

    # In spite of the signal, latency suffers from contention: the
    # upper tail stretches far beyond a quiet channel's.
    latency = sorted(character.all_values("latency_ms"))
    p90 = latency[int(len(latency) * 0.9)]
    assert p90 > 3.0

    # Loss rates remain reasonable.
    loss = character.all_values("loss_pct")
    assert sorted(loss)[len(loss) // 2] < 8.0


def test_fig5_interference_degrades_vs_quiet_porter(benchmark):
    chatter = once(benchmark,
                   lambda: characterize_scenario(ChatterboxScenario(),
                                                 seed=SEED, trials=2))
    porter = characterize_scenario(PorterScenario(), seed=SEED, trials=2)

    def mean(vals):
        return sum(vals) / len(vals)

    # "the presence of interfering traffic results in poorer latency
    # and bandwidth relative to previous scenarios" — despite the
    # chatterbox channel itself being cleaner than Porter's.
    assert mean(chatter.all_values("bandwidth_kbps")) < \
        mean(porter.all_values("bandwidth_kbps")) * 1.25
    assert mean(chatter.all_values("latency_ms")) > 0.5
