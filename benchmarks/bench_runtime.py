#!/usr/bin/env python
"""Runtime dispatch-overhead benchmark and backend-equivalence gate.

Produces ``BENCH_runtime.json`` at the repo root, characterizing the
``repro.runtime`` layer itself rather than the simulations it drives:

* ``dispatch overhead`` — the wall time the scheduler spends inside
  ``submit_jobs`` (chunking, fingerprint cache lookups, pickling,
  backend hand-off; the ``executor.dispatch_ns`` counter) as a
  fraction of a full validation sweep's wall clock.  **Gate: <= 2%.**
  This is the number that must not regress now that validate, check,
  golden and fuzz all route through one generic scheduler instead of
  the old trial-specific pool loop.
* ``echo micro`` — per-job round-trip cost of the pure runtime on
  every backend (serial inline, warm pool, loopback socket), measured
  with the zero-work ``echo`` job kind, so backend overhead is visible
  without simulation noise.
* ``backend equivalence`` — the pool and socket sweeps must render the
  serial sweep's table byte for byte.

Full mode adds a ``check`` leg (two scenarios through the invariant
pipeline, serial vs parallel) to record the end-to-end speedup of the
ported consumers on multi-core machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py          # full
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.runtime import Job, Scheduler, runner_ref  # noqa: E402
from repro.runtime.job import echo  # noqa: E402
from repro.scenarios import ALL_SCENARIOS  # noqa: E402
from repro.validation.harness import FtpRunner  # noqa: E402
from repro.validation.parallel import (  # noqa: E402
    TrialExecutor,
    run_validation,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_runtime.json")

# The tentpole gate: scheduler bookkeeping must stay a rounding error
# next to the simulations it dispatches.
DISPATCH_OVERHEAD_LIMIT = 0.02

_ECHO = runner_ref(echo)


def _echo_jobs(count: int) -> List[Job]:
    return [Job(kind="echo", runner=_ECHO, payload=i, label=f"echo:{i}",
                cost_hint=0.1) for i in range(count)]


def bench_sweep(ftp_bytes: int, trials: int, workers: int,
                transport: str) -> Dict[str, object]:
    """One warmed validation sweep; dispatch_ns vs wall."""
    runner = FtpRunner(nbytes=ftp_bytes)
    exe = TrialExecutor(workers=workers, transport=transport)
    try:
        # Untimed warm-up: pool start, registry + import heat.
        run_validation([ALL_SCENARIOS[0]], runner, seed=0, trials=1,
                       executor=exe)
        before_ns = int(exe.transport_stats().get("dispatch_ns") or 0)
        t0 = time.perf_counter()
        sweep = run_validation(ALL_SCENARIOS, runner, seed=0,
                               trials=trials, baseline=True, executor=exe)
        wall = time.perf_counter() - t0
        dispatch_ns = int(exe.transport_stats().get("dispatch_ns")
                          or 0) - before_ns
        return {
            "transport": exe.transport_used,
            "workers_used": exe.effective_workers,
            "wall_seconds": round(wall, 3),
            "dispatch_ms": round(dispatch_ns / 1e6, 3),
            "dispatch_fraction": round(dispatch_ns / (wall * 1e9), 5),
            "fallback_reason": exe.fallback_reason,
            "table": sweep.render(),
        }
    finally:
        exe.shutdown()


def bench_echo(count: int, workers: int) -> Dict[str, object]:
    """Per-job runtime cost with zero-work jobs, every backend."""
    out: Dict[str, object] = {}
    for name, kwargs in (("serial", {"workers": 1}),
                         ("pool", {"workers": workers}),
                         ("socket", {"workers": workers,
                                     "transport": "socket"})):
        exe = Scheduler(**kwargs)
        try:
            exe.map_jobs(_echo_jobs(8))        # warm the backend
            t0 = time.perf_counter()
            results = exe.map_jobs(_echo_jobs(count))
            wall = time.perf_counter() - t0
            assert results == list(range(count)), f"{name}: wrong results"
            out[name] = {
                "jobs": count,
                "wall_seconds": round(wall, 4),
                "us_per_job": round(wall / count * 1e6, 1),
                "fallback_reason": exe.fallback_reason,
            }
        finally:
            exe.shutdown()
    return out


def bench_check(workers: int) -> Dict[str, object]:
    """Two scenarios through the invariant pipeline, serial vs pool."""
    from repro.check.runner import SMOKE_FTP_BYTES, check_all

    names = ["wean", "porter"]
    t0 = time.perf_counter()
    serial = check_all(scenarios=names, ftp_bytes=SMOKE_FTP_BYTES)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = check_all(scenarios=names, ftp_bytes=SMOKE_FTP_BYTES,
                         workers=workers)
    parallel_wall = time.perf_counter() - t0
    identical = ([r.render() for r in serial]
                 == [r.render() for r in parallel])
    return {
        "scenarios": names,
        "serial_seconds": round(serial_wall, 3),
        "parallel_seconds": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 2),
        "reports_identical": identical,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced CI smoke run (smaller sweep, no "
                         "check leg)")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the parallel legs (default 4)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero if dispatch overhead exceeds "
                         f"{DISPATCH_OVERHEAD_LIMIT:.0%} of sweep wall "
                         "or any backend renders a different table")
    args = ap.parse_args(argv)

    ftp_bytes, trials = (200_000, 2) if args.quick else (2_000_000, 4)
    echo_count = 200 if args.quick else 1000

    print(f"sweep legs (4 scenarios, ftp {ftp_bytes:,}B x{trials} "
          f"trials)...")
    serial = bench_sweep(ftp_bytes, trials, 1, "auto")
    print(f"  serial  {serial['wall_seconds']:6.2f}s")
    pool = bench_sweep(ftp_bytes, trials, args.workers, "auto")
    print(f"  pool    {pool['wall_seconds']:6.2f}s "
          f"dispatch {pool['dispatch_fraction']:.3%}")
    socket_leg = bench_sweep(ftp_bytes, trials, args.workers, "socket")
    print(f"  socket  {socket_leg['wall_seconds']:6.2f}s "
          f"dispatch {socket_leg['dispatch_fraction']:.3%}")

    tables_identical = (serial["table"] == pool["table"]
                        == socket_leg["table"])
    overhead = max(leg["dispatch_fraction"]
                   for leg in (serial, pool, socket_leg))

    print(f"echo micro ({echo_count} jobs per backend)...")
    echo_legs = bench_echo(echo_count, args.workers)
    for name, leg in echo_legs.items():
        print(f"  {name:<7} {leg['us_per_job']:8.1f} us/job")

    result: Dict[str, object] = {
        "benchmark": "runtime_dispatch",
        "mode": "quick" if args.quick else "full",
        "workload": {
            "scenarios": [cls.name for cls in ALL_SCENARIOS],
            "ftp_bytes": ftp_bytes,
            "trials": trials,
            "workers": args.workers,
            "baseline": True,
        },
        "sweep_legs": {
            name: {k: v for k, v in leg.items() if k != "table"}
            for name, leg in (("serial", serial), ("pool", pool),
                              ("socket", socket_leg))
        },
        "echo_legs": echo_legs,
        "dispatch_overhead_fraction": round(overhead, 5),
        "dispatch_overhead_limit": DISPATCH_OVERHEAD_LIMIT,
        "tables_identical": tables_identical,
    }
    if not args.quick:
        print(f"check leg (2 scenarios, serial vs {args.workers} "
              f"workers)...")
        result["check_leg"] = bench_check(args.workers)
        print(f"  speedup {result['check_leg']['speedup']:.2f}x")
    result["dispatch_regression"] = overhead > DISPATCH_OVERHEAD_LIMIT

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    print(f"\ndispatch overhead (worst leg) : {overhead:.3%} "
          f"(limit {DISPATCH_OVERHEAD_LIMIT:.0%})")
    print(f"tables identical              : {tables_identical}")
    print(f"[written to {args.out}]")

    failed = not tables_identical
    if result["dispatch_regression"]:
        print("WARNING: scheduler dispatch overhead above limit "
              "(dispatch_regression)", file=sys.stderr)
        failed = failed or args.fail_on_regression
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
