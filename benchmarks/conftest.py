"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and writes it under ``benchmarks/output/`` so the artifacts
survive the run.  ``pytest-benchmark`` timings measure the full
experiment (simulation included); each experiment runs once
(``rounds=1``) because a run already aggregates four trials internally,
exactly like the paper's protocol.
"""

from __future__ import annotations

import os

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

TRIALS = 4
SEED = 0
# Validation sweeps fan trials out over a process pool; results are
# bit-identical for any worker count (see docs/PERFORMANCE.md), so this
# only changes wall-clock time.  Override with REPRO_BENCH_WORKERS=1 to
# force serial runs.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS",
                             min(4, os.cpu_count() or 1)))


def emit(name: str, text: str) -> None:
    """Print a rendered figure and persist it to benchmarks/output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
