"""Ablations over the paper's design choices.

The paper fixes several parameters with one-line justifications; these
benches quantify them:

* **sliding-window width** (§3.2.2 — "five seconds balances the desire
  to discount outlying estimates with the need to be reactive");
* **scheduling granularity** (§3.3 / §5.4 — 10 ms ticks under-delay
  short messages; finer clocks would fix it);
* **delay compensation** (§3.3, Figure 1 — quantified here as the
  fetch/store gap);
* **the symmetry assumption** (§3.2.2 / §5.3 — modulation cannot
  reproduce live send/recv asymmetry).
"""

from conftest import SEED, emit, once

from repro.analysis import render_table
from repro.core import Distiller, install_modulation
from repro.hosts import LAPTOP_ADDR, ModulationWorld, SERVER_ADDR
from repro.scenarios import FlagstaffScenario, WeanScenario
from repro.sim import Timeout
from repro.validation import (
    FtpRunner,
    collect_trace,
    compensation_vb,
    figure1_compensation,
    run_live_trial,
    run_modulated_trial,
    validate_scenario,
)


def test_ablation_window_width(benchmark):
    """Wider windows smooth the replay trace; narrower ones track it."""
    scenario = WeanScenario()

    def experiment():
        records = collect_trace(scenario, SEED, 0)
        out = {}
        for width in (1.0, 5.0, 15.0):
            replay = Distiller(window_width=width).distill(records).replay
            latencies = [t.F for t in replay]
            mean = sum(latencies) / len(latencies)
            var = sum((v - mean) ** 2 for v in latencies) / len(latencies)
            out[width] = (mean, var ** 0.5)
        return out

    out = once(benchmark, experiment)
    rows = [[f"{w:.0f} s", f"{m * 1e3:.2f}", f"{s * 1e3:.2f}"]
            for w, (m, s) in sorted(out.items())]
    emit("ablation_window_width", render_table(
        ["Window", "mean F (ms)", "stddev F (ms)"], rows,
        title="Ablation: sliding-window width vs. replay smoothness",
        caption="The paper picks 5 s; narrower windows react faster "
                "but keep more measurement noise."))

    # Smoothing must be monotone in window width.
    assert out[15.0][1] <= out[5.0][1] <= out[1.0][1]
    # The mean is roughly invariant: the window only filters.
    assert abs(out[1.0][0] - out[15.0][0]) < 0.6 * out[1.0][0] + 2e-3


def test_ablation_tick_granularity(benchmark):
    """§5.4: 10 ms ticks under-delay short messages; 1 ms nearly fixes it."""
    scenario = WeanScenario()

    def experiment():
        records = collect_trace(scenario, SEED, 0)
        replay = Distiller().distill(records).replay
        out = {}
        for tick in (0.010, 0.001):
            world = ModulationWorld(seed=3, tick_resolution=tick)
            install_modulation(world.laptop, world.laptop_device, replay,
                               world.rngs.stream("mod"),
                               compensation_vb=compensation_vb(), loop=True)
            rtts = []
            world.laptop.icmp.on_echo_reply(
                9, lambda pkt, now: rtts.append(
                    now - pkt.meta["echo_sent_at"]))

            def pinger():
                yield Timeout(0.5)
                for seq in range(40):
                    world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9,
                                                seq, 16)  # tiny messages
                    yield Timeout(0.25)

            world.laptop.spawn(pinger())
            world.run(until=15.0)
            out[tick] = sum(rtts) / len(rtts)
        return out

    out = once(benchmark, experiment)
    emit("ablation_tick_granularity", render_table(
        ["Tick", "small-message RTT (ms)"],
        [[f"{t * 1e3:.0f} ms", f"{v * 1e3:.2f}"] for t, v in
         sorted(out.items(), reverse=True)],
        title="Ablation: scheduling granularity vs. small-message delay",
        caption="With 10 ms ticks, delays under half a tick are sent "
                "immediately (under-delayed); a 1 ms clock honours them."))

    assert out[0.001] > out[0.010] * 1.5


def test_ablation_compensation_off(benchmark):
    """Figure 1's effect, summarized as one number per configuration."""
    result = once(benchmark,
                  lambda: figure1_compensation(
                      seed=SEED, sizes=(1024 * 1024, 2 * 1024 * 1024)))
    gap_off = result.fetch_store_gap(compensated=False)
    gap_on = result.fetch_store_gap(compensated=True)
    emit("ablation_compensation", render_table(
        ["Compensation", "fetch/store throughput gap"],
        [["off", f"{gap_off * 100:.1f}%"], ["on", f"{gap_on * 100:.1f}%"]],
        title="Ablation: inbound delay compensation"))
    assert gap_on < gap_off


def test_ablation_symmetry_assumption(benchmark):
    """§5.3: modulation splits the live asymmetry down the middle."""
    scenario = FlagstaffScenario()
    runner = FtpRunner()

    def experiment():
        validation = validate_scenario(scenario, runner, seed=SEED, trials=2)
        return validation

    validation = once(benchmark, experiment)
    send = validation.comparison("send")
    recv = validation.comparison("recv")
    emit("ablation_symmetry", render_table(
        ["Direction", "Real (s)", "Modulated (s)"],
        [["send", send.real.format(), send.modulated.format()],
         ["recv", recv.real.format(), recv.modulated.format()]],
        title="Ablation: the round-trip symmetry assumption (Flagstaff)",
        caption="Live send/recv differ strongly; the distilled trace is "
                "symmetric, so both modulated directions sit near the "
                "live mean — the error §5.3 attributes to the lack of "
                "synchronized clocks."))

    live_gap = send.real.mean - recv.real.mean
    mod_gap = abs(send.modulated.mean - recv.modulated.mean)
    assert live_gap > 5.0
    assert mod_gap < live_gap
    # Both modulated directions land between the live extremes,
    # with a modest tolerance for the under-delay bias.
    mid = (send.real.mean + recv.real.mean) / 2
    for comp in (send, recv):
        assert abs(comp.modulated.mean - mid) < 0.5 * live_gap + 12.0
