"""Seed-revision implementations of the paths this PR optimized.

``bench_parallel_harness.py`` measures the performance work against the
code as it stood *before* the optimization PR: the tuple-wrapped event
heap with no compaction, ``copy.copy``-based packet cloning, the
separate propagation/release events on both media, full radio flooding,
and reassembly timers that were never cancelled.  The classes and
functions here are verbatim copies of that revision (modulo renames),
and :func:`seed_mode` swaps them in so the baseline runs in the same
process, same interpreter state, same machine conditions as the
optimized code it is compared against.

Nothing in the package imports this module; it exists only for
benchmarking.
"""

from __future__ import annotations

import contextlib
import copy
import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.engine import SimulationError


class SeedEvent:
    """The seed's Event: no live/dead bookkeeping, cancel is a flag."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not (self.cancelled or self.fired)


class SeedSimulator:
    """The seed's Simulator: wrapper-tuple heap, O(n) pending_count."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, SeedEvent]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> SeedEvent:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., Any],
                    *args: Any) -> SeedEvent:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})")
        event = SeedEvent(when, next(self._seq), fn, args)
        heapq.heappush(self._queue, (when, event.seq, event))
        return event

    # The seed engine has no fire-and-forget or bulk fast paths; shared
    # substrate code that uses the current engine's call_later/call_at/
    # call_batch API maps onto plain schedule/schedule_at here
    # (identical behaviour, the seed's ordinary per-event cost).
    call_later = schedule
    call_at = schedule_at

    def call_batch(self, entries) -> int:
        count = 0
        for when, fn, args in entries:
            self.schedule_at(when, fn, *args)
            count += 1
        return count

    def step(self) -> bool:
        while self._queue:
            when, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = when
            event.fired = True
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                when, _, event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and when > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = when
                event.fired = True
                self._events_processed += 1
                fired += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def pending_count(self) -> int:
        return sum(1 for _, _, e in self._queue if not e.cancelled)


# ----------------------------------------------------------------------
# Seed packet methods
# ----------------------------------------------------------------------
def _seed_size(self) -> int:
    total = self.link_bytes + self.payload_bytes
    for header in (self.ip, self.icmp, self.udp, self.tcp):
        if header is not None:
            total += header.wire_bytes
    return total


def _seed_clone(self):
    from repro.net.packet import Packet

    return Packet(
        ip=copy.copy(self.ip),
        icmp=copy.copy(self.icmp),
        udp=copy.copy(self.udp),
        tcp=copy.copy(self.tcp),
        payload=self.payload,
        payload_bytes=self.payload_bytes,
        link_bytes=self.link_bytes,
        meta=dict(self.meta),
    )


# ----------------------------------------------------------------------
# Seed channel profile: linear scan over control points per query
# ----------------------------------------------------------------------
def _seed_piecewise_conditions(self, t: float):
    from repro.net.wavelan import ChannelConditions

    pts = self.points
    if t <= pts[0][0]:
        return pts[0][1].clamped()
    if t >= pts[-1][0]:
        return pts[-1][1].clamped()
    for (t0, c0), (t1, c1) in zip(pts, pts[1:]):
        if t0 <= t <= t1:
            frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)

            def lerp(a: float, b: float) -> float:
                return a + (b - a) * frac

            return ChannelConditions(
                signal_level=lerp(c0.signal_level, c1.signal_level),
                loss_prob_up=lerp(c0.loss_prob_up, c1.loss_prob_up),
                loss_prob_down=lerp(c0.loss_prob_down, c1.loss_prob_down),
                bandwidth_factor=lerp(c0.bandwidth_factor,
                                      c1.bandwidth_factor),
                access_latency_mean=lerp(c0.access_latency_mean,
                                         c1.access_latency_mean),
            ).clamped()
    raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# Seed WaveLAN medium: separate propagation event, full flood, O(n) scan
# ----------------------------------------------------------------------
def _seed_wavelan_try_grant(self) -> None:
    if self._busy or not self._waiters:
        return
    device = self._waiters.pop(0)
    packet = device._grant()
    if packet is None:
        self._try_grant()
        return
    self._busy = True
    cond = self._conditions_for(device, packet)
    backoff = self.rng.randrange(0, self.MAX_BACKOFF_SLOTS + 1) * self.SLOT_TIME
    access = 0.0
    if cond.access_latency_mean > 0.0:
        access = self.rng.expovariate(1.0 / cond.access_latency_mean)
    tx_time = (packet.size * 8.0 / (self.rate_bps * cond.bandwidth_factor)
               + self.PER_FRAME_OVERHEAD)
    self.frames_carried += 1
    self.sim.schedule(backoff + access + tx_time,
                      self._transmit_done, device, packet, cond)


def _seed_wavelan_transmit_done(self, sender, packet, cond) -> None:
    from repro.net.wavelan import DOWNLINK, UPLINK

    direction = UPLINK if not sender.is_base else DOWNLINK
    if self.rng.random() < self._effective_loss(cond.loss_prob(direction)):
        self.frames_lost += 1
    else:
        self.sim.schedule(self.prop_delay, self._deliver, sender, packet)
    self._busy = False
    sender._after_transmit()
    self._try_grant()


def _seed_wavelan_receiver_for(self, sender, packet):
    dst = packet.ip.dst if packet.ip is not None else None
    for device in self.devices:
        if device is not sender and device.address == dst:
            return device
    return None


def _seed_wavelan_deliver(self, sender, packet) -> None:
    receiver = self._receiver_for(sender, packet)
    if receiver is not None:
        receiver.handle_receive(packet)
        return
    others = [d for d in self.devices if d is not sender]
    for i, device in enumerate(others):
        device.handle_receive(packet if i == 0 else packet.clone())


# ----------------------------------------------------------------------
# Seed Ethernet segment: deliver / release / after-transmit as three
# separate events per frame
# ----------------------------------------------------------------------
def _seed_ether_transmit_done(self, sender, packet) -> None:
    self.sim.schedule(self.prop_delay, self._deliver, sender, packet)
    self.sim.schedule(self.INTERFRAME_GAP, self._release)
    self.sim.schedule(0.0, sender._after_transmit)


def _seed_ether_deliver(self, sender, packet) -> None:
    dst = packet.ip.dst if packet.ip is not None else None
    targets = [d for d in self.devices if d is not sender and d.address == dst]
    if not targets:
        targets = [d for d in self.devices if d is not sender]
    for i, device in enumerate(targets):
        device.handle_receive(packet if i == 0 else packet.clone())


# ----------------------------------------------------------------------
# Seed reassembler: expiry timers are left on the heap forever
# ----------------------------------------------------------------------
def _seed_reassembler_accept(self, packet):
    from repro.protocols.ip import REASSEMBLY_TIMEOUT

    ident, index, count = packet.meta["fragment"]
    key = (packet.ip.src, ident)
    entry = self._partial.get(key)
    if entry is None:
        entry = {"need": count, "have": set(),
                 "original": packet.meta["original"]}
        self._partial[key] = entry
        self.sim.schedule(REASSEMBLY_TIMEOUT, self._expire, key)
    entry["have"].add(index)
    if len(entry["have"]) == entry["need"]:
        del self._partial[key]
        self.reassembled += 1
        return entry["original"]
    return None


# ----------------------------------------------------------------------
@contextlib.contextmanager
def seed_mode():
    """Run the enclosed block with the seed-revision hot paths installed.

    Patches the simulator class used by world construction plus the
    packet/medium/reassembler methods this PR rewrote, and restores
    everything on exit.  Serial use only: worker processes never see
    these patches, so parallel legs must not run inside ``seed_mode``.
    """
    import repro.hosts.worlds as worlds
    from repro.core.distill import Distiller
    from repro.net.ethernet import EthernetSegment
    from repro.net.packet import POOL, Packet
    from repro.net.wavelan import PiecewiseProfile, WirelessMedium
    from repro.protocols.ip import Reassembler

    saved = {
        "sim": worlds.Simulator,
        "pw": PiecewiseProfile.conditions,
        "size": Packet.size,
        "clone": Packet.clone,
        "w_try": WirelessMedium._try_grant,
        "w_done": WirelessMedium._transmit_done,
        "w_recv": WirelessMedium._receiver_for,
        "w_del": WirelessMedium._deliver,
        "e_done": EthernetSegment._transmit_done,
        "e_del": EthernetSegment._deliver,
        "r_acc": Reassembler.accept,
        "pool": POOL.enabled,
        "window": Distiller._window,
    }
    worlds.Simulator = SeedSimulator
    # The seed had no packet pool and a scalar distillation loop; both
    # optimized paths are byte-compatible, so disabling them here only
    # changes speed, never output.
    POOL.enabled = False
    POOL.clear()
    Distiller._window = Distiller._window_scalar
    PiecewiseProfile.conditions = _seed_piecewise_conditions
    Packet.size = property(_seed_size)
    Packet.clone = _seed_clone
    WirelessMedium._try_grant = _seed_wavelan_try_grant
    WirelessMedium._transmit_done = _seed_wavelan_transmit_done
    WirelessMedium._receiver_for = _seed_wavelan_receiver_for
    WirelessMedium._deliver = _seed_wavelan_deliver
    EthernetSegment._transmit_done = _seed_ether_transmit_done
    EthernetSegment._deliver = _seed_ether_deliver
    Reassembler.accept = _seed_reassembler_accept
    try:
        yield
    finally:
        worlds.Simulator = saved["sim"]
        PiecewiseProfile.conditions = saved["pw"]
        Packet.size = saved["size"]
        Packet.clone = saved["clone"]
        WirelessMedium._try_grant = saved["w_try"]
        WirelessMedium._transmit_done = saved["w_done"]
        WirelessMedium._receiver_for = saved["w_recv"]
        WirelessMedium._deliver = saved["w_del"]
        EthernetSegment._transmit_done = saved["e_done"]
        EthernetSegment._deliver = saved["e_del"]
        Reassembler.accept = saved["r_acc"]
        POOL.enabled = saved["pool"]
        POOL.clear()
        Distiller._window = saved["window"]
