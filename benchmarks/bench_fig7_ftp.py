"""Figure 7 — Elapsed Times for the FTP Benchmark.

10 MB disk-to-disk transfers, send and receive as independent
experiments.  The shapes to reproduce from the paper:

* the Ethernet row: send 20.50 s, recv 18.83 s;
* live WaveLAN roughly 3-5x slower than Ethernet;
* live send/receive are *asymmetric* (clearest in Flagstaff), while
  modulated send/receive are nearly symmetric — the distillation's
  round-trip symmetry assumption;
* Porter is the troubling scenario: modulation under-delays both
  directions (the paper reports 1.05x and 1.56x the sigma sum).
"""

from conftest import SEED, TRIALS, WORKERS, emit, once

from repro.scenarios import ALL_SCENARIOS
from repro.validation import (
    FtpRunner,
    render_benchmark_table,
    run_validation,
)


def test_fig7_ftp_benchmark(benchmark):
    runner = FtpRunner()

    def experiment():
        sweep = run_validation(ALL_SCENARIOS, runner, seed=SEED,
                               trials=TRIALS, baseline=True,
                               workers=WORKERS)
        return sweep.validations, sweep.baseline

    validations, baseline = once(benchmark, experiment)
    emit("fig7_ftp", render_benchmark_table(
        validations, baseline,
        title="Figure 7: Elapsed Times for FTP Benchmark",
        caption="Paper reference (real send/recv -> mod send/recv): "
                "Wean 79.88/64.93 -> 72.65/67.83; "
                "Porter 86.38/82.23 -> 76.65/72.95; "
                "Flagstaff 88.15/61.85 -> 74.88/70.80; "
                "Chatterbox 116.83/96.83 -> 92.13/87.28; "
                "Ethernet 20.50/18.83."))

    # Ethernet row calibration.
    assert abs(baseline["send"].mean - 20.5) / 20.5 < 0.10
    assert abs(baseline["recv"].mean - 18.83) / 18.83 < 0.10

    by_name = {v.scenario: v for v in validations}

    for validation in validations:
        send = validation.comparison("send")
        recv = validation.comparison("recv")
        # Live WaveLAN is several times slower than Ethernet.
        assert send.real.mean > 3 * baseline["send"].mean
        assert recv.real.mean > 3 * baseline["recv"].mean

    # Flagstaff live asymmetry: send markedly slower than receive.
    flag = by_name["flagstaff"]
    live_gap = flag.comparison("send").real.mean \
        - flag.comparison("recv").real.mean
    assert live_gap > 8.0
    # Modulation is symmetric: its send/recv gap is much smaller.
    mod_gap = abs(flag.comparison("send").modulated.mean
                  - flag.comparison("recv").modulated.mean)
    assert mod_gap < live_gap

    # Porter: modulation under-delays (paper's own divergence).
    porter = by_name["porter"]
    assert porter.comparison("send").modulated.mean < \
        porter.comparison("send").real.mean
    assert porter.comparison("recv").modulated.mean < \
        porter.comparison("recv").real.mean
