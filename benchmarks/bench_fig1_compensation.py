"""Figure 1 — Effect of Delay Compensation.

Replays a synthetic WaveLAN-like trace and runs FTP transfers of
varying sizes, inbound and outbound, with and without inbound delay
compensation.  The paper's claims to reproduce:

* without compensation, fetch (inbound) throughput is significantly
  below store (outbound);
* with compensation, fetch moves close to store;
* the compensation constant is a property of the modulating network
  only — verified against a much slower synthetic trace.
"""

from conftest import SEED, emit, once

from repro.validation import figure1_compensation, figure1_slow_network_check

MB = 1024 * 1024


def test_fig1_delay_compensation(benchmark):
    result = once(benchmark,
                  lambda: figure1_compensation(
                      seed=SEED, sizes=(MB // 2, MB, 2 * MB, 4 * MB)))
    emit("fig1_compensation", result.render())

    gap_without = result.fetch_store_gap(compensated=False)
    gap_with = result.fetch_store_gap(compensated=True)
    # Uncompensated fetch lags store; compensation closes most of it.
    assert gap_without > 0.04
    assert gap_with < gap_without * 0.55


def test_fig1_compensation_independent_of_traced_network(benchmark):
    result = once(benchmark,
                  lambda: figure1_slow_network_check(
                      seed=SEED, sizes=(MB // 2, MB)))
    emit("fig1_slow_network_check", result.render())

    # The identical constant still works on a much slower emulated
    # network: the residual gap stays small.
    assert abs(result.fetch_store_gap(compensated=True)) < 0.1
