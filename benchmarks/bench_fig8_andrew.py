"""Figure 8 — Elapsed Times for Andrew Benchmark Phases.

The Andrew benchmark on NFS over each scenario, per-phase means for
real and modulated runs plus the Ethernet reference row.  Shapes to
reproduce:

* the Ethernet row: 2.25 / 12.50 / 7.75 / 17.50 / 84.00 / 124.00;
* Make dominates everywhere (CPU-bound on the 75 MHz laptop);
* on Wean, the warm-cache status-check phases (ScanDir/ReadAll) are
  *under-delayed* in modulation — the 10 ms scheduling-granularity
  artifact the paper calls out in §5.4.
"""

from conftest import SEED, TRIALS, WORKERS, emit, once

from repro.scenarios import ALL_SCENARIOS
from repro.validation import (
    AndrewRunner,
    render_andrew_table,
    run_validation,
)


def test_fig8_andrew_benchmark(benchmark):
    def experiment():
        sweep = run_validation(ALL_SCENARIOS, AndrewRunner(), seed=SEED,
                               trials=TRIALS, baseline=True,
                               workers=WORKERS)
        return sweep.validations, sweep.baseline

    validations, baseline = once(benchmark, experiment)
    emit("fig8_andrew", render_andrew_table(validations, baseline))

    # Ethernet row calibration (paper: total 124.00).
    assert abs(baseline["Total"].mean - 124.0) / 124.0 < 0.08
    assert abs(baseline["Make"].mean - 84.0) / 84.0 < 0.10

    by_name = {v.scenario: v for v in validations}

    for validation in validations:
        # Make dominates every configuration.
        assert validation.comparison("Make").real.mean > \
            0.5 * validation.comparison("Total").real.mean
        # Live totals exceed the Ethernet baseline.
        assert validation.comparison("Total").real.mean > \
            baseline["Total"].mean

    # Wean's status-check phases are under-delayed in modulation
    # (scheduling granularity, §5.4).
    wean = by_name["wean"]
    readall = wean.comparison("ReadAll")
    assert readall.modulated.mean < readall.real.mean

    # Real and modulated totals land in the same regime everywhere.
    for validation in validations:
        total = validation.comparison("Total")
        ratio = total.modulated.mean / total.real.mean
        assert 0.75 < ratio < 1.35, (validation.scenario, total.real,
                                     total.modulated)
