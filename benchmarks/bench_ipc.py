#!/usr/bin/env python
"""IPC transport benchmark: serial vs pickle-pool vs envelope-pool.

Produces ``BENCH_ipc.json`` at the repo root measuring the data plane
between the validation sweep's worker pool and the parent:

* ``serial`` — ``workers=1``: every trial runs in-process; nothing
  crosses a process boundary.
* ``pickle_pool`` — the pre-codec transport: workers return full trial
  results (replay traces, record lists, metric sinks) pickled over the
  pool's pipe.
* ``envelope_pool`` — the store-mediated handoff: workers write
  binary-codec artifacts into a shared content-addressed store and
  return only ``(key, digest, stats)`` envelopes; the parent rehydrates
  lazily.

Each pool leg reuses one persistent :class:`TrialExecutor` (the warm
worker pool is the steady state this benchmark characterizes — pool
start-up and registry warm-up are paid once, outside the timed region,
exactly as in a long sweep session).  Legs are interleaved per round,
with the order reversed on alternate rounds so slow drifts in machine
load cancel; the reported speedups are the **median of per-round
ratios**, which pairs each parallel measurement with a serial
measurement taken seconds away.

Every round asserts that all three legs render byte-identical
validation tables — the transports must be observationally equivalent.

Usage::

    PYTHONPATH=src python benchmarks/bench_ipc.py          # full
    PYTHONPATH=src python benchmarks/bench_ipc.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Dict, List, Optional

import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.scenarios import ALL_SCENARIOS  # noqa: E402
from repro.validation.harness import FtpRunner  # noqa: E402
from repro.validation.parallel import (  # noqa: E402
    TrialExecutor,
    run_validation,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_ipc.json")

_COUNTER_KEYS = ("envelope_count", "ipc_bytes_sent", "ipc_bytes_recv",
                 "artifact_bytes", "encode_ns", "rehydrate_ns",
                 "serial_fallbacks")


class _Leg:
    """One transport configuration with its persistent executor."""

    def __init__(self, name: str, workers: int, transport: str,
                 runner: FtpRunner):
        self.name = name
        self.transport = transport
        self.runner = runner
        self.executor = TrialExecutor(workers=workers, transport=transport)
        self.walls: List[float] = []
        self.deltas: List[Dict[str, int]] = []
        self.render: Optional[str] = None
        # Warm-up (untimed): starts the pool, resolves the scenario
        # registry in every worker, heats imports and code paths.
        run_validation([ALL_SCENARIOS[0]], runner, seed=0, trials=1,
                       executor=self.executor, transport=transport)

    def _counters(self) -> Dict[str, int]:
        stats = self.executor.transport_stats()
        return {k: int(stats.get(k) or 0) for k in _COUNTER_KEYS}

    def run_once(self, trials: int) -> float:
        before = self._counters()
        t0 = time.perf_counter()
        sweep = run_validation(ALL_SCENARIOS, self.runner, seed=0,
                               trials=trials, baseline=True,
                               executor=self.executor,
                               transport=self.transport)
        wall = time.perf_counter() - t0
        after = self._counters()
        self.walls.append(wall)
        self.deltas.append({k: after[k] - before[k] for k in _COUNTER_KEYS})
        render = sweep.render()
        if self.render is None:
            self.render = render
        elif self.render != render:
            raise AssertionError(
                f"{self.name}: tables differ between rounds")
        return wall

    def summary(self) -> Dict[str, object]:
        per_sweep = self.deltas[0] if self.deltas else {}
        return {
            "transport": self.transport,
            "workers_used": self.executor.effective_workers,
            "wall_seconds": [round(w, 3) for w in self.walls],
            "median_seconds": round(statistics.median(self.walls), 3),
            "ipc_bytes_per_sweep": (per_sweep.get("ipc_bytes_sent", 0)
                                    + per_sweep.get("ipc_bytes_recv", 0)),
            "per_sweep_counters": per_sweep,
            "fallback_reason": self.executor.fallback_reason,
        }

    def close(self) -> None:
        self.executor.shutdown()


def _median_ratio(num: List[float], den: List[float]) -> float:
    return statistics.median(n / d for n, d in zip(num, den))


def bench(ftp_bytes: int, trials: int, workers: int,
          rounds: int) -> Dict[str, object]:
    runner = FtpRunner(nbytes=ftp_bytes)
    print(f"warming 3 legs (4 scenarios, ftp {ftp_bytes:,}B x{trials} "
          f"trials, {rounds} round(s))...")
    serial = _Leg("serial", 1, "auto", runner)
    pickle_leg = _Leg("pickle_pool", workers, "pickle", runner)
    envelope = _Leg("envelope_pool", workers, "envelope", runner)
    legs = [serial, pickle_leg, envelope]
    try:
        for rnd in range(rounds):
            order = legs if rnd % 2 == 0 else list(reversed(legs))
            for leg in order:
                wall = leg.run_once(trials)
                print(f"  round[{rnd}] {leg.name:<13} {wall:6.2f}s")
        tables_identical = (serial.render == pickle_leg.render
                            == envelope.render)
        result: Dict[str, object] = {
            "benchmark": "ipc_transport",
            "workload": {
                "scenarios": [cls.name for cls in ALL_SCENARIOS],
                "ftp_bytes": ftp_bytes,
                "trials": trials,
                "workers": workers,
                "rounds": rounds,
                "baseline": True,
            },
            "legs": {leg.name: leg.summary() for leg in legs},
            "speedup_pickle_vs_serial": round(
                _median_ratio(serial.walls, pickle_leg.walls), 3),
            "speedup_envelope_vs_serial": round(
                _median_ratio(serial.walls, envelope.walls), 3),
            "tables_identical": tables_identical,
        }
        pick_bytes = result["legs"]["pickle_pool"]["ipc_bytes_per_sweep"]
        env_bytes = result["legs"]["envelope_pool"]["ipc_bytes_per_sweep"]
        if env_bytes:
            result["ipc_bytes_ratio_pickle_vs_envelope"] = round(
                pick_bytes / env_bytes, 2)
        result["parallel_regression"] = (
            result["speedup_envelope_vs_serial"] < 1.0)
        return result
    finally:
        for leg in legs:
            leg.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced CI smoke run (smaller sweep)")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the pool legs (default 4)")
    ap.add_argument("--rounds", type=int, default=3,
                    help="interleaved measurement rounds (default 3)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit non-zero if the envelope pool is slower "
                         "than serial")
    args = ap.parse_args(argv)

    ftp_bytes, trials = (200_000, 2) if args.quick else (2_000_000, 4)
    result = bench(ftp_bytes, trials, args.workers, max(1, args.rounds))
    result["mode"] = "quick" if args.quick else "full"

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    print(f"\npickle pool vs serial    : "
          f"{result['speedup_pickle_vs_serial']:.2f}x")
    print(f"envelope pool vs serial  : "
          f"{result['speedup_envelope_vs_serial']:.2f}x (target >= 1.5x)")
    if "ipc_bytes_ratio_pickle_vs_envelope" in result:
        print(f"pipe bytes, pickle/envelope : "
              f"{result['ipc_bytes_ratio_pickle_vs_envelope']:.1f}x")
    print(f"tables identical         : {result['tables_identical']}")
    print(f"[written to {args.out}]")

    if result["parallel_regression"]:
        print("WARNING: envelope pool slower than serial "
              "(parallel_regression)", file=sys.stderr)
        if args.fail_on_regression:
            return 1
    return 0 if result["tables_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
