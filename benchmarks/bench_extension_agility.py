"""Extension — adaptive-system agility under synthetic traces (§6).

Reproduces the experiment the paper's conclusion points to (its
reference [14]): drive an adaptive application with step and impulse
bandwidth variations that "can only be approximated by actual
networks", and measure how quickly it adapts — the kind of controlled,
repeatable stress test trace modulation exists to provide.
"""

from conftest import SEED, emit, once

from repro.analysis import render_table
from repro.apps.adaptive import AdaptiveFetcher, FidelityServer
from repro.core import impulse_trace, install_modulation, step_trace
from repro.hosts import ModulationWorld, SERVER_ADDR
from repro.sim.rng import derive_seed

PERIOD = 2.0


def _run_adaptive(trace, duration, seed_tag):
    world = ModulationWorld(seed=derive_seed(SEED, seed_tag))
    install_modulation(world.laptop, world.laptop_device, trace,
                       world.rngs.stream("mod"), compensation_vb=0.8e-6,
                       loop=True)
    FidelityServer(world.server).start()
    fetcher = AdaptiveFetcher(world.laptop, SERVER_ADDR, period=PERIOD)
    box = {}

    def body():
        box["run"] = yield from fetcher.run(duration)

    proc = world.laptop.spawn(body())
    t = 0.0
    while proc.alive and t < duration + 60.0:
        t += 10.0
        world.run(until=t)
    if proc.error:
        raise proc.error
    return box["run"]


def test_agility_step_response(benchmark):
    # 2 Mb/s <-> 0.12 Mb/s square wave, 20 s half-period.
    trace = step_trace(duration=80.0, period=20.0, latency=5e-3,
                       low_bandwidth_bps=0.12e6, high_bandwidth_bps=2e6)
    run = once(benchmark, lambda: _run_adaptive(trace, 78.0, "step"))

    rows = [[f"{t:.0f}s", frm, to] for t, frm, to in run.transitions()]
    # Bandwidth steps up at t=20s/60s and down at t=40s (0-20 low).
    lag_up = run.adaptation_lag(20.0, "full")
    lag_down = run.adaptation_lag(40.0, "low")

    def fmt(lag):
        return f"{lag:.1f}s" if lag is not None else "never"

    emit("extension_agility_step", render_table(
        ["When", "From", "To"], rows,
        title="Extension: adaptive fidelity transitions (step trace)",
        caption=f"Upgrade lag after the 20s step-up: {fmt(lag_up)}; "
                f"downgrade lag after the 40s step-down: {fmt(lag_down)} "
                f"(fetch period {PERIOD:.0f}s)."))

    assert run.fidelity_at(15.0) in ("low", "medium")   # low phase
    assert run.fidelity_at(35.0) == "full"              # high phase
    assert run.fidelity_at(55.0) in ("low", "medium")   # low again
    assert lag_up is not None and lag_up < 12.0
    assert lag_down is not None and lag_down < 12.0
    # The first downgrade step (full -> medium/low) happens within one
    # slow fetch plus one period: a single missed deadline is evidence.
    first_downgrade = min(
        (lag for lag in (run.adaptation_lag(40.0, "medium"),
                         run.adaptation_lag(40.0, "low"))
         if lag is not None),
        default=None)
    assert first_downgrade is not None and first_downgrade < 8.0


def test_agility_impulse_response(benchmark):
    trace = impulse_trace(duration=60.0, impulse_at=24.0, impulse_width=10.0,
                          latency=5e-3, base_bandwidth_bps=2e6,
                          impulse_bandwidth_bps=0.1e6)
    run = once(benchmark, lambda: _run_adaptive(trace, 58.0, "impulse"))

    misses = sum(r.missed_deadline for r in run.records)
    emit("extension_agility_impulse", render_table(
        ["When", "From", "To"],
        [[f"{t:.0f}s", frm, to] for t, frm, to in run.transitions()],
        title="Extension: adaptive fidelity transitions (impulse trace)",
        caption=f"{misses} deadline misses out of {len(run.records)} "
                f"periods; the impulse spans t=24s..34s."))

    # Full fidelity before the impulse, a downgrade during it, and a
    # recovery to full afterwards.
    assert run.fidelity_at(20.0) == "full"
    during = {run.fidelity_at(t) for t in (28.0, 31.0, 34.0)}
    assert during & {"low", "medium"}
    assert run.fidelity_at(56.0) == "full"
