"""Figure 4 — Wean Traces (traveling to a classroom via the elevator).

Four motion regions; quality collapses during the elevator ride —
latency peaking toward hundreds of milliseconds and "atrocious" loss —
then recovers on the walk to the classroom.
"""

from conftest import SEED, TRIALS, emit, once

from repro.scenarios import WeanScenario
from repro.scenarios.wean import ELEVATOR_END, WAIT_END
from repro.validation import characterize_scenario


def test_fig4_wean_traces(benchmark):
    scenario = WeanScenario()
    character = once(benchmark,
                     lambda: characterize_scenario(scenario, seed=SEED,
                                                   trials=TRIALS))
    emit("fig4_wean", character.render())

    labels, sig_lo, sig_hi = character.checkpoint_ranges("signal")
    assert labels == [f"z{i}" for i in range(8)]
    # Checkpoint bins: z3's bin [0.38, 0.55) is the wait for the
    # elevator, z4's bin [0.55, 0.68) is the ride, z5 onward the walk
    # to the classroom.
    wait_idx, ride_idx, after_idx = 3, 4, 5
    assert sig_hi[wait_idx] > 18.0
    assert sig_lo[ride_idx] < 6.0
    assert sig_hi[after_idx] > 14.0

    # Latency peaks in the elevator region (paper: ~350 ms).
    _, lat_lo, lat_hi = character.checkpoint_ranges("latency_ms")
    assert max(lat_hi) > 100.0
    assert lat_hi[ride_idx] == max(lat_hi)

    # Loss is atrocious in the elevator, low elsewhere.
    _, loss_lo, loss_hi = character.checkpoint_ranges("loss_pct")
    assert loss_hi[ride_idx] > 25.0
    walking = [loss_hi[i] for i in (1, 2, 7)]
    assert all(v < 15.0 for v in walking)


def test_fig4_elevator_region_fractions():
    # The discontinuous-motion regions the paper describes.
    assert 0.0 < WAIT_END < ELEVATOR_END < 1.0
