#!/usr/bin/env python
"""Benchmark the content-addressed artifact cache.

Times the same validation sweep three ways:

* ``cold``     — ``run_validation`` with a fresh ``--cache-dir``:
  every stage computes and is stored;
* ``warm``     — the identical sweep against the populated cache:
  every stage must load from the store (zero recomputes);
* ``uncached`` — no cache at all, the pre-pipeline behaviour.

Asserts the cache's whole contract: the warm rerun recomputes nothing,
is at least ``MIN_SPEEDUP``x faster than the cold run, and all three
sweeps render byte-identical tables.  Writes the measurements as JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache.py            # full
    PYTHONPATH=src python benchmarks/bench_cache.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import scenario_by_name  # noqa: E402
from repro.validation import FtpRunner, run_validation  # noqa: E402

MIN_SPEEDUP = 5.0


def run_sweep(scenario, runner, trials, cache=None):
    started = time.perf_counter()
    sweep = run_validation(scenario, runner, seed=0, trials=trials,
                           workers=1, cache=cache)
    return sweep, time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller transfer and fewer trials (CI)")
    parser.add_argument("--scenario", default="wean")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="where to write the JSON report "
                             "(default benchmarks/output/BENCH_cache.json)")
    args = parser.parse_args(argv)

    trials = 1 if args.quick else 2
    nbytes = 100_000 if args.quick else 500_000
    scenario = scenario_by_name(args.scenario)
    runner = FtpRunner(nbytes=nbytes, direction="send")
    print(f"cache benchmark: {args.scenario}, ftp-send {nbytes} B, "
          f"{trials} trial(s)")

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        cold, cold_s = run_sweep(scenario, runner, trials, cache=root)
        warm, warm_s = run_sweep(scenario, runner, trials, cache=root)
        plain, plain_s = run_sweep(scenario, runner, trials)

    print(f"  cold:     {cold_s:6.2f}s  ({cold.cache_misses} computed)")
    print(f"  warm:     {warm_s:6.2f}s  ({warm.cache_hits} hits, "
          f"{warm.cache_misses} recomputed)")
    print(f"  uncached: {plain_s:6.2f}s")
    speedup = cold_s / max(warm_s, 1e-9)
    print(f"  warm speedup: {speedup:.1f}x")

    assert warm.cache_misses == 0, \
        f"warm rerun recomputed {warm.cache_misses} stage(s)"
    assert warm.cache_hits == cold.cache_misses
    assert speedup >= MIN_SPEEDUP, \
        f"warm speedup {speedup:.1f}x below {MIN_SPEEDUP}x"
    tables = {label: sweep.render()
              for label, sweep in (("cold", cold), ("warm", warm),
                                   ("uncached", plain))}
    assert tables["cold"] == tables["warm"] == tables["uncached"], \
        "cache changed the rendered table"
    print("  tables byte-identical (cold == warm == uncached)")

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent / "output" / "BENCH_cache.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "scenario": args.scenario,
        "trials": trials,
        "ftp_bytes": nbytes,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "uncached_seconds": round(plain_s, 4),
        "warm_speedup": round(speedup, 2),
        "stages_cold": cold.cache_misses,
        "stages_warm_hits": warm.cache_hits,
        "tables_identical": True,
    }, indent=1), encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
