"""Substrate performance: how fast does the simulator itself run?

Not a paper figure — a health check on the machinery every experiment
stands on.  Regressions here directly stretch the wall-clock time of
all the figure benchmarks, so the throughput floors asserted below are
deliberately conservative.

Unlike the single-shot figure benchmarks, these run multiple rounds:
they measure steady-state code paths.
"""

from repro.core import Distiller, constant_trace, install_modulation
from repro.hosts import LAPTOP_ADDR, ModulationWorld, SERVER_ADDR
from repro.sim import Simulator, Timeout, spawn


def test_engine_event_throughput(benchmark):
    """Raw schedule/fire cycle."""

    def run_events():
        sim = Simulator()

        def chain(n):
            if n > 0:
                sim.schedule(0.001, chain, n - 1)

        for _ in range(100):
            sim.schedule(0.0, chain, 100)
        sim.run()
        return sim.events_processed

    events = benchmark(run_events)
    assert events >= 10_000


def test_process_switch_throughput(benchmark):
    """Generator-process resume cost."""

    def run_processes():
        sim = Simulator()

        def sleeper():
            for _ in range(200):
                yield Timeout(0.01)

        for _ in range(50):
            spawn(sim, sleeper())
        sim.run()
        return sim.events_processed

    events = benchmark(run_processes)
    assert events >= 10_000


def test_tcp_transfer_throughput(benchmark):
    """Full-stack cost: one megabyte through TCP over Ethernet."""

    def transfer():
        world = ModulationWorld(seed=1)
        done = {}

        def server():
            listener = world.server.tcp.listen(SERVER_ADDR, 2000)
            conn = yield from listener.accept()
            total = 0
            while True:
                got = yield from conn.recv_some()
                if got == 0:
                    break
                total += got
            done["rx"] = total
            yield from conn.close_and_wait()

        def client():
            conn = yield from world.laptop.tcp.connect(
                LAPTOP_ADDR, SERVER_ADDR, 2000)
            conn.send(1_000_000)
            yield from conn.drain()
            yield from conn.close_and_wait()

        world.server.spawn(server())
        world.laptop.spawn(client())
        world.run(until=120.0)
        return done["rx"]

    assert benchmark(transfer) == 1_000_000


def test_modulated_ping_throughput(benchmark):
    """Modulation-layer per-packet cost."""
    trace = constant_trace(duration=600.0, latency=1e-3,
                           bandwidth_bps=5e6)

    def run_pings():
        world = ModulationWorld(seed=2)
        install_modulation(world.laptop, world.laptop_device, trace,
                           world.rngs.stream("m"), loop=True)
        replies = []
        world.laptop.icmp.on_echo_reply(
            9, lambda pkt, now: replies.append(now))

        def pinger():
            yield Timeout(0.2)
            for seq in range(500):
                world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9,
                                            seq, 100)
                yield Timeout(0.002)  # pace below the NIC queue limit

        spawn(world.sim, pinger())
        world.run(until=30.0)
        return len(replies)

    assert benchmark(run_pings) == 500


def _synthetic_records(groups, F=2e-3, Vb=5e-6, Vr=1e-6, s1=88, s2=1428):
    """Noiseless ping-group records satisfying Eqs. 5-8 exactly."""
    from repro.core.traceformat import DIR_IN, DIR_OUT, PacketRecord

    V = Vb + Vr
    t1 = 2 * (F + s1 * V)
    t2 = 2 * (F + s2 * V)
    t3 = t2 + s2 * Vb
    records = []
    for g in range(groups):
        base = float(g)
        for i, size in enumerate((s1, s2, s2)):
            records.append(PacketRecord(
                timestamp=base, direction=DIR_OUT, proto=1, size=size,
                icmp_type=8, ident=1, seq=3 * g + i))
        for i, (rtt, size) in enumerate(((t1, s1), (t2, s2), (t3, s2))):
            records.append(PacketRecord(
                timestamp=base + rtt, direction=DIR_IN, proto=1, size=size,
                icmp_type=0, ident=1, seq=3 * g + i, rtt=rtt))
    return records


def test_distillation_throughput(benchmark):
    """Distiller cost on a large synthetic record set."""
    records = _synthetic_records(groups=600)  # a ten-minute collection

    def distill():
        return Distiller().distill(records)

    result = benchmark(distill)
    assert result.groups_used == 600
