"""Figure 3 — Flagstaff Traces (outdoor travel).

Signal starts variable and drops sharply in Schenley Park; latency is
better than Porter's; bandwidth somewhat better; loss markedly worse,
especially late in the traversal.
"""

from conftest import SEED, TRIALS, emit, once

from repro.scenarios import FlagstaffScenario, PorterScenario
from repro.validation import characterize_scenario


def test_fig3_flagstaff_traces(benchmark):
    character = once(benchmark,
                     lambda: characterize_scenario(FlagstaffScenario(),
                                                   seed=SEED, trials=TRIALS))
    emit("fig3_flagstaff", character.render())

    labels, sig_lo, sig_hi = character.checkpoint_ranges("signal")
    assert labels == [f"y{i}" for i in range(10)]
    # Sharp fall entering the park, staying low.
    assert sig_hi[0] > sig_hi[5]
    assert max(sig_hi[4:]) < 12.0

    # Loss worsens along the traversal.
    _, loss_lo, loss_hi = character.checkpoint_ranges("loss_pct")
    assert max(loss_hi[6:]) > max(loss_hi[:3])


def test_fig3_flagstaff_vs_porter_contrast(benchmark):
    flag = once(benchmark,
                lambda: characterize_scenario(FlagstaffScenario(),
                                              seed=SEED, trials=2))
    porter = characterize_scenario(PorterScenario(), seed=SEED, trials=2)

    def median(values):
        return sorted(values)[len(values) // 2]

    # "On the whole, latency is much better in Flagstaff than in Porter."
    assert median(flag.all_values("latency_ms")) < \
        median(porter.all_values("latency_ms"))
    # "Average bandwidth is somewhat better in the Flagstaff traces."
    assert median(flag.all_values("bandwidth_kbps")) > \
        median(porter.all_values("bandwidth_kbps"))
    # "Significantly worse ... in loss rate."
    assert median(flag.all_values("loss_pct")) >= \
        median(porter.all_values("loss_pct"))
