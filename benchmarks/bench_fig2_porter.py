"""Figure 2 — Porter Traces (inter-building travel).

Collects and distills four traversals of the Porter scenario and
renders signal level, latency, bandwidth and loss against the x0-x6
checkpoints, with per-checkpoint ranges across trials — the textual
analogue of the paper's range-bar plots.
"""

from conftest import SEED, TRIALS, emit, once

from repro.scenarios import PorterScenario
from repro.validation import characterize_scenario


def test_fig2_porter_traces(benchmark):
    character = once(benchmark,
                     lambda: characterize_scenario(PorterScenario(),
                                                   seed=SEED, trials=TRIALS))
    emit("fig2_porter", character.render())

    labels, sig_lo, sig_hi = character.checkpoint_ranges("signal")
    assert labels == [f"x{i}" for i in range(7)]
    # Signal improves across the patio (x1-x3) vs the lobby (x0)...
    assert max(sig_hi[2], sig_hi[3]) > sig_hi[0]
    # ...and falls off through Porter Hall.
    assert sig_lo[6] < sig_hi[3]

    # Latency: typically a few ms, with spikes well above that.
    lat = character.all_values("latency_ms")
    typical = sorted(lat)[len(lat) // 2]
    assert 0.3 < typical < 12.0
    assert max(lat) > typical * 3

    # Bandwidth: around 1.1-1.5 Mb/s of the nominal 2 Mb/s.
    bw = character.all_values("bandwidth_kbps")
    mean_bw = sum(bw) / len(bw)
    assert 900 < mean_bw < 1700

    # Loss: typically below 10 percent.
    loss = character.all_values("loss_pct")
    assert sorted(loss)[len(loss) // 2] < 10.0
