"""Discrete-event simulation substrate: engine, processes, RNG streams."""

from .engine import COMPACT_MIN_DEAD, Event, SimulationError, Simulator
from .perf import PerfCounters
from .process import (
    Interrupt,
    Process,
    Queue,
    Signal,
    Timeout,
    run_process,
    signal_or_timeout,
    spawn,
)
from .rng import RngStreams, derive_seed

__all__ = [
    "COMPACT_MIN_DEAD",
    "Event",
    "Interrupt",
    "PerfCounters",
    "Process",
    "Queue",
    "RngStreams",
    "Signal",
    "SimulationError",
    "Simulator",
    "Timeout",
    "derive_seed",
    "run_process",
    "signal_or_timeout",
    "spawn",
]
