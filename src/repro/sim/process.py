"""Generator-based simulated processes.

Application logic (an FTP transfer, the Andrew benchmark, the ping
workload) is naturally sequential: *send, wait for the reply, compute,
send again*.  Writing that as callback chains is miserable, so the
substrate provides lightweight coroutines in the style of SimPy: a
process is a generator that ``yield``s *wait requests* and is resumed by
the engine when the request completes.

Supported yields
----------------
``Timeout(seconds)``
    Resume after simulated time passes.
``Signal``
    Resume when another process fires the signal; the value passed to
    :meth:`Signal.fire` becomes the value of the ``yield`` expression.
``Process``
    Resume when the child process finishes; its return value becomes the
    value of the ``yield`` expression.  Exceptions raised by the child
    propagate into the parent.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from .engine import Event, Simulator


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Wait request: resume after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal:
    """A one-to-many wakeup primitive.

    Processes that ``yield`` a signal sleep until :meth:`fire` is called;
    all current waiters resume with the fired value.  A signal can be
    fired repeatedly; each firing wakes only the waiters registered at
    that moment.
    """

    __slots__ = ("_sim", "_waiters", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self._waiters: List["Process"] = []
        self.name = name

    def fire(self, value: Any = None) -> int:
        """Wake all waiters with ``value``; returns the number woken."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.call_later(0.0, proc._resume, value)
        return len(waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Process:
    """A running simulated process wrapping a generator.

    Create with :func:`spawn`.  The process starts on the next engine
    step (never synchronously), so a spawner may finish wiring state
    before the child runs.
    """

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = ""):
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._done_signal = Signal(sim, name=f"{self.name}.done")
        self._pending_event: Optional[Event] = None
        self._waiting_on: Optional[Signal] = None
        sim.call_later(0.0, self._resume, None)

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Interrupt:
            self._finish(None, None)
            return
        except Exception as exc:  # application error: record and re-raise to waiters
            self._finish(None, exc)
            return
        self._handle_request(request)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            request = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Interrupt:
            self._finish(None, None)
            return
        except Exception as err:
            self._finish(None, err)
            return
        self._handle_request(request)

    def _handle_request(self, request: Any) -> None:
        if isinstance(request, Timeout):
            self._pending_event = self._sim.schedule(request.delay, self._resume, None)
        elif isinstance(request, Signal):
            self._waiting_on = request
            request._add_waiter(self)
        elif isinstance(request, Process):
            if not request.alive:
                # Child already finished: resume with its outcome immediately.
                if request.error is not None:
                    self._sim.call_later(0.0, self._throw, request.error)
                else:
                    self._sim.call_later(0.0, self._resume, request.value)
            else:
                request._done_signal._add_waiter(self)
                self._waiting_on = request._done_signal
        elif request is None:
            # Bare yield: reschedule immediately (cooperative yield point).
            self._pending_event = self._sim.schedule(0.0, self._resume, None)
        else:
            self._finish(
                None,
                TypeError(f"process {self.name!r} yielded unsupported value {request!r}"),
            )

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        self.alive = False
        self.value = value
        self.error = error
        self._gen.close()
        if error is not None:
            waiters = self._done_signal._waiters
            if waiters:
                self._done_signal._waiters = []
                for proc in waiters:
                    self._sim.call_later(0.0, proc._throw, error)
            else:
                raise error
        else:
            self._done_signal.fire(value)

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.alive:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self._sim.call_later(0.0, self._throw, Interrupt(cause))

    @property
    def done_signal(self) -> Signal:
        return self._done_signal

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, gen: Generator[Any, Any, Any], name: str = "") -> Process:
    """Start ``gen`` as a simulated process and return its handle."""
    return Process(sim, gen, name=name)


def run_process(sim: Simulator, gen: Generator[Any, Any, Any], name: str = "",
                until: Optional[float] = None) -> Any:
    """Convenience: spawn ``gen``, run the simulator, return its value.

    Raises the process's error if it failed, and ``RuntimeError`` if the
    simulation drained without the process completing.
    """
    proc = spawn(sim, gen, name=name)
    sim.run(until=until)
    if proc.error is not None:
        raise proc.error
    if proc.alive:
        raise RuntimeError(f"process {proc.name!r} did not complete")
    return proc.value


def signal_or_timeout(sim: Simulator, signal: Signal, timeout: float) -> Signal:
    """A fresh signal that fires when ``signal`` fires or after ``timeout``.

    Useful for bounded waits::

        yield signal_or_timeout(sim, reply_signal, 0.9)

    The race signal fires exactly once; whichever source loses finds no
    waiters, which is harmless.
    """
    race = Signal(sim, name=f"race:{signal.name}")
    timer = sim.schedule(timeout, race.fire, None)
    signal._add_waiter(_SignalRelay(timer, race))  # type: ignore[arg-type]
    return race


class _SignalRelay:
    """Forwards a signal wakeup into a race signal, cancelling the timer."""

    __slots__ = ("_timer", "_race")

    def __init__(self, timer, race: Signal):
        self._timer = timer
        self._race = race

    def _resume(self, value: Any) -> None:
        self._timer.cancel()
        self._race.fire(value)


class Queue:
    """An unbounded FIFO for inter-process communication.

    ``get()`` returns a wait request usable from a process::

        item = yield queue.get()
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self.name = name
        self._items: List[Any] = []
        self._signal = Signal(sim, name=f"{name}.nonempty")

    def put(self, item: Any) -> None:
        self._items.append(item)
        self._signal.fire()

    def get(self) -> Generator[Any, Any, Any]:
        """Generator to be delegated to with ``yield from``."""
        while not self._items:
            yield self._signal
        return self._items.pop(0)

    def __len__(self) -> int:
        return len(self._items)
