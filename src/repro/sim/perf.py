"""Performance counters for the simulation engine.

The engine keeps its counters as plain integer attributes so the event
hot path never pays for attribute indirection through a stats object;
:meth:`repro.sim.engine.Simulator.stats` assembles an immutable
:class:`PerfCounters` snapshot on demand.

Counter semantics
-----------------
``events_scheduled``
    Total events ever pushed (``schedule`` + ``schedule_at``).
``events_fired``
    Events whose callback actually ran (same number as
    ``Simulator.events_processed``).
``events_cancelled``
    Events cancelled *before* firing.  Cancelling twice, or cancelling
    an event that already fired, does not count.
``compactions`` / ``events_compacted``
    How many times the heap was rebuilt to drop dead (cancelled)
    entries, and how many dead entries those rebuilds removed in total.
    Dead entries that reach the top of the heap are popped for free and
    are *not* counted here.
``runs`` / ``wall_time``
    Number of completed :meth:`Simulator.run` calls and the total
    wall-clock seconds spent inside them (callbacks included).
``pending`` / ``dead``
    Live queue state at snapshot time: events still waiting to fire and
    cancelled entries not yet removed from the wheel or overflow heap.
``pending_hwm``
    Queue-occupancy high-water mark: the largest number of live events
    that were ever pending simultaneously.
``wheel_pending`` / ``heap_pending``
    Where the live entries sit right now: in the near-future tick
    wheel vs. the far-future overflow heap.  Their sum equals
    ``pending``.
``bucket_sweeps``
    Number of tick buckets the batch dispatcher has drained; the mean
    batch size is ``events_fired / bucket_sweeps``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class PerfCounters:
    """An immutable snapshot of one simulator's performance counters."""

    events_scheduled: int = 0
    events_fired: int = 0
    events_cancelled: int = 0
    compactions: int = 0
    events_compacted: int = 0
    pending: int = 0
    dead: int = 0
    runs: int = 0
    wall_time: float = 0.0
    pending_hwm: int = 0
    wheel_pending: int = 0
    heap_pending: int = 0
    bucket_sweeps: int = 0

    @property
    def events_per_sec(self) -> float:
        """Fired events per wall-clock second inside ``run()``."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.events_fired / self.wall_time

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly dict (includes the derived ``events_per_sec``)."""
        out = asdict(self)
        out["events_per_sec"] = self.events_per_sec
        return out

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (f"PerfCounters(fired={self.events_fired}, "
                f"cancelled={self.events_cancelled}, "
                f"compactions={self.compactions}, "
                f"wall={self.wall_time:.3f}s, "
                f"rate={self.events_per_sec:,.0f}/s)")
