"""Named, seeded random-number streams.

Every stochastic component (radio loss, media contention, modulation
drops, workload generators) draws from its own named stream derived from
a single master seed.  This gives two properties the validation harness
depends on:

* **Reproducibility** — the same master seed regenerates every figure
  and table bit-for-bit.
* **Independence under refactoring** — adding draws to one component
  does not perturb the sequence seen by any other, because streams are
  keyed by name rather than draw order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    process invocations (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of this one's."""
        return RngStreams(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngStreams(master_seed={self.master_seed})"
