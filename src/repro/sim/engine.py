"""Discrete-event simulation engine.

The engine is the foundation every other subsystem is built on: the
network devices, protocol stacks, host kernels, and the modulation layer
all schedule work through a single :class:`Simulator`.

Design notes
------------
* Simulated time is a ``float`` number of seconds.  Events scheduled for
  the same instant fire in scheduling order (a monotone sequence number
  breaks ties), which keeps every run fully deterministic.
* The schedule lives in an **array-backed tick wheel**: near-future
  events go into per-tick slot buckets (``WHEEL_TICK`` wide,
  ``WHEEL_SLOTS`` of them, so the wheel covers a little over four
  simulated seconds ahead of the cursor) and only far-future events —
  TCP retransmit timers, reassembly expiries — overflow into a heap.
  The common schedule/fire path is therefore a list append plus one
  bucket sort per tick instead of an O(log n) heap shuffle per event.
* Queue entries are plain tuples: ``(time, seq, Event)`` for
  cancellable events, ``(time, seq, fn, args)`` for the fire-and-forget
  :meth:`Simulator.call_later` path, which skips the :class:`Event`
  handle allocation entirely.  Tuples compare element-wise at C speed
  and the sequence number is unique, so both ``bucket.sort()`` and the
  overflow heap order entries by the total ``(time, seq)`` key without
  ever invoking a Python-level ``__lt__`` (the third element is never
  compared, which is also why the two entry shapes can mix freely).
  That total order makes the wheel/heap boundary safe: a heap entry
  refilled into a bucket that already holds an equal-time entry still
  fires in scheduling order.
* **Batch firing**: the dispatcher drains one tick bucket per sweep,
  sorting it once and firing every event in it with the clock advanced
  as it goes.  Callbacks that schedule back into the currently-firing
  tick append to the live bucket; the dispatcher notices the growth
  and re-sorts the unfired tail, so intra-tick ordering is exact.
* Cancellation is O(1) and idempotent: the ``cancelled``/``fired``
  flags on the immortal :class:`Event` handle guarantee the live
  counter moves exactly once, and handles are never pooled or reused,
  so a stale handle can never affect a later event (the recycled
  *packet* slots in :mod:`repro.net.packet` are the ones that need
  generation counters; queue entries are plain tuples left to the
  allocator's free lists).  Dead wheel entries are dropped when their
  bucket fires; dead heap entries are dropped by a lazy compaction
  pass that runs when they dominate the heap (TCP retransmit timers
  are the classic producer of dead bloat), keeping compaction
  amortized O(1) per cancellation.
* Perf counters (fired/cancelled/compactions, occupancy high-water
  mark, wheel/heap split, wall time) are kept as plain attributes and
  snapshot via :meth:`Simulator.stats`; see :mod:`repro.sim.perf`.
* The engine knows nothing about clock-tick quantization; hosts that
  model a coarse kernel clock (the paper's 10 ms resolution) quantize
  their own callouts in :mod:`repro.hosts.kernel`.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

from .perf import PerfCounters

# Compaction threshold: rebuild the overflow heap once more than this
# many dead entries accumulate *and* they outnumber the live ones.  The
# floor keeps tiny simulations from compacting a dozen-entry heap; the
# ratio bounds wasted heap depth to one doubling, making compaction
# amortized O(1) per cancellation.
COMPACT_MIN_DEAD = 64

# Wheel geometry.  One-millisecond ticks are much finer than any
# modelled latency source (media serialization, driver gaps, the 10 ms
# kernel clock), so same-bucket events are genuinely near-simultaneous;
# 4096 slots put every event less than ~4.1 s out on the fast array
# path, which covers all media/protocol traffic and leaves only
# long-period timers for the heap.
WHEEL_TICK = 1e-3
_INV_TICK = 1.0 / WHEEL_TICK
WHEEL_SLOTS = 4096
_WHEEL_MASK = WHEEL_SLOTS - 1

_INF = float("inf")
_FAR_TICK = 1 << 62  # heap-head cache sentinel: "no heap entries"

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


class Event:
    """A scheduled callback, returned by :meth:`Simulator.schedule`.

    Holds enough state to be cancelled and inspected.  User code should
    treat instances as opaque handles.  Handles are never recycled, so
    holding one forever is safe: cancelling after the event fired stays
    a no-op for the rest of time.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired",
                 "_sim", "_in_heap")

    def __init__(self, time: float = 0.0, seq: int = 0,
                 fn: Optional[Callable[..., Any]] = None,
                 args: tuple = (), sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim
        self._in_heap = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once.

        Cancelling an event that already fired (or was already
        cancelled) is a no-op, so the simulator's live-event counter is
        adjusted exactly once per effective cancellation.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Dropping the callback both marks the queue entry dead for the
        # dispatcher and releases whatever the args pinned.
        self.fn = None
        self.args = ()
        sim = self._sim
        if sim is None:
            return
        sim._live -= 1
        sim._cancelled_count += 1
        if self._in_heap:
            dead = sim._dead_heap = sim._dead_heap + 1
            if dead > COMPACT_MIN_DEAD and dead * 2 > len(sim._heap):
                sim._compact()
        else:
            sim._dead_wheel += 1

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


_new_event = Event.__new__


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seqno = 0
        self._running = False
        self._events_processed = 0
        # Tick wheel + overflow heap (see module docstring).
        self._wheel: List[list] = [[] for _ in range(WHEEL_SLOTS)]
        self._cur_tick = 0          # lowest tick not yet fully dispatched
        self._wheel_count = 0       # entries in wheel buckets (live + dead)
        self._heap: List[tuple] = []  # far-future overflow, (time, seq) order
        # Cached tick of the heap head (``_FAR_TICK`` when empty), so
        # the dispatch loops compare two ints per bucket instead of
        # recomputing ``int(heap[0][0] * _INV_TICK)``.
        self._heap_head_tick = _FAR_TICK
        # Min-heap of occupied bucket ticks: a tick is pushed exactly
        # when its bucket goes empty -> non-empty and popped when the
        # dispatcher drains the bucket, so ``_ticks[0]`` is always the
        # next occupied tick.  Media traffic arrives several ticks
        # apart; this replaces an O(gap) empty-slot walk per event with
        # one C-level int-heap operation.
        self._ticks: List[int] = []
        # Live/dead bookkeeping: _live counts not-yet-cancelled,
        # not-yet-fired events; the dead counters track cancelled
        # entries still occupying their structure.
        self._live = 0
        self._dead_wheel = 0
        self._dead_heap = 0
        # Perf counters (see repro.sim.perf for semantics).  The
        # scheduled-event total is the sequence number itself: it is
        # bumped exactly once per schedule/call_later, so the schedule
        # hot path keeps one counter instead of two.
        self._cancelled_count = 0
        self._compactions = 0
        self._events_compacted = 0
        self._runs = 0
        self._wall_time = 0.0
        self._pending_hwm = 0
        self._bucket_sweeps = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        # Hot path: validated and placed inline, no helper detours.
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        seq = self._seqno = self._seqno + 1
        event = _new_event(Event)
        event.time = when
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.fired = False
        event._sim = self
        tick = int(when * _INV_TICK)
        cur = self._cur_tick
        if tick - cur < WHEEL_SLOTS:
            # Float dust can floor a just-now timestamp below the bucket
            # currently firing; clamp into it (the time itself still
            # sorts correctly inside the bucket).
            if tick < cur:
                tick = cur
            event._in_heap = False
            bucket = self._wheel[tick & _WHEEL_MASK]
            if not bucket:
                _heappush(self._ticks, tick)
            bucket.append((when, seq, event))
            self._wheel_count += 1
        else:
            event._in_heap = True
            _heappush(self._heap, (when, seq, event))
            if tick < self._heap_head_tick:
                self._heap_head_tick = tick
        live = self._live = self._live + 1
        if live > self._pending_hwm:
            self._pending_hwm = live
        return event

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        seq = self._seqno = self._seqno + 1
        event = _new_event(Event)
        event.time = when
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.fired = False
        event._sim = self
        tick = int(when * _INV_TICK)
        cur = self._cur_tick
        if tick - cur < WHEEL_SLOTS:
            if tick < cur:
                tick = cur
            event._in_heap = False
            bucket = self._wheel[tick & _WHEEL_MASK]
            if not bucket:
                _heappush(self._ticks, tick)
            bucket.append((when, seq, event))
            self._wheel_count += 1
        else:
            event._in_heap = True
            _heappush(self._heap, (when, seq, event))
            if tick < self._heap_head_tick:
                self._heap_head_tick = tick
        live = self._live = self._live + 1
        if live > self._pending_hwm:
            self._pending_hwm = live
        return event

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle.

        For hot paths that never cancel (media delivery, process
        wakeups) this skips the handle allocation entirely; the queue
        entry is a bare ``(time, seq, fn, args)`` tuple.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        seq = self._seqno = self._seqno + 1
        tick = int(when * _INV_TICK)
        cur = self._cur_tick
        if tick - cur < WHEEL_SLOTS:
            if tick < cur:
                tick = cur
            bucket = self._wheel[tick & _WHEEL_MASK]
            if not bucket:
                _heappush(self._ticks, tick)
            bucket.append((when, seq, fn, args))
            self._wheel_count += 1
        else:
            _heappush(self._heap, (when, seq, fn, args))
            if tick < self._heap_head_tick:
                self._heap_head_tick = tick
        live = self._live = self._live + 1
        if live > self._pending_hwm:
            self._pending_hwm = live

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`Event` handle."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        seq = self._seqno = self._seqno + 1
        tick = int(when * _INV_TICK)
        cur = self._cur_tick
        if tick - cur < WHEEL_SLOTS:
            if tick < cur:
                tick = cur
            bucket = self._wheel[tick & _WHEEL_MASK]
            if not bucket:
                _heappush(self._ticks, tick)
            bucket.append((when, seq, fn, args))
            self._wheel_count += 1
        else:
            _heappush(self._heap, (when, seq, fn, args))
            if tick < self._heap_head_tick:
                self._heap_head_tick = tick
        live = self._live = self._live + 1
        if live > self._pending_hwm:
            self._pending_hwm = live

    def call_batch(self, entries) -> int:
        """Bulk :meth:`call_at`: schedule many fire-and-forget callbacks.

        ``entries`` yields ``(when, fn, args)`` triples with *absolute*
        timestamps.  This is the trace-replay fast path — loading a
        collected trace turns into tens of thousands of timestamped
        events scheduled at once, so the per-call bookkeeping (sequence
        counter, wheel bounds, live accounting) is hoisted out of the
        per-entry loop.  ``entries`` must not schedule or cancel other
        work while being iterated.  Returns the number scheduled.
        """
        now = self._now
        seqno = self._seqno
        wheel = self._wheel
        ticks = self._ticks
        heap = self._heap
        cur = self._cur_tick
        added_wheel = 0
        count = 0
        try:
            for when, fn, args in entries:
                if when < now:
                    raise SimulationError(
                        f"cannot schedule into the past (when={when}, now={now})"
                    )
                seqno += 1
                tick = int(when * _INV_TICK)
                if tick - cur < WHEEL_SLOTS:
                    if tick < cur:
                        tick = cur
                    bucket = wheel[tick & _WHEEL_MASK]
                    if not bucket:
                        _heappush(ticks, tick)
                    bucket.append((when, seqno, fn, args))
                    added_wheel += 1
                else:
                    _heappush(heap, (when, seqno, fn, args))
                    if tick < self._heap_head_tick:
                        self._heap_head_tick = tick
                count += 1
        finally:
            # A mid-batch error (bad entry) must leave the accepted
            # prefix consistently accounted.
            self._seqno = seqno
            self._wheel_count += added_wheel
            live = self._live = self._live + count
            if live > self._pending_hwm:
                self._pending_hwm = live
        return count

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        """Pull heap entries now inside the wheel window into their buckets."""
        heap = self._heap
        wheel = self._wheel
        cur = self._cur_tick
        bound = cur + WHEEL_SLOTS
        while heap:
            head = heap[0]
            tick = int(head[0] * _INV_TICK)
            if tick >= bound:
                break
            _heappop(heap)
            if len(head) == 3:
                event = head[2]
                if event.fn is None:
                    # Cancelled while waiting in the heap.
                    self._dead_heap -= 1
                    continue
                event._in_heap = False
            if tick < cur:
                tick = cur
            bucket = wheel[tick & _WHEEL_MASK]
            if not bucket:
                _heappush(self._ticks, tick)
            bucket.append(head)
            self._wheel_count += 1
        self._heap_head_tick = (int(heap[0][0] * _INV_TICK) if heap
                                else _FAR_TICK)

    def _compact(self) -> None:
        """Rebuild the overflow heap without dead (cancelled) entries.

        In-place (slice assignment) so the dispatch loop's local heap
        reference stays valid when a callback's ``cancel`` triggers
        compaction mid-run.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [e for e in heap
                   if len(e) == 4 or e[2].fn is not None]
        heapq.heapify(heap)
        self._events_compacted += before - len(heap)
        self._dead_heap = 0
        self._compactions += 1
        self._heap_head_tick = (int(heap[0][0] * _INV_TICK) if heap
                                else _FAR_TICK)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    # Three dispatch loops, specialized like the seed's: the unbounded
    # drain (``run()``), the horizon drain (``run(until=...)`` — the
    # harness's chunked pattern), and the fully-featured budgeted loop
    # (``step`` / ``max_events``).  Each drains one tick bucket per
    # sweep: sort once, fire in (time, seq) order, merge and re-sort
    # the unfired tail whenever a callback schedules into the
    # currently-firing tick.  The per-bucket ``finally`` drops exactly
    # the consumed prefix, so a mid-bucket stop (horizon, budget, or a
    # callback exception) leaves the wheel consistent and resumable.

    def _run_unbounded(self) -> None:
        """Drain the queue with no horizon or budget checks (hot loop)."""
        wheel = self._wheel
        heap = self._heap
        ticks = self._ticks
        fired = 0
        try:
            while self._live:
                if self._wheel_count == 0:
                    if not heap:
                        break
                    # The head may be dead, but its timestamp is still a
                    # lower bound for the whole heap; dead entries are
                    # reclaimed by refill or lazy compaction, never
                    # eagerly (matching the seed's accounting).
                    jump = int(heap[0][0] * _INV_TICK)
                    if jump > self._cur_tick:
                        self._cur_tick = jump
                    self._refill()
                    continue
                # Scan for the next occupied bucket.  All wheel entries
                # lie in [cur, cur + WHEEL_SLOTS), so this terminates
                # within one lap.
                tick = ticks[0]
                bucket = wheel[tick & _WHEEL_MASK]
                # The advanced cursor may make heap entries eligible —
                # the heap head can even precede the next wheel bucket
                # (it overflowed relative to an older, smaller cursor).
                head_tick = self._heap_head_tick
                if head_tick <= tick:
                    if head_tick > self._cur_tick:
                        self._cur_tick = head_tick
                    self._refill()
                    continue
                n = len(bucket)
                if n == 1:
                    # Singleton bucket (sparse traffic): fire directly,
                    # skipping the sort/merge machinery.  The cursor is
                    # advanced first, so a callback scheduling back into
                    # this instant lands in the next bucket, where its
                    # earlier timestamp sorts it ahead — order is
                    # preserved without the mid-sweep merge.
                    entry = bucket[0]
                    bucket.clear()
                    _heappop(ticks)
                    self._wheel_count -= 1
                    self._cur_tick = tick + 1
                    self._bucket_sweeps += 1
                    if len(entry) == 3:
                        event = entry[2]
                        fn = event.fn
                        if fn is None:
                            self._dead_wheel -= 1
                            continue
                        event.fired = True
                        self._now = entry[0]
                        self._live -= 1
                        fired += 1
                        fn(*event.args)
                    else:
                        self._now = entry[0]
                        self._live -= 1
                        fired += 1
                        entry[2](*entry[3])
                    continue
                self._cur_tick = tick
                bucket.sort()
                self._bucket_sweeps += 1
                i = 0
                try:
                    while i < n:
                        entry = bucket[i]
                        i += 1
                        if len(entry) == 3:
                            event = entry[2]
                            fn = event.fn
                            if fn is None:
                                # Cancelled while waiting in this bucket.
                                self._dead_wheel -= 1
                                continue
                            event.fired = True
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            fn(*event.args)
                        else:
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            entry[2](*entry[3])
                        if len(bucket) != n:
                            # Callbacks scheduled into this tick: keep
                            # exact (time, seq) order over the unfired
                            # tail (appends land at the end).
                            tail = bucket[i:]
                            tail.sort()
                            bucket[i:] = tail
                            n = len(bucket)
                finally:
                    del bucket[:i]
                    self._wheel_count -= i
                    if not bucket:
                        _heappop(ticks)
                self._cur_tick = tick + 1
        finally:
            self._events_processed += fired

    def _run_until(self, until: float) -> None:
        """Drain events up to a horizon, no event budget (hot loop).

        Buckets strictly before the horizon's tick sweep without any
        per-event time check; only the bucket the horizon bisects pays
        for one.
        """
        wheel = self._wheel
        heap = self._heap
        ticks = self._ticks
        until_tick = int(until * _INV_TICK)
        fired = 0
        try:
            while self._live:
                if self._wheel_count == 0:
                    if not heap:
                        break
                    head_t = heap[0][0]
                    if head_t > until:
                        if until_tick > self._cur_tick:
                            self._cur_tick = until_tick
                        break
                    jump = int(head_t * _INV_TICK)
                    if jump > self._cur_tick:
                        self._cur_tick = jump
                    self._refill()
                    continue
                tick = ticks[0]
                bucket = wheel[tick & _WHEEL_MASK]
                head_tick = self._heap_head_tick
                if head_tick <= tick:
                    if head_tick > self._cur_tick:
                        self._cur_tick = head_tick
                    self._refill()
                    continue
                if tick < until_tick:
                    # Whole bucket strictly before the horizon.
                    n = len(bucket)
                    if n == 1:
                        # Singleton fast path (see _run_unbounded).
                        entry = bucket[0]
                        bucket.clear()
                        _heappop(ticks)
                        self._wheel_count -= 1
                        self._cur_tick = tick + 1
                        self._bucket_sweeps += 1
                        if len(entry) == 3:
                            event = entry[2]
                            fn = event.fn
                            if fn is None:
                                self._dead_wheel -= 1
                                continue
                            event.fired = True
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            fn(*event.args)
                        else:
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            entry[2](*entry[3])
                        continue
                    self._cur_tick = tick
                    bucket.sort()
                    self._bucket_sweeps += 1
                    i = 0
                    try:
                        while i < n:
                            entry = bucket[i]
                            i += 1
                            if len(entry) == 3:
                                event = entry[2]
                                fn = event.fn
                                if fn is None:
                                    self._dead_wheel -= 1
                                    continue
                                event.fired = True
                                self._now = entry[0]
                                self._live -= 1
                                fired += 1
                                fn(*event.args)
                            else:
                                self._now = entry[0]
                                self._live -= 1
                                fired += 1
                                entry[2](*entry[3])
                            if len(bucket) != n:
                                tail = bucket[i:]
                                tail.sort()
                                bucket[i:] = tail
                                n = len(bucket)
                    finally:
                        del bucket[:i]
                        self._wheel_count -= i
                        if not bucket:
                            _heappop(ticks)
                    self._cur_tick = tick + 1
                    continue
                if tick > until_tick and min(bucket)[0] > until:
                    # Next work is beyond the horizon; park the cursor
                    # (buckets cur..until_tick are all empty).  The min
                    # guard keeps late-clamped entries — scheduled for a
                    # tick the cursor had already passed — from being
                    # missed behind the horizon.
                    if until_tick > self._cur_tick:
                        self._cur_tick = until_tick
                    return
                # The horizon bisects this bucket: per-event time checks.
                self._cur_tick = tick
                n = len(bucket)
                if n > 1:
                    bucket.sort()
                self._bucket_sweeps += 1
                i = 0
                try:
                    while i < n:
                        entry = bucket[i]
                        if entry[0] > until:
                            break
                        i += 1
                        if len(entry) == 3:
                            event = entry[2]
                            fn = event.fn
                            if fn is None:
                                self._dead_wheel -= 1
                                continue
                            event.fired = True
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            fn(*event.args)
                        else:
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            entry[2](*entry[3])
                        if len(bucket) != n:
                            tail = bucket[i:]
                            tail.sort()
                            bucket[i:] = tail
                            n = len(bucket)
                finally:
                    del bucket[:i]
                    self._wheel_count -= i
                    if not bucket:
                        _heappop(ticks)
                if bucket:
                    return  # cursor stays on this tick for the resume
                self._cur_tick = tick + 1
        finally:
            self._events_processed += fired

    def _dispatch(self, until: float, budget: int) -> int:
        """Budgeted dispatch loop backing :meth:`step` and ``max_events``.

        Fires events in exact ``(time, seq)`` order until the queue has
        no live entries, the next event lies beyond ``until``, or
        ``budget`` events have fired (``budget < 0`` means unbounded).
        Returns the number of events fired.
        """
        wheel = self._wheel
        heap = self._heap
        ticks = self._ticks
        fired = 0
        until_tick = -1 if until == _INF else int(until * _INV_TICK)
        try:
            while self._live:
                if fired == budget:
                    break
                if self._wheel_count == 0:
                    if not heap:
                        break
                    head_t = heap[0][0]
                    if head_t > until:
                        if until_tick > self._cur_tick:
                            self._cur_tick = until_tick
                        break
                    jump = int(head_t * _INV_TICK)
                    if jump > self._cur_tick:
                        self._cur_tick = jump
                    self._refill()
                    continue
                tick = ticks[0]
                bucket = wheel[tick & _WHEEL_MASK]
                head_tick = self._heap_head_tick
                if head_tick <= tick:
                    if head_tick > self._cur_tick:
                        self._cur_tick = head_tick
                    self._refill()
                    continue
                if 0 <= until_tick < tick and min(bucket)[0] > until:
                    self._cur_tick = until_tick
                    break
                self._cur_tick = tick
                n = len(bucket)
                if n > 1:
                    bucket.sort()
                self._bucket_sweeps += 1
                i = 0
                stopped = False
                try:
                    while i < n:
                        entry = bucket[i]
                        if entry[0] > until or fired == budget:
                            stopped = True
                            break
                        i += 1
                        if len(entry) == 3:
                            event = entry[2]
                            fn = event.fn
                            if fn is None:
                                self._dead_wheel -= 1
                                continue
                            event.fired = True
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            fn(*event.args)
                        else:
                            self._now = entry[0]
                            self._live -= 1
                            fired += 1
                            entry[2](*entry[3])
                        if len(bucket) != n:
                            tail = bucket[i:]
                            tail.sort()
                            bucket[i:] = tail
                            n = len(bucket)
                finally:
                    del bucket[:i]
                    self._wheel_count -= i
                    if not bucket:
                        _heappop(ticks)
                if stopped and entry[0] > until:
                    break  # horizon stop: cursor stays on this tick
                if not bucket:
                    self._cur_tick = tick + 1
        finally:
            self._events_processed += fired
        return fired

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        return self._dispatch(_INF, 1) > 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        observe a monotone clock.

        ``max_events`` counts *fired* events only: cancelled entries
        encountered during dispatch never count toward the budget.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        started = perf_counter()
        try:
            if max_events is None:
                if until is None:
                    self._run_unbounded()
                else:
                    self._run_until(until)
            else:
                self._dispatch(_INF if until is None else until, max_events)
        finally:
            self._running = False
            self._runs += 1
            self._wall_time += perf_counter() - started
        if until is not None and self._now < until:
            self._now = until
            if self._live == 0:
                # Only dead entries (if anything) remain behind the
                # horizon; parking the cursor keeps future scans short.
                until_tick = int(until * _INV_TICK)
                if until_tick > self._cur_tick:
                    self._cur_tick = until_tick

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def stats(self) -> PerfCounters:
        """An immutable snapshot of the engine's performance counters."""
        dead_wheel = self._dead_wheel
        dead_heap = self._dead_heap
        return PerfCounters(
            events_scheduled=self._seqno,
            events_fired=self._events_processed,
            events_cancelled=self._cancelled_count,
            compactions=self._compactions,
            events_compacted=self._events_compacted,
            pending=self._live,
            dead=dead_wheel + dead_heap,
            runs=self._runs,
            wall_time=self._wall_time,
            pending_hwm=self._pending_hwm,
            wheel_pending=self._wheel_count - dead_wheel,
            heap_pending=len(self._heap) - dead_heap,
            bucket_sweeps=self._bucket_sweeps,
        )
