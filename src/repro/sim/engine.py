"""Discrete-event simulation engine.

The engine is the foundation every other subsystem is built on: the
network devices, protocol stacks, host kernels, and the modulation layer
all schedule work through a single :class:`Simulator`.

Design notes
------------
* Simulated time is a ``float`` number of seconds.  Events scheduled for
  the same instant fire in scheduling order (a monotone sequence number
  breaks ties), which keeps every run fully deterministic.
* Cancellation is O(1): cancelling marks the event dead and the event is
  skipped when it reaches the head of the heap.
* The engine knows nothing about clock-tick quantization; hosts that
  model a coarse kernel clock (the paper's 10 ms resolution) quantize
  their own callouts in :mod:`repro.hosts.kernel`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


class Event:
    """A scheduled callback, returned by :meth:`Simulator.schedule`.

    Holds enough state to be cancelled and inspected.  User code should
    treat instances as opaque handles.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} fn={getattr(self.fn, '__name__', self.fn)!r} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        event = Event(when, next(self._seq), fn, args)
        heapq.heappush(self._queue, (when, event.seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        while self._queue:
            when, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = when
            event.fired = True
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        observe a monotone clock.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                when, _, event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and when > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = when
                event.fired = True
                self._events_processed += 1
                fired += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for _, _, e in self._queue if not e.cancelled)
