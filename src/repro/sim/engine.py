"""Discrete-event simulation engine.

The engine is the foundation every other subsystem is built on: the
network devices, protocol stacks, host kernels, and the modulation layer
all schedule work through a single :class:`Simulator`.

Design notes
------------
* Simulated time is a ``float`` number of seconds.  Events scheduled for
  the same instant fire in scheduling order (a monotone sequence number
  breaks ties), which keeps every run fully deterministic.
* :class:`Event` instances are heap-ordered directly (``__lt__`` on the
  ``(time, seq)`` key) so the queue holds events themselves rather than
  wrapper tuples.
* Cancellation is O(1): cancelling marks the event dead, fixes the live
  counter, and the entry is dropped either when it reaches the head of
  the heap or by a lazy compaction pass.  Compaction runs when dead
  entries outnumber live ones (TCP retransmit timers are the classic
  producer of dead bloat: almost every data segment schedules a timer
  that the ACK cancels long before it would fire).  Rebuilding filters
  on the ``cancelled`` flag only, and the ``(time, seq)`` key is a
  total order, so compaction can never reorder live events.
* Perf counters (fired/cancelled/compactions, wall time, events/sec)
  are kept as plain attributes and snapshot via :meth:`Simulator.stats`;
  see :mod:`repro.sim.perf`.
* The engine knows nothing about clock-tick quantization; hosts that
  model a coarse kernel clock (the paper's 10 ms resolution) quantize
  their own callouts in :mod:`repro.hosts.kernel`.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, List, Optional

from .perf import PerfCounters

# Compaction threshold: rebuild the heap once more than this many dead
# entries accumulate *and* they outnumber the live ones.  The floor
# keeps tiny simulations from compacting a dozen-entry heap; the ratio
# bounds wasted heap depth to one doubling, making compaction amortized
# O(1) per cancellation.
COMPACT_MIN_DEAD = 64

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


class Event:
    """A scheduled callback, returned by :meth:`Simulator.schedule`.

    Holds enough state to be cancelled and inspected.  User code should
    treat instances as opaque handles.
    """

    __slots__ = ("_key", "time", "seq", "fn", "args", "cancelled", "fired",
                 "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, sim: "Optional[Simulator]" = None):
        self._key = (time, seq)
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def __lt__(self, other: "Event") -> bool:
        # Heap order is the (time, seq) key: time-ordered, with the
        # monotone sequence number breaking ties in scheduling order.
        return self._key < other._key

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once.

        Cancelling an event that already fired (or was already
        cancelled) is a no-op, so the simulator's live-event counter is
        adjusted exactly once per effective cancellation.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            sim._cancelled_count += 1
            dead = sim._dead = sim._dead + 1
            if dead > COMPACT_MIN_DEAD and dead > sim._live:
                sim._compact()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} fn={getattr(self.fn, '__name__', self.fn)!r} {state}>"


_new_event = Event.__new__


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        # Live/dead bookkeeping: _live counts not-yet-cancelled,
        # not-yet-fired events in the queue; _dead counts cancelled
        # entries still occupying heap slots.
        self._live = 0
        self._dead = 0
        # Perf counters (see repro.sim.perf for semantics).
        self._scheduled_count = 0
        self._cancelled_count = 0
        self._compactions = 0
        self._events_compacted = 0
        self._runs = 0
        self._wall_time = 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        # Hot path: validated once here, no detour through schedule_at.
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _new_event(Event)
        when = event.time = self._now + delay
        seq = event.seq = next(self._seq)
        event._key = (when, seq)
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.fired = False
        event._sim = self
        _heappush(self._queue, event)
        self._live += 1
        self._scheduled_count += 1
        return event

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        event = _new_event(Event)
        event.time = when
        seq = event.seq = next(self._seq)
        event._key = (when, seq)
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.fired = False
        event._sim = self
        _heappush(self._queue, event)
        self._live += 1
        self._scheduled_count += 1
        return event

    # ------------------------------------------------------------------
    # Heap maintenance
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Rebuild the heap without dead (cancelled) entries.

        In-place (slice assignment) so a ``run`` loop holding a local
        reference to the queue keeps seeing the same list object even
        when a callback's ``cancel`` triggers compaction mid-run.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [e for e in queue if not e.cancelled]
        heapq.heapify(queue)
        self._events_compacted += before - len(queue)
        self._dead = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        queue = self._queue
        while queue:
            event = _heappop(queue)
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = event.time
            event.fired = True
            self._live -= 1
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        observe a monotone clock.

        ``max_events`` counts *fired* events only: cancelled entries
        popped off the heap never count toward the budget.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        started = perf_counter()
        try:
            if max_events is None:
                if until is None:
                    self._run_unbounded()
                else:
                    self._run_until(until)
            else:
                self._run_bounded(until, max_events)
        finally:
            self._running = False
            self._runs += 1
            self._wall_time += perf_counter() - started
        if until is not None and self._now < until:
            self._now = until

    def _run_unbounded(self) -> None:
        """Drain the queue with no horizon or budget checks (hot loop)."""
        queue = self._queue
        while queue:
            event = _heappop(queue)
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = event.time
            event.fired = True
            self._live -= 1
            self._events_processed += 1
            event.fn(*event.args)

    def _run_until(self, until: float) -> None:
        """Drain events up to a horizon, no event budget (hot loop).

        This is the harness's main pattern (``world.run(until=t)`` in
        fixed chunks), so it avoids the per-iteration budget checks of
        :meth:`_run_bounded`.
        """
        queue = self._queue
        while queue:
            event = queue[0]
            if event.cancelled:
                _heappop(queue)
                self._dead -= 1
                continue
            if event.time > until:
                break
            _heappop(queue)
            self._now = event.time
            event.fired = True
            self._live -= 1
            self._events_processed += 1
            event.fn(*event.args)

    def _run_bounded(self, until: Optional[float],
                     max_events: Optional[int]) -> None:
        queue = self._queue
        fired = 0
        while queue:
            event = queue[0]
            if event.cancelled:
                _heappop(queue)
                self._dead -= 1
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            _heappop(queue)
            self._now = event.time
            event.fired = True
            self._live -= 1
            self._events_processed += 1
            fired += 1
            event.fn(*event.args)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the queue (O(1))."""
        return self._live

    def stats(self) -> PerfCounters:
        """An immutable snapshot of the engine's performance counters."""
        return PerfCounters(
            events_scheduled=self._scheduled_count,
            events_fired=self._events_processed,
            events_cancelled=self._cancelled_count,
            compactions=self._compactions,
            events_compacted=self._events_compacted,
            pending=self._live,
            dead=self._dead,
            runs=self._runs,
            wall_time=self._wall_time,
        )
