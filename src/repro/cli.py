"""Command-line interface.

Mirrors the workflow of the paper's tools: collect a trace of a
scenario, distill it, inspect it, replay-validate a benchmark against
it, or export it for modern emulators.

    repro collect    --scenario porter -o porter.trace
    repro distill    porter.trace -o porter.json
    repro info       porter.json
    repro validate   --scenario wean --benchmark ftp --trials 2
    repro characterize --scenario flagstaff --trials 4
    repro export     porter.json --format netem -o porter.sh
    repro compensation
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import render_series, render_table
from .core import Distiller, ReplayTrace, load_trace, save_trace
from .core.compensation import measure_modulation_network
from .core.export import (
    to_mahimahi_commands,
    to_mahimahi_trace,
    to_netem_script,
)
from .scenarios import ALL_SCENARIOS, scenario_by_name
from .validation import (
    AndrewRunner,
    FtpRunner,
    WebRunner,
    characterize_scenario,
    collect_trace,
    default_workers,
    run_validation,
)

SCENARIO_NAMES = sorted(cls.name for cls in ALL_SCENARIOS)
RUNNERS = {"ftp": FtpRunner, "web": WebRunner, "andrew": AndrewRunner}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace-based mobile network emulation (SIGCOMM 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="trace one scenario traversal")
    p.add_argument("--scenario", choices=SCENARIO_NAMES, required=True)
    p.add_argument("--trial", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True,
                   help="trace file to write (binary, self-descriptive)")

    p = sub.add_parser("distill", help="collected trace -> replay trace")
    p.add_argument("trace", help="file written by `repro collect`")
    p.add_argument("-o", "--output", required=True,
                   help="replay trace JSON to write")
    p.add_argument("--window", type=float, default=5.0,
                   help="sliding window width in seconds (default 5)")
    p.add_argument("--step", type=float, default=1.0)

    p = sub.add_parser("info", help="summarize a replay trace")
    p.add_argument("replay", help="replay trace JSON")

    p = sub.add_parser("validate",
                       help="live-vs-modulated benchmark comparison")
    p.add_argument("--scenario", choices=SCENARIO_NAMES, required=True)
    p.add_argument("--benchmark", choices=sorted(RUNNERS), required=True)
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--baseline", action="store_true",
                   help="also run the raw-Ethernet reference row")
    p.add_argument("--workers", type=int, default=None,
                   help="trial process-pool size (default: one per CPU; "
                        "1 forces serial; results are identical either way)")
    p.add_argument("--ftp-bytes", type=int, default=None,
                   help="ftp benchmark only: transfer size in bytes "
                        "(default 10 MB, the paper's)")

    p = sub.add_parser("characterize",
                       help="Figures 2-5 style scenario characterization")
    p.add_argument("--scenario", choices=SCENARIO_NAMES, required=True)
    p.add_argument("--trials", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=None,
                   help="trial process-pool size (default: one per CPU)")

    p = sub.add_parser("export", help="replay trace -> netem/mahimahi")
    p.add_argument("replay", help="replay trace JSON")
    p.add_argument("--format", choices=("netem", "mahimahi"),
                   required=True)
    p.add_argument("--dev", default="eth0", help="netem: interface name")
    p.add_argument("--loop", action="store_true",
                   help="netem: loop over the trace until interrupted")
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("analyze", help="statistics of a collected trace")
    p.add_argument("trace", help="file written by `repro collect`")
    p.add_argument("--filter", dest="filter_expr", default=None,
                   help="BPF-style expression, e.g. 'icmp and out'")
    p.add_argument("--dump", action="store_true",
                   help="print matching packets, tcpdump style")
    p.add_argument("--limit", type=int, default=40,
                   help="max packets printed with --dump")

    sub.add_parser("compensation",
                   help="measure the testbed's delay-compensation constant")
    return parser


# ----------------------------------------------------------------------
def _cmd_collect(args) -> int:
    scenario = scenario_by_name(args.scenario)
    records = collect_trace(scenario, args.seed, args.trial)
    count = save_trace(args.output, records,
                       description=f"{args.scenario} trial {args.trial} "
                                   f"seed {args.seed}")
    print(f"wrote {count} records to {args.output}")
    return 0


def _cmd_distill(args) -> int:
    records = load_trace(args.trace)
    distiller = Distiller(window_width=args.window, step=args.step)
    result = distiller.distill(records, name=args.trace)
    result.replay.save(args.output)
    replay = result.replay
    print(f"distilled {result.groups_used} groups "
          f"({result.groups_corrected} corrected, "
          f"{result.groups_skipped} skipped) into {len(replay)} tuples")
    print(f"wrote {args.output}")
    _print_replay_summary(replay)
    return 0


def _cmd_info(args) -> int:
    replay = ReplayTrace.load(args.replay)
    print(f"replay trace {replay.name!r}: {len(replay)} tuples, "
          f"{replay.duration:.0f}s")
    _print_replay_summary(replay)
    # Coarse timeline: ten segments of the trace.
    segments = 10
    labels, lat_lo, lat_hi, loss_lo, loss_hi = [], [], [], [], []
    for k in range(segments):
        lo = replay.duration * k / segments
        hi = replay.duration * (k + 1) / segments
        tuples = [t for i, t in enumerate(replay)
                  if lo <= _tuple_start(replay, i) < hi]
        if not tuples:
            tuples = [replay.tuple_at(min(lo, replay.duration - 1e-9))]
        labels.append(f"{int(lo)}s")
        lat_lo.append(min(t.F for t in tuples) * 1e3)
        lat_hi.append(max(t.F for t in tuples) * 1e3)
        loss_lo.append(min(t.L for t in tuples) * 100)
        loss_hi.append(max(t.L for t in tuples) * 100)
    print()
    print(render_series("latency", labels, lat_lo, lat_hi, unit="ms"))
    print()
    print(render_series("loss", labels, loss_lo, loss_hi, unit="%"))
    return 0


def _tuple_start(replay: ReplayTrace, index: int) -> float:
    return sum(t.d for t in replay.tuples[:index])


def _print_replay_summary(replay: ReplayTrace) -> None:
    print(f"  latency   {replay.mean_latency() * 1e3:8.2f} ms (mean)")
    print(f"  bandwidth {replay.mean_bandwidth_bps() / 1e6:8.2f} Mb/s "
          f"(bottleneck)")
    print(f"  loss      {replay.mean_loss() * 100:8.2f} %")


def _cmd_validate(args) -> int:
    scenario = scenario_by_name(args.scenario)
    if args.benchmark == "ftp" and args.ftp_bytes is not None:
        runner = RUNNERS[args.benchmark](nbytes=args.ftp_bytes)
    else:
        runner = RUNNERS[args.benchmark]()
    sweep = run_validation(scenario, runner, seed=args.seed,
                           trials=args.trials, baseline=args.baseline,
                           workers=args.workers)
    print(sweep.render(
        title=f"{args.benchmark} on {args.scenario} "
              f"({args.trials} trials)"))
    return 0


def _cmd_characterize(args) -> int:
    scenario = scenario_by_name(args.scenario)
    workers = args.workers if args.workers is not None else default_workers()
    character = characterize_scenario(scenario, seed=args.seed,
                                      trials=args.trials, workers=workers)
    print(character.render())
    return 0


def _cmd_export(args) -> int:
    replay = ReplayTrace.load(args.replay)
    if args.format == "netem":
        content = to_netem_script(replay, dev=args.dev, loop=args.loop)
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(content)
        print(f"wrote netem script to {args.output} "
              f"(run as: sh {args.output} <dev>)")
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(to_mahimahi_trace(replay))
        print(f"wrote mm-link trace to {args.output}")
        print("run inside:", to_mahimahi_commands(replay, args.output),
              end="")
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import analyze_trace
    from .analysis.filter import dump_records, filter_records

    records = load_trace(args.trace)
    if args.filter_expr:
        matched = filter_records(records, args.filter_expr)
        print(f"{len(matched)} packets match {args.filter_expr!r}")
        if args.dump:
            print(dump_records(matched, limit=args.limit))
        elif matched:
            print(analyze_trace(matched).render())
        return 0
    if args.dump:
        from .core.traceformat import PacketRecord

        packets = [r for r in records if isinstance(r, PacketRecord)]
        print(dump_records(packets, limit=args.limit))
        return 0
    print(analyze_trace(records).render())
    return 0


def _cmd_compensation(args) -> int:
    measurement = measure_modulation_network()
    print(f"bottleneck per-byte cost Vb = {measurement.vb * 1e6:.3f} us/byte")
    print(f"  (bandwidth {measurement.bandwidth_bps / 1e6:.2f} Mb/s, "
          f"latency {measurement.latency * 1e3:.3f} ms)")
    print("pass this Vb as compensation_vb to install_modulation()")
    return 0


COMMANDS = {
    "collect": _cmd_collect,
    "distill": _cmd_distill,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "characterize": _cmd_characterize,
    "export": _cmd_export,
    "analyze": _cmd_analyze,
    "compensation": _cmd_compensation,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
