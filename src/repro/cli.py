"""Command-line interface.

Mirrors the workflow of the paper's tools: collect a trace of a
scenario, distill it, inspect it, replay-validate a benchmark against
it, or export it for modern emulators.

    repro collect    --scenario porter -o porter.trace
    repro distill    porter.trace -o porter.json
    repro info       porter.json
    repro scenarios                          # registered scenarios
    repro validate   --scenario wean --benchmark ftp --trials 2
    repro characterize --scenario flagstaff --trials 4
    repro trace      wean --benchmark ftp -o wean.trace.json
    repro export     porter.json --format netem -o porter.sh
    repro compensation
    repro check      --scenario all          # invariant monitors
    repro check      --smoke --mutate-tick   # CI mutation smoke
    repro fuzz       --count 25 --seed 0     # generative invariant tier
    repro metrics    metrics.jsonl           # Prometheus exposition

Every ``--scenario`` accepts a registered name (``repro scenarios``
lists them) *or* a path to a TOML/JSON scenario spec file, so a
scenario defined purely as data runs the whole collect → distill →
modulate pipeline.  ``repro fuzz`` draws seeded random-but-valid
scenario specs (piecewise curves plus the mobility/RAN/LEO profile
families), runs the invariant monitors over each, and shrinks +
archives any violating spec as a TOML repro artifact — rerun it with
``repro check --scenario <artifact>``.  ``validate`` and ``check`` accept ``--cache-dir``:
a content-addressed artifact store that makes warm reruns skip every
stage whose inputs did not change.

Observability: ``repro trace`` runs one fully-instrumented trial;
``validate``/``characterize`` grow ``--metrics-out`` (per-trial JSONL)
and ``--trace-out`` (Chrome trace-event JSON, loadable in Perfetto or
chrome://tracing); ``info`` and ``analyze`` grow ``--json``.  A
``validate`` sweep is itself observable: ``--trace-out`` merges the
cross-process sweep timeline (one track per worker pid) into the
trace, ``--run-dir`` appends a structured run manifest to
``ledger.jsonl``, ``--progress`` reports live completion and ETA,
``--profile`` aggregates per-trial cProfile tables, and
``--metrics-format prom`` — or the standalone ``repro metrics``
subcommand — emits Prometheus text exposition.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .analysis import render_series, render_table
from .core import Distiller, ReplayTrace, load_trace, save_trace
from .core.compensation import measure_modulation_network
from .core.export import (
    to_mahimahi_commands,
    to_mahimahi_trace,
    to_netem_script,
)
from .obs import (
    DEFAULT_SPAN_LIMIT,
    MetricsRegistry,
    ObsConfig,
    RunLedger,
    SweepProgress,
    SweepTelemetry,
    aggregate_profiles,
    fold_records,
    merged_chrome_trace,
    read_jsonl,
    render_obs_summary,
    render_profile_table,
    sweep_ledger_record,
    sweep_registry,
    write_chrome_trace,
    write_jsonl,
)
from .runtime import TRANSPORTS
from .runtime.session import (
    ExecutionConfig,
    RuntimeSession,
    command_ledger_record,
)
from .scenarios import (
    register_spec_file,
    registered_scenarios,
    resolve_scenario,
    scenario_names,
    spec_origin,
)
from .validation import (
    AndrewRunner,
    FtpRunner,
    WebRunner,
    characterize_scenario_parallel,
    collect_trace,
    compensation_vb,
    distill_scenario_trace,
    run_live_trial,
    run_modulated_trial,
    run_validation,
)

RUNNERS = {"ftp": FtpRunner, "web": WebRunner, "andrew": AndrewRunner}

SCENARIO_HELP = ("registered scenario name (see `repro scenarios`) "
                 "or path to a TOML/JSON scenario spec file")


def _resolve_scenario_arg(name: str):
    """Resolve a scenario CLI argument, exiting 2 with a clear message.

    Accepts registered names and spec-file paths; an unknown name or a
    missing file is a usage error, not a traceback.
    """
    try:
        return resolve_scenario(name)
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: error: {message}", file=sys.stderr)
        raise SystemExit(2)
    except ValueError as exc:
        print(f"repro: error: invalid scenario spec {name!r}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)


def _execution_parent() -> argparse.ArgumentParser:
    """The shared execution flags of every bulk subcommand.

    ``validate``, ``characterize``, ``check`` and ``fuzz`` all fan
    work through :mod:`repro.runtime`; this parent parser gives them
    one spelling of the knobs (and one help text), and
    :class:`~repro.runtime.session.ExecutionConfig` reads them back
    off the parsed namespace.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument("--workers", type=int, default=None,
                       help="worker process count (default: one per CPU; "
                            "1 forces serial; results are byte-identical "
                            "for every worker count)")
    group.add_argument("--transport", choices=TRANSPORTS, default="auto",
                       help="execution backend and data plane: envelope "
                            "hands bulk results off through a shared "
                            "binary store, pickle ships them over the "
                            "pool pipe, socket runs workers as TCP "
                            "subprocesses on the loopback; auto picks "
                            "envelope (results identical on every "
                            "transport)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed artifact cache: warm "
                            "reruns load unchanged stages instead of "
                            "recomputing them (results are identical "
                            "either way)")
    group.add_argument("--progress", action="store_true",
                       help="live progress on stderr (stdout stays "
                            "byte-identical); plain lines when stderr "
                            "is not a TTY")
    group.add_argument("--run-dir", default=None, metavar="DIR",
                       help="append this command's run manifest "
                            "(workers, transport, cache, wall clock, "
                            "output hash) to DIR/ledger.jsonl")
    group.add_argument("--hosts", default=None, metavar="SPEC",
                       help="distribute over a worker fleet: "
                            "'a:4,b:8' (host:workers, 'local' for "
                            "pseudo-hosts on this machine) or a path "
                            "to a TOML hosts file; implies "
                            "--transport remote (results stay "
                            "byte-identical to serial)")
    return parent


def _session_executor(session: RuntimeSession):
    """The session's scheduler when the flags ask for parallelism,
    else ``None`` (the command's plain serial path).  The socket
    transport always goes through the scheduler — that is the whole
    point of asking for it."""
    config = session.config
    if ((config.workers or 1) > 1
            or config.transport in ("socket", "remote")
            or config.hosts):
        return session.scheduler()
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace-based mobile network emulation (SIGCOMM 1997)")
    execution = _execution_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="trace one scenario traversal")
    p.add_argument("--scenario", required=True, help=SCENARIO_HELP)
    p.add_argument("--trial", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True,
                   help="trace file to write (binary, self-descriptive)")

    p = sub.add_parser("distill", help="collected trace -> replay trace")
    p.add_argument("trace", help="file written by `repro collect`")
    p.add_argument("-o", "--output", required=True,
                   help="replay trace JSON to write")
    p.add_argument("--window", type=float, default=5.0,
                   help="sliding window width in seconds (default 5)")
    p.add_argument("--step", type=float, default=1.0)

    p = sub.add_parser("info", help="summarize a replay trace")
    p.add_argument("replay", help="replay trace JSON")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit machine-readable JSON (round-trips through "
                        "ReplayTrace.from_json)")

    p = sub.add_parser(
        "scenarios",
        help="list registered scenarios (builtin and spec files)")
    p.add_argument("specs", nargs="*", metavar="SPEC",
                   help="extra TOML/JSON spec files to register and "
                        "include in the listing")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the listing as machine-readable JSON")

    p = sub.add_parser("validate", parents=[execution],
                       help="live-vs-modulated benchmark comparison")
    p.add_argument("--scenario", required=True, help=SCENARIO_HELP)
    p.add_argument("--benchmark", choices=sorted(RUNNERS), required=True)
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--seeds", type=int, default=1,
                   help="Monte Carlo width: sweep this many consecutive "
                        "seeds (each with --trials trials) and pool "
                        "them into one summary; --seeds 1 (default) is "
                        "byte-identical to the original single-seed "
                        "sweep")
    p.add_argument("--baseline", action="store_true",
                   help="also run the raw-Ethernet reference row")
    p.add_argument("--ftp-bytes", type=int, default=None,
                   help="ftp benchmark only: transfer size in bytes "
                        "(default 10 MB, the paper's)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write one metrics record per trial as JSONL")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON of every trial "
                        "(open in Perfetto or chrome://tracing)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the sweep as machine-readable JSON "
                        "(tables, cache and transport accounting)")
    p.add_argument("--metrics-format", choices=("jsonl", "prom"),
                   default="jsonl",
                   help="--metrics-out format: jsonl writes one record "
                        "per trial; prom writes one unified Prometheus "
                        "text-exposition snapshot of the whole sweep")
    p.add_argument("--profile", action="store_true",
                   help="cProfile each trial and print an aggregated "
                        "top-N table (simulated results are unchanged)")

    p = sub.add_parser(
        "metrics",
        help="render per-trial metrics records (from `validate "
             "--metrics-out`) as one Prometheus text-exposition "
             "snapshot")
    p.add_argument("metrics_jsonl",
                   help="JSONL file written by --metrics-out")
    p.add_argument("--prefix", default="repro",
                   help="metric name prefix (default: repro)")

    p = sub.add_parser("characterize", parents=[execution],
                       help="Figures 2-5 style scenario characterization")
    p.add_argument("--scenario", required=True, help=SCENARIO_HELP)
    p.add_argument("--trials", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write one metrics record per traversal as JSONL")

    p = sub.add_parser(
        "trace",
        help="run one fully-instrumented trial (packet-lifecycle spans, "
             "metrics, modulation-fidelity audit)")
    p.add_argument("scenario", help=SCENARIO_HELP)
    p.add_argument("--benchmark", choices=sorted(RUNNERS), default="ftp")
    p.add_argument("--mode", choices=("modulated", "live"),
                   default="modulated",
                   help="modulated: collect+distill the scenario, then "
                        "trace the replayed benchmark; live: trace the "
                        "benchmark on the live WaveLAN world")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trial", type=int, default=0)
    p.add_argument("--ftp-bytes", type=int, default=512 * 1024,
                   help="ftp benchmark only: transfer size (default 512 KB "
                        "to keep single traced runs quick)")
    p.add_argument("--span-limit", type=int, default=DEFAULT_SPAN_LIMIT,
                   help="max stored span events (overruns are counted)")
    p.add_argument("-o", "--trace-out", default=None, metavar="FILE",
                   help="write the Chrome trace-event JSON here")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the trial's metrics record as JSONL")

    p = sub.add_parser("export", help="replay trace -> netem/mahimahi")
    p.add_argument("replay", help="replay trace JSON")
    p.add_argument("--format", choices=("netem", "mahimahi"),
                   required=True)
    p.add_argument("--dev", default="eth0", help="netem: interface name")
    p.add_argument("--loop", action="store_true",
                   help="netem: loop over the trace until interrupted")
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("analyze", help="statistics of a collected trace")
    p.add_argument("trace", help="file written by `repro collect`")
    p.add_argument("--filter", dest="filter_expr", default=None,
                   help="BPF-style expression, e.g. 'icmp and out'")
    p.add_argument("--dump", action="store_true",
                   help="print matching packets, tcpdump style")
    p.add_argument("--limit", type=int, default=40,
                   help="max packets printed with --dump")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the statistics as machine-readable JSON")

    sub.add_parser("compensation",
                   help="measure the testbed's delay-compensation constant")

    p = sub.add_parser(
        "check", parents=[execution],
        help="run the invariant monitors over traced pipeline runs "
             "(packet conservation, tick alignment, FIFO ordering, ...)")
    p.add_argument("--scenario", default="all",
                   help="scenario to check: a name, a spec file path, "
                        "or 'all' for the paper's four (default)")
    p.add_argument("--smoke", action="store_true",
                   help="the fast CI configuration: wean only, small "
                        "transfer")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trial", type=int, default=0)
    p.add_argument("--ftp-bytes", type=int, default=None,
                   help="live/modulated stage transfer size "
                        "(default 200 KB)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the reports as machine-readable JSON")
    p.add_argument("--golden", action="store_true",
                   help="also diff the golden-master corpus "
                        "(tests/golden) against freshly generated "
                        "artifacts")
    p.add_argument("--golden-rtol", type=float, default=0.0,
                   help="relative tolerance for --golden number "
                        "comparison (default 0: byte-identical)")
    p.add_argument("--regen-golden", action="store_true",
                   help="regenerate the golden-master corpus and exit "
                        "(only for intentional behaviour changes)")
    p.add_argument("--mutate-tick", action="store_true",
                   help="inject an off-by-one-tick modulator bug and "
                        "VERIFY the monitors catch it (exit 0 when "
                        "caught, 2 when missed)")

    from .check.fuzz import DEFAULT_SHRINK_BUDGET, FUZZ_FTP_BYTES
    from .scenarios.generate import GENERATOR_KINDS

    p = sub.add_parser(
        "fuzz", parents=[execution],
        help="generate seeded random-but-valid scenarios, run the "
             "invariant monitors over each, shrink + archive violators")
    p.add_argument("--count", type=int, default=25,
                   help="number of generated scenarios (default 25)")
    p.add_argument("--seed", type=int, default=0,
                   help="generator stream seed: the same (seed, count) "
                        "always yields the same corpus and output")
    p.add_argument("--kinds", nargs="+", choices=GENERATOR_KINDS,
                   default=None,
                   help="restrict generation to these scenario kinds "
                        "(default: all, weighted)")
    p.add_argument("--ftp-bytes", type=int, default=FUZZ_FTP_BYTES,
                   help=f"per-spec live/modulated transfer size "
                        f"(default {FUZZ_FTP_BYTES})")
    p.add_argument("--corpus-dir", default=None, metavar="DIR",
                   help="also write every generated spec as TOML here")
    p.add_argument("--artifact-dir", default=None, metavar="DIR",
                   help="archive violating specs here (shrunk "
                        "reproducer, original, violation report); "
                        "rerun one with `repro check --scenario "
                        "DIR/<name>.spec.toml`")
    p.add_argument("--no-shrink", action="store_true",
                   help="archive violating specs as-is instead of "
                        "shrinking them first")
    p.add_argument("--shrink-budget", type=int,
                   default=DEFAULT_SHRINK_BUDGET,
                   help="max pipeline re-checks spent shrinking one "
                        "violating spec")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the campaign result as machine-readable "
                        "JSON")
    return parser


# ----------------------------------------------------------------------
def _cmd_scenarios(args) -> int:
    for path in args.specs:
        try:
            register_spec_file(path)
        except (OSError, ValueError) as exc:
            print(f"repro: error: cannot load spec {path!r}: {exc}",
                  file=sys.stderr)
            return 2
    rows = []
    for entry in registered_scenarios():
        scenario = entry.make()
        spec = getattr(scenario, "spec", None)
        family = spec.family.kind if spec is not None \
            and spec.family is not None else None
        rows.append({
            "name": entry.name,
            "duration": scenario.duration,
            "checkpoints": len(scenario.checkpoints),
            "cross_laptops": scenario.cross_laptops,
            "has_motion": scenario.has_motion,
            "source": entry.source,
            "family": family,
            "origin": spec_origin(spec, entry.source),
        })
    if args.as_json:
        print(json.dumps(rows, indent=1))
        return 0
    header = (f"{'name':<12} {'duration':>8} {'checkpoints':>11} "
              f"{'cross':>5} {'motion':>6} {'family':>9} "
              f"{'origin':>9}  source")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['name']:<12} {row['duration']:>7.0f}s "
              f"{row['checkpoints']:>11} {row['cross_laptops']:>5} "
              f"{'yes' if row['has_motion'] else 'no':>6} "
              f"{row['family'] or '-':>9} {row['origin']:>9}  "
              f"{row['source']}")
    return 0


def _cmd_collect(args) -> int:
    scenario = _resolve_scenario_arg(args.scenario)
    records = collect_trace(scenario, args.seed, args.trial)
    count = save_trace(args.output, records,
                       description=f"{args.scenario} trial {args.trial} "
                                   f"seed {args.seed}")
    print(f"wrote {count} records to {args.output}")
    return 0


def _cmd_distill(args) -> int:
    records = load_trace(args.trace)
    distiller = Distiller(window_width=args.window, step=args.step)
    result = distiller.distill(records, name=args.trace)
    result.replay.save(args.output)
    replay = result.replay
    print(f"distilled {result.groups_used} groups "
          f"({result.groups_corrected} corrected, "
          f"{result.groups_skipped} skipped) into {len(replay)} tuples")
    print(f"wrote {args.output}")
    _print_replay_summary(replay)
    return 0


def _cmd_info(args) -> int:
    replay = ReplayTrace.load(args.replay)
    if args.as_json:
        from dataclasses import asdict

        print(json.dumps({
            "name": replay.name,
            "duration": replay.duration,
            "tuples": [asdict(t) for t in replay.tuples],
            # Extra keys are ignored by ReplayTrace.from_json, so this
            # document round-trips back into an identical replay trace.
            "summary": {
                "count": len(replay),
                "mean_latency": replay.mean_latency(),
                "mean_bandwidth_bps": replay.mean_bandwidth_bps(),
                "mean_loss": replay.mean_loss(),
            },
        }, indent=1))
        return 0
    print(f"replay trace {replay.name!r}: {len(replay)} tuples, "
          f"{replay.duration:.0f}s")
    _print_replay_summary(replay)
    # Coarse timeline: ten segments of the trace.
    segments = 10
    labels, lat_lo, lat_hi, loss_lo, loss_hi = [], [], [], [], []
    for k in range(segments):
        lo = replay.duration * k / segments
        hi = replay.duration * (k + 1) / segments
        tuples = [t for i, t in enumerate(replay)
                  if lo <= _tuple_start(replay, i) < hi]
        if not tuples:
            tuples = [replay.tuple_at(min(lo, replay.duration - 1e-9))]
        labels.append(f"{int(lo)}s")
        lat_lo.append(min(t.F for t in tuples) * 1e3)
        lat_hi.append(max(t.F for t in tuples) * 1e3)
        loss_lo.append(min(t.L for t in tuples) * 100)
        loss_hi.append(max(t.L for t in tuples) * 100)
    print()
    print(render_series("latency", labels, lat_lo, lat_hi, unit="ms"))
    print()
    print(render_series("loss", labels, loss_lo, loss_hi, unit="%"))
    return 0


def _tuple_start(replay: ReplayTrace, index: int) -> float:
    return sum(t.d for t in replay.tuples[:index])


def _print_replay_summary(replay: ReplayTrace) -> None:
    print(f"  latency   {replay.mean_latency() * 1e3:8.2f} ms (mean)")
    print(f"  bandwidth {replay.mean_bandwidth_bps() / 1e6:8.2f} Mb/s "
          f"(bottleneck)")
    print(f"  loss      {replay.mean_loss() * 100:8.2f} %")


def _record_label(record: Dict[str, Any]) -> str:
    """Short per-trial label for Chrome trace process grouping."""
    parts = [str(record.get("kind", "trial"))]
    for key in ("scenario", "benchmark", "replay"):
        value = record.get(key)
        if value:
            parts.append(str(value))
    parts.append(f"t{record.get('trial', 0)}")
    return ":".join(parts)


def _write_obs_outputs(records: List[Dict[str, Any]],
                       metrics_out: Optional[str],
                       trace_out: Optional[str],
                       timeline: Optional[SweepTelemetry] = None) -> None:
    """Write the metrics JSONL and/or the Chrome trace from records.

    With a ``timeline`` the trace file is the *merged* document: the
    sweep's cross-process stage spans (one track per worker pid) plus
    the per-trial packet-lifecycle groups above them.
    """
    if metrics_out:
        # Raw span events go to the Chrome trace, not the JSONL stream;
        # everything else in the record is kept verbatim.
        slim = [{k: v for k, v in record.items() if k != "spans"}
                for record in records]
        count = write_jsonl(metrics_out, slim)
        print(f"wrote {count} metrics records to {metrics_out}")
    if trace_out:
        groups = [(_record_label(record), record["spans"])
                  for record in records if record.get("spans")]
        if timeline is not None:
            document = merged_chrome_trace(timeline, groups)
            with open(trace_out, "w", encoding="utf-8") as f:
                json.dump(document, f)
            count = len(document["traceEvents"])
        else:
            count = write_chrome_trace(trace_out, groups)
        print(f"wrote {count} trace events to {trace_out} "
              f"(open in Perfetto or chrome://tracing)")


def _render_fallback_summary(transport: Dict[str, Any]) -> List[str]:
    """Human-readable lines describing every in-process fallback the
    sweep took (empty when it took none)."""
    fallbacks = transport.get("serial_fallbacks") or 0
    if not fallbacks and not transport.get("pool_broken"):
        return []
    lines = [f"transport fallbacks: {fallbacks} trial(s) recomputed "
             f"in-process"
             + (" [worker pool BROKE mid-sweep]"
                if transport.get("pool_broken") else "")]
    for reason in transport.get("fallback_reasons") or []:
        lines.append(f"  - {reason}")
    return lines


def _cmd_validate(args) -> int:
    import os as _os
    import time as _time

    scenario = _resolve_scenario_arg(args.scenario)
    if args.benchmark == "ftp" and args.ftp_bytes is not None:
        runner = RUNNERS[args.benchmark](nbytes=args.ftp_bytes)
    else:
        runner = RUNNERS[args.benchmark]()
    obs = None
    if args.metrics_out or args.trace_out or args.profile:
        obs = ObsConfig(metrics=True, trace=bool(args.trace_out),
                        spans=bool(args.trace_out),
                        profile=bool(args.profile))
    session = RuntimeSession(ExecutionConfig.from_args(args))
    cache = session.pipeline
    telemetry = None
    if args.trace_out or args.run_dir:
        telemetry = SweepTelemetry()
    progress = None
    if args.progress:
        progress = SweepProgress(
            stream=sys.stderr, label=f"{args.benchmark}/{scenario.name}")
    t0 = _time.perf_counter()
    cpu0 = sum(_os.times()[:4])
    with session:
        sweep = run_validation(scenario, runner, seed=args.seed,
                               trials=args.trials, seeds=args.seeds,
                               baseline=args.baseline,
                               executor=session.scheduler(), obs=obs,
                               cache=cache,
                               telemetry=telemetry, progress=progress)
    wall_s = _time.perf_counter() - t0
    cpu_s = sum(_os.times()[:4]) - cpu0
    if progress is not None:
        progress.finish()
    if sweep.fallback_reason:
        print(f"warning: worker pool fell back to in-process "
              f"execution: {sweep.fallback_reason}", file=sys.stderr)
    seeds_n = max(1, args.seeds)
    seeds_tag = f" x {seeds_n} seeds" if seeds_n > 1 else ""
    table = sweep.render(
        title=f"{args.benchmark} on {scenario.name} "
              f"({args.trials} trials{seeds_tag})")
    if args.as_json:
        doc = sweep.as_dict()
        doc["trials"] = args.trials
        doc["seed"] = args.seed
        if seeds_n > 1:
            doc["seeds"] = seeds_n
        print(json.dumps(doc, indent=2))
    else:
        print(table)
        if cache is not None:
            print(cache.render_summary())
        for line in _render_fallback_summary(sweep.transport):
            print(line)
        if telemetry is not None:
            util = telemetry.utilization().get("utilization")
            if util is not None:
                # Diagnostic, so stderr: stdout stays byte-identical
                # with and without telemetry.
                print(f"sweep timeline: {len(telemetry.spans)} spans, "
                      f"{len(telemetry.worker_pids())} worker(s), "
                      f"pool utilization {util:.0%}", file=sys.stderr)
    if args.profile:
        rows = aggregate_profiles(sweep.trial_metrics)
        print()
        print(render_profile_table(rows))
    if args.run_dir:
        ledger = RunLedger(args.run_dir)
        record = ledger.append(sweep_ledger_record(
            sweep, command="validate", scenario=scenario.name,
            seed=args.seed, trials=args.trials, wall_s=wall_s,
            cpu_s=cpu_s, table=table, telemetry=telemetry))
        print(f"appended run manifest to {ledger.path} "
              f"(schema {record['schema']})")
    if args.metrics_out and args.metrics_format == "prom":
        registry = sweep_registry(sweep, pipeline=cache,
                                  telemetry=telemetry)
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            f.write(registry.render_prometheus())
        print(f"wrote Prometheus exposition to {args.metrics_out}")
        _write_obs_outputs(sweep.trial_metrics, None, args.trace_out,
                           timeline=telemetry)
    else:
        _write_obs_outputs(sweep.trial_metrics, args.metrics_out,
                           args.trace_out, timeline=telemetry)
    return 0


def _cmd_metrics(args) -> int:
    try:
        records = read_jsonl(args.metrics_jsonl)
    except OSError as exc:
        print(f"repro: error: cannot read {args.metrics_jsonl!r}: {exc}",
              file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    fold_records(registry, records)
    sys.stdout.write(registry.render_prometheus(prefix=args.prefix))
    return 0


def _cmd_characterize(args) -> int:
    scenario = _resolve_scenario_arg(args.scenario)
    obs = ObsConfig(metrics=True) if args.metrics_out else None
    trial_metrics: List[Dict[str, Any]] = []
    with RuntimeSession(ExecutionConfig.from_args(args)) as session:
        character = characterize_scenario_parallel(
            scenario, seed=args.seed, trials=args.trials,
            executor=session.scheduler(), obs=obs,
            trial_metrics=trial_metrics)
        table = character.render()
        print(table)
        if args.run_dir:
            record = session.record(command_ledger_record(
                command="characterize", scenarios=[scenario.name],
                seed=args.seed, wall_s=session.wall_s(),
                scheduler=session.scheduler(), output=table,
                status="ok"))
            print(f"appended run manifest to {session.ledger().path} "
                  f"(schema {record['schema']})")
    _write_obs_outputs(trial_metrics, args.metrics_out, None)
    return 0


def _cmd_trace(args) -> int:
    scenario = _resolve_scenario_arg(args.scenario)
    if args.benchmark == "ftp":
        runner = RUNNERS["ftp"](nbytes=args.ftp_bytes, direction="send")
    else:
        runner = RUNNERS[args.benchmark]()
    variant = runner.variants()[0]
    obs = ObsConfig(metrics=True, trace=True, spans=True,
                    span_limit=args.span_limit)
    if args.mode == "live":
        sink = run_live_trial(scenario, variant, args.seed, args.trial,
                              obs=obs)
    else:
        records = collect_trace(scenario, args.seed, args.trial)
        dist = distill_scenario_trace(
            records, name=f"{scenario.name}-{args.trial}")
        sink = run_modulated_trial(dist.replay, variant, args.seed,
                                   args.trial, compensation_vb(), obs=obs)
    record = sink.pop("__obs__", None)
    if record is None:
        print("observability is globally disabled "
              "(repro.obs.set_enabled(False)); nothing to report")
        return 1
    metrics = ", ".join(f"{name}={value:.2f}s"
                        for name, value in sink.items())
    print(f"{args.benchmark} on {args.scenario} ({args.mode}): {metrics}")
    print()
    print(render_obs_summary(record))
    _write_obs_outputs([record], args.metrics_out, args.trace_out)
    return 0


def _cmd_export(args) -> int:
    replay = ReplayTrace.load(args.replay)
    if args.format == "netem":
        content = to_netem_script(replay, dev=args.dev, loop=args.loop)
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(content)
        print(f"wrote netem script to {args.output} "
              f"(run as: sh {args.output} <dev>)")
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(to_mahimahi_trace(replay))
        print(f"wrote mm-link trace to {args.output}")
        print("run inside:", to_mahimahi_commands(replay, args.output),
              end="")
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import analyze_trace
    from .analysis.filter import dump_records, filter_records

    records = load_trace(args.trace)
    if args.filter_expr:
        matched = filter_records(records, args.filter_expr)
        if args.as_json:
            doc = {"filter": args.filter_expr, "matched": len(matched),
                   "statistics": (analyze_trace(matched).as_dict()
                                  if matched else None)}
            print(json.dumps(doc, indent=1))
            return 0
        print(f"{len(matched)} packets match {args.filter_expr!r}")
        if args.dump:
            print(dump_records(matched, limit=args.limit))
        elif matched:
            print(analyze_trace(matched).render())
        return 0
    if args.as_json:
        print(json.dumps(analyze_trace(records).as_dict(), indent=1))
        return 0
    if args.dump:
        from .core.traceformat import PacketRecord

        packets = [r for r in records if isinstance(r, PacketRecord)]
        print(dump_records(packets, limit=args.limit))
        return 0
    print(analyze_trace(records).render())
    return 0


def _cmd_compensation(args) -> int:
    measurement = measure_modulation_network()
    print(f"bottleneck per-byte cost Vb = {measurement.vb * 1e6:.3f} us/byte")
    print(f"  (bandwidth {measurement.bandwidth_bps / 1e6:.2f} Mb/s, "
          f"latency {measurement.latency * 1e3:.3f} ms)")
    print("pass this Vb as compensation_vb to install_modulation()")
    return 0


def _cmd_check(args) -> int:
    from .check import (check_all, compare, inject_tick_undershoot,
                        regenerate, smoke_check)
    from .check.runner import (DEFAULT_FTP_BYTES, SMOKE_FTP_BYTES,
                               SMOKE_SCENARIO)

    if args.mutate_tick:
        # The mutation smoke test: the monitors must FAIL under an
        # injected off-by-one-tick rounding bug, or they are not
        # actually guarding anything.
        with inject_tick_undershoot():
            report = smoke_check(seed=args.seed)
        if report.ok:
            print("MUTATION MISSED: off-by-one-tick bug raised no "
                  "violation")
            return 2
        caught = sorted({f"{v.monitor}.{v.invariant}"
                         for v in report.violations})
        print(f"mutation caught: {len(report.violations)} violation(s) "
              f"by {', '.join(caught)}")
        return 0

    with RuntimeSession(ExecutionConfig.from_args(args)) as session:
        cache = session.pipeline
        executor = _session_executor(session)

        if args.regen_golden:
            written = regenerate(cache=cache, executor=executor)
            for path in written:
                print(f"wrote {path}")
            if args.run_dir:
                session.record(command_ledger_record(
                    command="check", scenarios=[], seed=args.seed,
                    wall_s=session.wall_s(), scheduler=executor,
                    status="ok", extra={"regen_golden": True}))
            return 0

        # The smoke configuration is `check_all` over one scenario
        # with a smaller transfer, so both tiers share one code path
        # (and one executor, when parallel execution is requested).
        if args.smoke:
            names = [SMOKE_SCENARIO]
            ftp_bytes = SMOKE_FTP_BYTES
        else:
            ftp_bytes = (args.ftp_bytes if args.ftp_bytes is not None
                         else DEFAULT_FTP_BYTES)
            if args.scenario == "all":
                names = None
            else:
                names = [_resolve_scenario_arg(args.scenario)]
        reports = check_all(scenarios=names, seed=args.seed,
                            trial=args.trial, ftp_bytes=ftp_bytes,
                            cache=cache, executor=executor)
        failed = False
        if args.as_json:
            output = json.dumps([r.as_dict() for r in reports], indent=1)
            print(output)
            failed = any(not r.ok for r in reports)
        else:
            rendered = []
            for report in reports:
                rendered.append(report.render())
                print(rendered[-1])
                failed = failed or not report.ok
            output = "\n".join(rendered)
        if args.golden:
            scenarios = None if args.scenario == "all" else [args.scenario]
            diffs = compare(scenarios=scenarios, rtol=args.golden_rtol,
                            cache=cache, executor=executor)
            if diffs:
                failed = True
                for artifact, lines in sorted(diffs.items()):
                    for line in lines:
                        print(f"golden {artifact}: {line}")
            else:
                print("golden corpus: all artifacts match")
        if cache is not None:
            # Cache accounting depends on how warm the store is (and,
            # when parallel, on which process computed what), so it
            # goes to stderr: stdout stays byte-identical across
            # backends and reruns.
            print(cache.render_summary(), file=sys.stderr)
        if args.run_dir:
            record = session.record(command_ledger_record(
                command="check",
                scenarios=[r.scenario for r in reports],
                seed=args.seed, wall_s=session.wall_s(),
                scheduler=executor,
                cache={"hits": cache.hits, "misses": cache.misses}
                if cache is not None else None,
                output=output,
                status="failed" if failed else "ok"))
            print(f"appended run manifest to {session.ledger().path} "
                  f"(schema {record['schema']})")
        return 1 if failed else 0


def _cmd_fuzz(args) -> int:
    from .check.fuzz import run_fuzz

    with RuntimeSession(ExecutionConfig.from_args(args)) as session:
        cache = session.pipeline
        executor = _session_executor(session)
        progress = None
        if args.progress:
            def progress(done, total, name):
                if name:
                    print(f"fuzz {done + 1}/{total}: {name}",
                          file=sys.stderr)

        run = run_fuzz(args.count, seed=args.seed, kinds=args.kinds,
                       ftp_bytes=args.ftp_bytes,
                       corpus_dir=args.corpus_dir,
                       artifact_dir=args.artifact_dir, cache=cache,
                       shrink=not args.no_shrink,
                       shrink_budget=args.shrink_budget,
                       progress=progress, executor=executor)
        if args.as_json:
            output = json.dumps(run.as_dict(), indent=1)
        else:
            output = run.render()
        print(output)
        if cache is not None:
            # Cache accounting differs between cold and warm runs, so
            # it goes to stderr: stdout stays byte-identical across
            # reruns.
            print(cache.render_summary(), file=sys.stderr)
        if args.run_dir:
            record = session.record(command_ledger_record(
                command="fuzz",
                scenarios=[f.original.name for f in run.findings],
                seed=args.seed, wall_s=session.wall_s(),
                scheduler=executor,
                cache={"hits": cache.hits, "misses": cache.misses}
                if cache is not None else None,
                output=output,
                status="ok" if run.ok else "failed",
                extra={"count": run.count, "checked": run.checked,
                       "corpus_digest": run.corpus_digest,
                       "findings": len(run.findings)}))
            print(f"appended run manifest to {session.ledger().path} "
                  f"(schema {record['schema']})")
        return 0 if run.ok else 1


COMMANDS = {
    "scenarios": _cmd_scenarios,
    "collect": _cmd_collect,
    "distill": _cmd_distill,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "metrics": _cmd_metrics,
    "characterize": _cmd_characterize,
    "trace": _cmd_trace,
    "export": _cmd_export,
    "analyze": _cmd_analyze,
    "compensation": _cmd_compensation,
    "check": _cmd_check,
    "fuzz": _cmd_fuzz,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # The scheduler has already cancelled outstanding chunks and
        # torn the backend down (JobFuture.result intercepts the
        # interrupt); 130 is the conventional SIGINT exit status.
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
