"""The Andrew benchmark's input tree.

§5.4: "a tree of about 70 source files occupying about 200KB".  The
original tree (a TeX-era C program) is long gone, so we synthesize one
with the same shape: a handful of subdirectories, C sources and
headers, a Makefile — deterministic per seed so every trial copies the
identical tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..sim.rng import derive_seed

DEFAULT_FILE_COUNT = 70
DEFAULT_TOTAL_BYTES = 200 * 1024
SUBDIRS = ("cmds", "lib", "hdr", "misc", "doc")


@dataclass(frozen=True)
class SourceFile:
    """One file in the benchmark tree."""

    path: str        # relative to the tree root, e.g. "lib/util3.c"
    size: int
    compiles: bool   # .c files produce objects in the Make phase


def andrew_tree(seed: int = 0, file_count: int = DEFAULT_FILE_COUNT,
                total_bytes: int = DEFAULT_TOTAL_BYTES) -> List[SourceFile]:
    """Generate the tree: ~70 files, ~200 KB, across five subdirs."""
    rng = random.Random(derive_seed(seed, "andrew-tree"))
    raw: List[tuple] = []
    for i in range(file_count - 1):
        subdir = SUBDIRS[i % len(SUBDIRS)]
        if subdir == "hdr":
            name, compiles = f"defs{i}.h", False
        elif subdir == "doc":
            name, compiles = f"notes{i}.txt", False
        else:
            name, compiles = f"mod{i}.c", True
        weight = rng.lognormvariate(0.0, 0.6)
        raw.append((f"{subdir}/{name}", weight, compiles))
    raw.append(("Makefile", 0.35, False))
    total_weight = sum(w for _, w, _ in raw)
    files = [
        SourceFile(path=path, size=max(256, int(total_bytes * w / total_weight)),
                   compiles=compiles)
        for path, w, compiles in raw
    ]
    return files


def tree_directories(files: List[SourceFile]) -> List[str]:
    """The subdirectories the tree needs, in creation order."""
    seen = []
    for f in files:
        parts = f.path.rsplit("/", 1)
        if len(parts) == 2 and parts[0] not in seen:
            seen.append(parts[0])
    return seen


def tree_total_bytes(files: List[SourceFile]) -> int:
    """Total bytes occupied by the tree (paper: about 200 KB)."""
    return sum(f.size for f in files)
