"""Deterministic synthetic workloads (web reference traces, Andrew tree)."""

from .andrewtree import SourceFile, andrew_tree, tree_directories, tree_total_bytes
from .webtraces import (
    WebReference,
    all_user_traces,
    object_catalog,
    user_trace,
)

__all__ = [
    "SourceFile",
    "WebReference",
    "all_user_traces",
    "andrew_tree",
    "object_catalog",
    "tree_directories",
    "tree_total_bytes",
    "user_trace",
]
