"""Synthetic Web reference traces.

The paper replays "Web reference traces of five users performing search
tasks" against a private server (§4.2).  Those traces (from Steere's
dynamic-sets work) are not available, so we generate statistically
similar ones: each user alternates between queries, result pages, and
followed documents with inline images — the mid-1990s object-size mix
(small HTML, a few-KB images, occasional large documents).

Generation is fully deterministic per (seed, user) so every trial
replays the identical reference stream, exactly like a trace file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..sim.rng import derive_seed

DEFAULT_USERS = 5
DEFAULT_REQUESTS_PER_USER = 55


@dataclass(frozen=True)
class WebReference:
    """One replayed request."""

    url: str
    size: int       # response body bytes


def _bounded_lognormal(rng: random.Random, mu: float, sigma: float,
                       lo: int, hi: int) -> int:
    return int(min(hi, max(lo, rng.lognormvariate(mu, sigma))))


def user_trace(seed: int, user: int,
               requests: int = DEFAULT_REQUESTS_PER_USER) -> List[WebReference]:
    """The reference stream for one user's search task."""
    rng = random.Random(derive_seed(seed, f"webtrace:{user}"))
    refs: List[WebReference] = []
    doc_index = 0
    while len(refs) < requests:
        # A search round: query form, results page, then followed docs.
        refs.append(WebReference(url=f"/u{user}/query{doc_index}.html",
                                 size=_bounded_lognormal(rng, 7.3, 0.4,
                                                         800, 6_000)))
        refs.append(WebReference(url=f"/u{user}/results{doc_index}.html",
                                 size=_bounded_lognormal(rng, 8.3, 0.5,
                                                         2_000, 15_000)))
        for _ in range(rng.randint(1, 4)):
            if len(refs) >= requests:
                break
            doc = WebReference(url=f"/u{user}/doc{doc_index}-{len(refs)}.html",
                               size=_bounded_lognormal(rng, 8.9, 0.9,
                                                       1_500, 60_000))
            refs.append(doc)
            # Inline images for some documents.
            for img in range(rng.randint(0, 2)):
                if len(refs) >= requests:
                    break
                refs.append(WebReference(
                    url=f"/u{user}/img{doc_index}-{len(refs)}.gif",
                    size=_bounded_lognormal(rng, 8.0, 0.7, 500, 30_000)))
        doc_index += 1
    return refs[:requests]


def all_user_traces(seed: int, users: int = DEFAULT_USERS,
                    requests: int = DEFAULT_REQUESTS_PER_USER
                    ) -> List[List[WebReference]]:
    """Reference streams for every user of the web benchmark (§4.2)."""
    return [user_trace(seed, u, requests) for u in range(users)]


def object_catalog(traces: List[List[WebReference]]) -> Dict[str, int]:
    """url -> size map for priming the private web server."""
    catalog: Dict[str, int] = {}
    for trace in traces:
        for ref in trace:
            catalog[ref.url] = ref.size
    return catalog
