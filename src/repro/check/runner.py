"""Driving the invariant monitors over full traced pipeline runs.

``check_scenario`` replays the paper's whole protocol for one scenario
— a traced collection traversal, distillation, a traced live benchmark
trial, and a traced modulated trial — and runs every invariant monitor
over each stage's finished world.  ``check_all`` covers all four
scenarios; ``smoke_check`` is the single fast configuration CI runs on
every push.

``inject_tick_undershoot`` is the mutation hook for the CI smoke test:
it makes the kernel's nearest-tick rounding land one full tick early,
an off-by-one-tick modulator bug that the delay-bound monitor must
catch (and a clean run must not).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional

from ..hosts.kernel import Kernel
from ..obs import ObsConfig
from ..pipeline import (CollectStage, CompensationStage, DistillStage,
                        LiveTrialStage, ModulatedTrialStage, Pipeline,
                        as_pipeline, cache_token, digest)
from ..runtime.job import Job, register_job_kind, runner_ref
from ..runtime.session import shared_pipeline
from ..scenarios import ALL_SCENARIOS, resolve_scenario
from ..scenarios.base import Scenario
from ..validation.harness import FtpRunner, compensation_vb
from .invariants import (ALL_MONITORS, CheckContext, InvariantViolation,
                         run_monitors)

# The smoke configuration: the smallest scenario, a transfer short
# enough for seconds-scale wall clock, still exercising every stage.
SMOKE_SCENARIO = "wean"
SMOKE_FTP_BYTES = 100_000
DEFAULT_FTP_BYTES = 200_000

# Bump when check_scenario's own logic changes behaviour (stage
# versions and monitor names are part of the report cache key already).
CHECK_VERSION = 1


@dataclass
class StageResult:
    """One pipeline stage's monitors, plus enough context to read it."""

    stage: str                    # "collect" | "distill" | "live" | "modulated"
    violations: List[InvariantViolation]
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "info": self.info,
        }


@dataclass
class CheckReport:
    """Every stage of one scenario's pipeline check."""

    scenario: str
    seed: int
    trial: int
    stages: List[StageResult] = field(default_factory=list)

    @property
    def violations(self) -> List[InvariantViolation]:
        return [v for stage in self.stages for v in stage.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "trial": self.trial,
            "ok": self.ok,
            "stages": [stage.as_dict() for stage in self.stages],
        }

    def render(self) -> str:
        lines = [f"check {self.scenario} (seed={self.seed}, "
                 f"trial={self.trial})"]
        for stage in self.stages:
            status = "ok" if stage.ok else \
                f"{len(stage.violations)} violation(s)"
            info = ", ".join(f"{k}={v}" for k, v in stage.info.items())
            lines.append(f"  {stage.stage:<10} {status}"
                         + (f"  [{info}]" if info else ""))
            for violation in stage.violations:
                lines.append(f"    !! {violation}")
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if self.violations:
            raise self.violations[0]


# ======================================================================
# Pipeline checking
# ======================================================================
def _monitor_instances(monitors: Optional[Iterable]) -> List:
    if monitors is None:
        return [cls() for cls in ALL_MONITORS]
    return list(monitors)


def _stage_info(out: Dict[str, Any]) -> Dict[str, Any]:
    info: Dict[str, Any] = {}
    wobs = out.get("obs")
    if wobs is not None and wobs.tracer is not None:
        info["spans"] = len(wobs.tracer.spans)
        info["drops"] = sum(wobs.tracer.drop_counts.values())
    return info


def _report_key(scenario: Scenario, seed: int, trial: int,
                ftp_bytes: int, span_limit: int) -> Optional[str]:
    """Cache key for a default-monitors check report (None: uncacheable)."""
    try:
        return digest({
            "check": "report",
            "version": CHECK_VERSION,
            "scenario": cache_token(scenario),
            "seed": seed,
            "trial": trial,
            "ftp_bytes": ftp_bytes,
            "span_limit": span_limit,
            "monitors": [cls.__qualname__ for cls in ALL_MONITORS],
            "stages": [[cls.stage_name, cls.version]
                       for cls in (CollectStage, DistillStage,
                                   LiveTrialStage, ModulatedTrialStage)],
        })
    except TypeError:
        return None


def check_scenario(scenario, seed: int = 0, trial: int = 0,
                   ftp_bytes: int = DEFAULT_FTP_BYTES,
                   span_limit: int = 250_000,
                   monitors: Optional[Iterable] = None,
                   cache=None) -> CheckReport:
    """Run every invariant monitor over one scenario's full pipeline.

    ``scenario`` may be a :class:`Scenario`, a registered scenario name
    or a path to a TOML/JSON spec file.  Each stage (collect, distill,
    live trial, modulated trial) is checked independently, so a
    violation upstream still lets the later stages report theirs.

    The stages run through the unified pipeline API; ``cache`` (a
    directory path, store or :class:`~repro.pipeline.Pipeline`) enables
    report-level caching — a warm rerun with unchanged inputs returns
    the stored report without simulating anything.  (The monitors need
    live worlds, so individual stage runs can't be served from cache;
    the finished report can.)
    """
    scenario = resolve_scenario(scenario)
    cache_pipeline = as_pipeline(cache)
    report_key = None
    if cache_pipeline is not None and monitors is None:
        report_key = _report_key(scenario, seed, trial, ftp_bytes,
                                 span_limit)
        if report_key is not None:
            found, cached = cache_pipeline.lookup(report_key,
                                                  stage="check-report")
            if found:
                return cached
    # Stage artifacts flow through a pipeline either way, so distill
    # reuses the collect artifact without re-simulating the traversal.
    work = cache_pipeline if cache_pipeline is not None else Pipeline()
    checks = _monitor_instances(monitors)
    obs = ObsConfig(metrics=True, trace=True, spans=True,
                    span_limit=span_limit)
    report = CheckReport(scenario=scenario.name, seed=seed, trial=trial)

    # 1. Traced collection traversal.
    collect_stage = CollectStage(scenario, seed, trial, obs=obs)
    out: Dict[str, Any] = {}
    records = work.run(collect_stage, world_out=out)["records"]
    ctx = CheckContext(kind="collect", label=f"{scenario.name}:collect",
                       world=out.get("world"), obs=out.get("obs"),
                       records=records)
    info = _stage_info(out)
    info["records"] = len(records)
    report.stages.append(StageResult("collect", run_monitors(ctx, checks),
                                     info))

    # 2. Distillation (pure computation: well-formedness only).
    distill_stage = DistillStage(collect_stage,
                                 label=f"{scenario.name}-{trial}")
    distillation = work.run(distill_stage)
    ctx = CheckContext(kind="distill", label=f"{scenario.name}:distill",
                       replay=distillation.replay,
                       distillation=distillation)
    report.stages.append(StageResult(
        "distill", run_monitors(ctx, checks),
        {"tuples": len(distillation.replay),
         "estimates": len(distillation.estimates)}))

    # 3. Traced live benchmark trial.
    runner = FtpRunner(nbytes=ftp_bytes, direction="send")
    out = {}
    work.run(LiveTrialStage(scenario, runner, seed, trial, obs=obs),
             world_out=out)
    ctx = CheckContext(kind="live", label=f"{scenario.name}:live",
                       world=out.get("world"), obs=out.get("obs"))
    report.stages.append(StageResult("live", run_monitors(ctx, checks),
                                     _stage_info(out)))

    # 4. Traced modulated trial over the freshly distilled replay.
    comp = (compensation_vb() if cache_pipeline is None
            else work.run(CompensationStage()))
    out = {}
    work.run(ModulatedTrialStage(distill_stage, runner, seed, trial,
                                 compensation=comp, obs=obs),
             world_out=out)
    ctx = CheckContext(kind="modulated",
                       label=f"{scenario.name}:modulated",
                       world=out.get("world"), obs=out.get("obs"),
                       layer=out.get("layer"),
                       replay=distillation.replay,
                       distillation=distillation)
    info = _stage_info(out)
    layer = out.get("layer")
    if layer is not None:
        info["modulated"] = layer.out_packets + layer.in_packets
    report.stages.append(StageResult("modulated",
                                     run_monitors(ctx, checks), info))
    if report_key is not None:
        cache_pipeline.store_result(report_key, report,
                                    stage="check-report")
    return report


# ======================================================================
# The runtime job kind ("check")
# ======================================================================
# A check runs a full traversal, a distillation and two benchmark
# trials — comfortably above the scheduler's chunking threshold, so
# every check travels solo and scenarios balance across workers.
CHECK_COST_HINT = 600.0


@dataclass(frozen=True)
class CheckJob:
    """Picklable description of one ``check_scenario`` run.

    ``scenario`` is whatever ``check_scenario`` accepts (a registered
    name, a spec path, or a :class:`Scenario` — all picklable).  The
    live ``cache`` pipeline handle is for in-process execution only;
    the wire variant nulls it and workers reopen ``cache_root`` through
    the per-process memo (:func:`~repro.runtime.session.shared_pipeline`),
    so report- and stage-level caching work identically on every
    backend.
    """

    scenario: Any
    seed: int = 0
    trial: int = 0
    ftp_bytes: int = DEFAULT_FTP_BYTES
    span_limit: int = 250_000
    cache_root: Optional[str] = None
    cache: Optional[Pipeline] = None


def run_check_job(job: CheckJob) -> CheckReport:
    """The runtime runner behind one check job (pure in the payload:
    byte-identical reports on every backend)."""
    cache = job.cache
    if cache is None:
        cache = shared_pipeline(job.cache_root)
    return check_scenario(job.scenario, seed=job.seed, trial=job.trial,
                          ftp_bytes=job.ftp_bytes,
                          span_limit=job.span_limit, cache=cache)


_RUN_CHECK = runner_ref(run_check_job)
register_job_kind("check", _RUN_CHECK, cost_hint=CHECK_COST_HINT)


def check_job(scenario, seed: int = 0, trial: int = 0,
              ftp_bytes: int = DEFAULT_FTP_BYTES,
              span_limit: int = 250_000, cache=None) -> Job:
    """Build the runtime job for one scenario check."""
    pipeline = as_pipeline(cache)
    root = None
    if pipeline is not None and pipeline.store.root is not None:
        root = str(pipeline.store.root)
    payload = CheckJob(scenario=scenario, seed=seed, trial=trial,
                       ftp_bytes=ftp_bytes, span_limit=span_limit,
                       cache_root=root, cache=pipeline)
    label = getattr(scenario, "name", None) or str(scenario)
    return Job(kind="check", runner=_RUN_CHECK, payload=payload,
               label=f"check:{label}", cost_hint=CHECK_COST_HINT,
               wire_payload=replace(payload, cache=None))


def check_all(scenarios: Optional[Iterable[str]] = None, seed: int = 0,
              trial: int = 0, ftp_bytes: int = DEFAULT_FTP_BYTES,
              monitors: Optional[Iterable] = None,
              cache=None, workers: Optional[int] = None,
              transport: str = "auto",
              executor=None) -> List[CheckReport]:
    """`check_scenario` over every scenario (default: all four).

    With ``workers`` > 1, ``transport="socket"`` or a caller-supplied
    runtime ``executor``
    (:class:`~repro.runtime.scheduler.Scheduler`), scenarios fan out
    through the unified runtime — reports come back in scenario order
    and are byte-identical to the serial loop on every backend.
    Custom ``monitors`` (live objects, not necessarily picklable)
    force the serial path.
    """
    if scenarios is None:
        names = [cls.name for cls in ALL_SCENARIOS]
    else:
        names = list(scenarios)
    cache_pipeline = as_pipeline(cache)
    parallel = (executor is not None or (workers or 1) > 1
                or transport == "socket")
    if monitors is not None or not parallel:
        return [check_scenario(name, seed=seed, trial=trial,
                               ftp_bytes=ftp_bytes, monitors=monitors,
                               cache=cache_pipeline)
                for name in names]
    jobs = [check_job(name, seed=seed, trial=trial, ftp_bytes=ftp_bytes,
                      cache=cache_pipeline)
            for name in names]
    owned = False
    if executor is None:
        from ..runtime.scheduler import Scheduler

        executor = Scheduler(workers=workers, transport=transport)
        owned = True
    try:
        return executor.map_jobs(jobs)
    finally:
        if owned:
            executor.shutdown()


def smoke_check(seed: int = 0, cache=None) -> CheckReport:
    """The fast configuration CI runs on every push."""
    return check_scenario(SMOKE_SCENARIO, seed=seed,
                          ftp_bytes=SMOKE_FTP_BYTES, cache=cache)


# ======================================================================
# Mutation hook (CI's "does the net actually catch fish" test)
# ======================================================================
@contextmanager
def inject_tick_undershoot(ticks: int = 1):
    """Make nearest-tick rounding land ``ticks`` full ticks early.

    An off-by-one-tick modulator bug: ``schedule_rounded`` still lands
    releases on the tick grid (so tick *alignment* stays green), but
    packets are released up to one-and-a-half ticks before their
    intended delay — which the delay-bound monitor must flag.  The
    audit's analytic ``applied`` uses the same kernel method, so the
    books and the actual schedule shift together, exactly like a real
    rounding regression would.
    """
    original = Kernel.nearest_tick_at

    def undershooting(self, when: float) -> float:
        return original(self, when) - ticks * self.tick_resolution

    Kernel.nearest_tick_at = undershooting
    try:
        yield
    finally:
        Kernel.nearest_tick_at = original
