"""Runtime invariant monitors over one instrumented trial.

Every monitor reads state the PR-2 observability layer already exposes
— tracer span/drop counts, :meth:`Host.stats` counters, the modulation
fidelity audit — and asserts the conservation laws and sanity
conditions the emulator is supposed to keep by construction.  No new
hot-path hooks: a monitor runs *after* a trial, over a finished world.

The invariants deliberately mirror the paper's §5.4 error analysis:

* **packet conservation** — at every layer, packets sent must equal
  packets delivered plus drops with an accounted cause;
* **clock sanity** — simulated time is monotone and the engine's
  event accounting balances;
* **tick alignment** — every modulated release lands on the host
  kernel's 10 ms callout grid (or was legitimately sent immediately);
* **bounded under-delay** — the tick-rounding policy may under-account
  a packet's delay by strictly less than one tick, never more;
* **FIFO ordering** — the replay feed consumes tuples in trace order
  and every transmit queue drains in arrival order;
* **TCP sequence-space sanity** — ``snd_una ≤ snd_nxt ≤ snd_max`` on
  every connection;
* **replay well-formedness** — every distilled quality tuple
  ``⟨d, F, Vb, Vr, L⟩`` is finite and in range, and collected trace
  records are well-formed with monotone timestamps.

A failed check is a structured :class:`InvariantViolation` carrying the
monitor, the invariant name, and — where one exists — the offending
packet's trace id.  Monitors *return* violations rather than raising,
so one broken invariant cannot mask another.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.distill import DistillationResult
from ..core.replay import ReplayTrace
from ..core.traceformat import (DeviceStatusRecord, LostRecordsRecord,
                                PacketRecord)

# Absolute slack for float comparisons on simulated timestamps.  Sim
# times stay under ~1e4 s, where double rounding error is < 1e-9.
TIME_EPS = 1e-9


class InvariantViolation(Exception):
    """One broken invariant, with enough structure to act on.

    ``monitor``
        The monitor that found it (e.g. ``"conservation"``).
    ``invariant``
        The specific law broken (e.g. ``"queue_balance"``).
    ``message``
        Human-readable statement with the numbers that disagree.
    ``trace``
        The offending packet's lifecycle trace id, when the violation
        is attributable to a single packet; ``None`` for aggregate
        violations.
    ``details``
        The raw values behind the message, JSON-friendly.
    """

    def __init__(self, monitor: str, invariant: str, message: str,
                 trace: Optional[int] = None, **details: Any):
        super().__init__(f"[{monitor}.{invariant}] {message}")
        self.monitor = monitor
        self.invariant = invariant
        self.message = message
        self.trace = trace
        self.details = details

    def __reduce__(self):
        # Exception's default reduce replays ``args`` (the formatted
        # message) into ``__init__``, which needs the structured fields
        # — rebuild from those instead so violations pickle cleanly
        # (process pools, the check runner's report cache).
        return (_rebuild_violation, (self.monitor, self.invariant,
                                     self.message, self.trace,
                                     self.details))

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "monitor": self.monitor,
            "invariant": self.invariant,
            "message": self.message,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        if self.details:
            out["details"] = self.details
        return out


def _rebuild_violation(monitor: str, invariant: str, message: str,
                       trace: Optional[int],
                       details: Dict[str, Any]) -> "InvariantViolation":
    """Unpickle helper for :class:`InvariantViolation`."""
    return InvariantViolation(monitor, invariant, message, trace=trace,
                              **details)


@dataclass
class CheckContext:
    """Everything a monitor may inspect after one trial.

    Any field may be ``None``; each monitor checks what is present and
    silently skips what is not, so the same monitor list runs over a
    collection traversal (no modulation layer), a live trial (no
    replay) and a modulated trial (no wireless medium).
    """

    kind: str                      # "collect" | "live" | "modulated" | ...
    label: str = ""
    world: Any = None              # LiveWorld / ModulationWorld
    obs: Any = None                # WorldObservability
    layer: Any = None              # ModulationLayer
    replay: Optional[ReplayTrace] = None
    distillation: Optional[DistillationResult] = None
    records: Optional[Sequence] = None   # collected trace records

    @property
    def tracer(self):
        return self.obs.tracer if self.obs is not None else None

    def hosts(self) -> List:
        if self.world is None:
            return []
        from ..obs.wiring import world_hosts
        return world_hosts(self.world)


class InvariantMonitor:
    """Base class: one family of invariants over a CheckContext."""

    name = "monitor"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        raise NotImplementedError

    def violation(self, invariant: str, message: str,
                  trace: Optional[int] = None,
                  **details: Any) -> InvariantViolation:
        return InvariantViolation(self.name, invariant, message,
                                  trace=trace, **details)


# ======================================================================
# Packet conservation
# ======================================================================
class PacketConservationMonitor(InvariantMonitor):
    """sent == delivered + accounted drops, at every layer.

    Cross-checks three independent ledgers of the same traffic: the
    per-object counters in :meth:`Host.stats`, the tracer's aggregated
    span counts (exact even past the span buffer limit), and the
    tracer's drop-cause counts.
    """

    name = "conservation"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        hosts = ctx.hosts()
        for host in hosts:
            for device in host.devices:
                q = device.queue
                depth = len(q)
                if q.enqueued != q.dequeued + depth:
                    out.append(self.violation(
                        "queue_balance",
                        f"{host.name}.{device.name}: enqueued "
                        f"{q.enqueued} != dequeued {q.dequeued} "
                        f"+ depth {depth}",
                        host=host.name, device=device.name,
                        enqueued=q.enqueued, dequeued=q.dequeued,
                        depth=depth))
                if device.tx_packets != q.dequeued:
                    out.append(self.violation(
                        "tx_equals_dequeued",
                        f"{host.name}.{device.name}: tx_packets "
                        f"{device.tx_packets} != queue dequeued "
                        f"{q.dequeued}",
                        host=host.name, device=device.name,
                        tx_packets=device.tx_packets,
                        dequeued=q.dequeued))
        tracer = ctx.tracer
        if tracer is not None and hosts:
            out.extend(self._tracer_checks(ctx, tracer, hosts))
        if ctx.layer is not None:
            out.extend(self._modulation_checks(ctx))
        return out

    # ------------------------------------------------------------------
    def _tracer_checks(self, ctx, tracer, hosts) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        sc = tracer.span_counts
        dc = tracer.drop_counts

        # Device layer: every enqueued frame was transmitted or is
        # still sitting in a queue at end of run.  (Only host devices
        # carry tracer scopes; bridge ports are outside this ledger.)
        enq = sc.get(("dev", "enqueue"), 0)
        tx = sc.get(("dev", "tx"), 0)
        depth = sum(len(d.queue) for h in hosts for d in h.devices)
        if enq != tx + depth:
            out.append(self.violation(
                "device_balance",
                f"dev.enqueue {enq} != dev.tx {tx} + residual queue "
                f"depth {depth}", enqueue=enq, tx=tx, depth=depth))

        # Queue-full drops: tracer cause count vs. queue counters.
        queue_full = sum(d.queue.dropped for h in hosts for d in h.devices)
        if dc.get("queue_full", 0) != queue_full:
            out.append(self.violation(
                "queue_full_drops",
                f"traced queue_full drops {dc.get('queue_full', 0)} != "
                f"sum of queue dropped counters {queue_full}",
                traced=dc.get("queue_full", 0), counted=queue_full))

        # Device-down drops: the tx-side ones are double-counted in
        # tx_drops; rx-side ones appear only in the tracer, so the
        # tracer count must dominate the counter-derived lower bound.
        down_lower = sum(d.tx_drops - d.queue.dropped
                         for h in hosts for d in h.devices)
        if dc.get("device_down", 0) < down_lower:
            out.append(self.violation(
                "device_down_drops",
                f"traced device_down drops {dc.get('device_down', 0)} "
                f"< tx-side down drops {down_lower}",
                traced=dc.get("device_down", 0), lower_bound=down_lower))

        # Wireless medium: every frame the channel carried was either
        # lost to fading or delivered to at least one radio (broadcast
        # fan-out can deliver clones to several).
        medium = getattr(ctx.world, "medium", None)
        if medium is not None:
            if dc.get("channel_loss", 0) != medium.frames_lost:
                out.append(self.violation(
                    "channel_loss_drops",
                    f"traced channel_loss drops "
                    f"{dc.get('channel_loss', 0)} != medium frames_lost "
                    f"{medium.frames_lost}",
                    traced=dc.get("channel_loss", 0),
                    counted=medium.frames_lost))
            # Count deliveries from the attached radios' own rx
            # counters, not tracer spans: the WavePoint bridge's radio
            # is not a Host and carries no tracer scope, so a span
            # count would miss every uplink frame until it re-emerges
            # at the server's (traced, wired) device — and a frame
            # still inside the bridge pipeline when the run stops
            # would read as lost.
            delivered = sum(d.rx_packets for d in medium.devices) \
                + dc.get("device_down", 0)
            surviving = medium.frames_carried - medium.frames_lost
            # The medium serializes grants behind its busy flag, so at
            # most one granted frame can still be in flight (counted
            # as carried, not yet delivered) when the run stops.
            if getattr(medium, "_busy", False):
                surviving -= 1
            if delivered < surviving:
                out.append(self.violation(
                    "medium_delivery",
                    f"radios received {delivered} frames (incl. down "
                    f"drops) < frames surviving the channel {surviving}",
                    received=delivered, surviving=surviving,
                    carried=medium.frames_carried,
                    lost=medium.frames_lost))

        # Transport demux drops.
        no_conn = sum(h.tcp.dropped_no_conn for h in hosts)
        if dc.get("no_conn", 0) != no_conn:
            out.append(self.violation(
                "tcp_demux_drops",
                f"traced no_conn drops {dc.get('no_conn', 0)} != "
                f"tcp counters {no_conn}",
                traced=dc.get("no_conn", 0), counted=no_conn))
        no_port = sum(h.udp.dropped_no_port for h in hosts)
        if dc.get("no_port", 0) != no_port:
            out.append(self.violation(
                "udp_demux_drops",
                f"traced no_port drops {dc.get('no_port', 0)} != "
                f"udp counters {no_port}",
                traced=dc.get("no_port", 0), counted=no_port))

        # IP drops, cause by cause.
        ip_causes = {
            "no_route": sum(h.ip.dropped_no_route for h in hosts),
            "ttl": sum(h.ip.dropped_ttl for h in hosts),
            "not_mine": sum(h.ip.dropped_not_mine for h in hosts),
            "reassembly_timeout": sum(h.ip.reassembler.timed_out
                                      for h in hosts),
        }
        for cause, counted in ip_causes.items():
            if dc.get(cause, 0) != counted:
                out.append(self.violation(
                    "ip_drops",
                    f"traced {cause} drops {dc.get(cause, 0)} != "
                    f"ip counters {counted}",
                    cause=cause, traced=dc.get(cause, 0), counted=counted))
        return out

    # ------------------------------------------------------------------
    def _modulation_checks(self, ctx) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        layer = ctx.layer
        seen = layer.out_packets + layer.in_packets
        dropped = layer.out_dropped + layer.in_dropped
        tracer = ctx.tracer
        if tracer is not None and getattr(layer, "tracer", None) is not None:
            sc = tracer.span_counts
            dc = tracer.drop_counts
            accounted = (sc.get(("mod", "delay"), 0)
                         + sc.get(("mod", "passthrough"), 0)
                         + dc.get("modulation_loss", 0))
            if accounted != seen:
                out.append(self.violation(
                    "modulation_balance",
                    f"mod spans delay+passthrough+loss {accounted} != "
                    f"packets through the layer {seen}",
                    accounted=accounted, seen=seen))
            if dc.get("modulation_loss", 0) != dropped:
                out.append(self.violation(
                    "modulation_drops",
                    f"traced modulation_loss {dc.get('modulation_loss', 0)}"
                    f" != layer drop counters {dropped}",
                    traced=dc.get("modulation_loss", 0), counted=dropped))
        audit = getattr(layer, "audit", None)
        if audit is not None:
            totals = audit.totals()
            if totals["packets"] + totals["passthrough"] != seen:
                out.append(self.violation(
                    "audit_balance",
                    f"audited packets {totals['packets']} + passthrough "
                    f"{totals['passthrough']} != packets through the "
                    f"layer {seen}",
                    audited=totals["packets"],
                    passthrough=totals["passthrough"], seen=seen))
            if totals["dropped"] != dropped:
                out.append(self.violation(
                    "audit_drops",
                    f"audited drops {totals['dropped']} != layer drop "
                    f"counters {dropped}",
                    audited=totals["dropped"], counted=dropped))
        return out


# ======================================================================
# Clock sanity
# ======================================================================
class ClockSanityMonitor(InvariantMonitor):
    """Simulated time is monotone; engine event accounting balances."""

    name = "clock"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        if ctx.world is None:
            return out
        stats = ctx.world.sim.stats()
        if stats.events_fired > stats.events_scheduled:
            out.append(self.violation(
                "fired_bound",
                f"events fired {stats.events_fired} > scheduled "
                f"{stats.events_scheduled}",
                fired=stats.events_fired, scheduled=stats.events_scheduled))
        balance = (stats.events_scheduled - stats.events_fired
                   - stats.events_cancelled)
        if stats.pending != balance:
            out.append(self.violation(
                "event_balance",
                f"pending {stats.pending} != scheduled "
                f"{stats.events_scheduled} - fired {stats.events_fired} "
                f"- cancelled {stats.events_cancelled}",
                pending=stats.pending, balance=balance))
        tracer = ctx.tracer
        if tracer is not None:
            now = ctx.world.sim.now
            last = -math.inf
            for span in tracer.spans:
                t = span["t"]
                if t < last - TIME_EPS:
                    out.append(self.violation(
                        "span_monotonicity",
                        f"span at t={t:.9f} precedes previous span at "
                        f"t={last:.9f}", trace=span["trace"],
                        t=t, previous=last))
                    break
                last = t
            if last > now + TIME_EPS:
                out.append(self.violation(
                    "span_in_past",
                    f"last span at t={last:.9f} is beyond sim.now="
                    f"{now:.9f}", t=last, now=now))
        return out


# ======================================================================
# Tick alignment
# ======================================================================
class TickAlignmentMonitor(InvariantMonitor):
    """Modulated releases land on the kernel's 10 ms callout grid.

    The modulator's policy (§3.3): a computed delay under half a tick
    is applied as zero ("sent immediately"); anything else must resolve
    to a release time on the tick grid.  The kernel's immediate/rounded
    callout counters must agree with the audit's view packet-for-packet
    (the modulation layer is the only ``schedule_rounded`` user in a
    modulated trial).
    """

    name = "tick"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        layer = ctx.layer
        if layer is None:
            return out
        kernel = layer.host.kernel
        tick = kernel.tick_resolution
        tracer = ctx.tracer
        if tracer is not None:
            for span in tracer.spans:
                if span["layer"] != "mod" or span["event"] != "delay":
                    continue
                applied = span["applied"]
                if applied == 0.0:
                    continue
                release = span["t"] + applied
                off_grid = abs(release - round(release / tick) * tick)
                if off_grid > TIME_EPS:
                    out.append(self.violation(
                        "off_grid_release",
                        f"release at t={release:.9f} is {off_grid:.2e}s "
                        f"off the {tick * 1e3:.0f} ms tick grid",
                        trace=span["trace"], release=release,
                        off_grid=off_grid))
                # The immediate-vs-rounded decision is made on the
                # *intended* delay; nearest-tick rounding may then
                # legally land the release up to half a tick early, so
                # a sub-half-tick *applied* delay alone cannot convict.
                intended = span["intended"]
                if intended < tick / 2.0 - TIME_EPS:
                    out.append(self.violation(
                        "sub_half_tick_rounded",
                        f"intended delay {intended:.9f}s was rounded "
                        f"instead of sent immediately (< tick/2)",
                        trace=span["trace"], intended=intended,
                        applied=applied))
            delays = tracer.span_counts.get(("mod", "delay"), 0)
            scheduled = (kernel.immediate_callouts
                         + kernel.rounded_callouts)
            if scheduled != delays:
                out.append(self.violation(
                    "callout_accounting",
                    f"kernel immediate+rounded callouts {scheduled} != "
                    f"traced mod.delay events {delays}",
                    scheduled=scheduled, delays=delays))
        audit = getattr(layer, "audit", None)
        if audit is not None:
            totals = audit.totals()
            if totals["sent_immediately"] != layer.sent_immediately:
                out.append(self.violation(
                    "immediate_accounting",
                    f"audit sent_immediately {totals['sent_immediately']}"
                    f" != layer counter {layer.sent_immediately}",
                    audited=totals["sent_immediately"],
                    counted=layer.sent_immediately))
        return out


# ======================================================================
# Bounded under-delay
# ======================================================================
class DelayBoundMonitor(InvariantMonitor):
    """Tick rounding never under-accounts delay by a full tick.

    ``nearest_tick_at`` moves a release by at most half a tick, and the
    send-immediately path only fires for delays under half a tick, so
    ``intended - applied < tick`` for every delivered packet — the
    quantitative version of the paper's §5.4 under-delay artifact.
    """

    name = "delay_bound"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        layer = ctx.layer
        if layer is None:
            return out
        tick = layer.host.kernel.tick_resolution
        tracer = ctx.tracer
        if tracer is not None:
            for span in tracer.spans:
                if span["layer"] != "mod" or span["event"] != "delay":
                    continue
                intended = span["intended"]
                applied = span["applied"]
                if applied < -TIME_EPS or intended < -TIME_EPS:
                    out.append(self.violation(
                        "negative_delay",
                        f"negative delay: intended {intended:.9f}s "
                        f"applied {applied:.9f}s", trace=span["trace"],
                        intended=intended, applied=applied))
                    continue
                under = intended - applied
                if under > tick + TIME_EPS:
                    out.append(self.violation(
                        "under_delay",
                        f"packet under-delayed by {under * 1e3:.3f} ms "
                        f"(> one {tick * 1e3:.0f} ms tick): intended "
                        f"{intended:.6f}s applied {applied:.6f}s",
                        trace=span["trace"], intended=intended,
                        applied=applied, under=under))
        audit = getattr(layer, "audit", None)
        if audit is not None:
            for rec in audit.as_records():
                if rec["packets"] == 0:
                    continue
                gap = (rec["mean_intended_delay"]
                       - rec["mean_applied_delay"])
                if gap > tick + TIME_EPS:
                    out.append(self.violation(
                        "mean_under_delay",
                        f"tuple F={rec['F']:.4f} Vb={rec['Vb']:.2e}: "
                        f"mean under-delay {gap * 1e3:.3f} ms exceeds "
                        f"one tick", F=rec["F"], Vb=rec["Vb"],
                        mean_gap=gap))
                if not 0.0 <= rec["observed_loss"] <= 1.0:
                    out.append(self.violation(
                        "loss_fraction",
                        f"observed loss {rec['observed_loss']} outside "
                        f"[0, 1]", observed=rec["observed_loss"]))
        return out


# ======================================================================
# FIFO ordering
# ======================================================================
class FifoOrderMonitor(InvariantMonitor):
    """Delay-line and queue ordering.

    * The replay feed is a strict FIFO consumed cyclically: modulated
      trials loop the trace when they outlast it, so the audit's
      first-enforced order must follow the trace's first-occurrence
      order *per pass* — split into ascending runs of trace indices, it
      may restart (descend) at most once per completed replay pass
      (``tuples_consumed / len(trace)`` rounded up).
    * Every device transmit queue drains in arrival order: the tx span
      sequence of a device must be a prefix of its enqueue sequence.
    """

    name = "fifo"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        layer = ctx.layer
        if layer is not None:
            feed = layer.feed
            if feed.tuples_consumed > feed.tuples_written:
                out.append(self.violation(
                    "feed_balance",
                    f"feed consumed {feed.tuples_consumed} tuples but "
                    f"only {feed.tuples_written} were written",
                    consumed=feed.tuples_consumed,
                    written=feed.tuples_written))
            buffered = feed.tuples_written - feed.tuples_consumed
            if not 0 <= feed.capacity - feed.free_slots == buffered:
                out.append(self.violation(
                    "feed_occupancy",
                    f"feed occupancy {feed.capacity - feed.free_slots} "
                    f"!= written-consumed {buffered}",
                    occupancy=feed.capacity - feed.free_slots,
                    buffered=buffered))
            audit = getattr(layer, "audit", None)
            if audit is not None and ctx.replay is not None \
                    and ctx.replay.tuples:
                enforced = audit.enforced_order()
                occurrences: Dict[Any, List[int]] = {}
                for i, tup in enumerate(ctx.replay.tuples):
                    key = (tup.d, tup.F, tup.Vb, tup.Vr, tup.L)
                    occurrences.setdefault(key, []).append(i)
                unknown = [key for key in enforced
                           if key not in occurrences]
                if unknown:
                    out.append(self.violation(
                        "feed_order",
                        f"{len(unknown)} enforced tuple(s) never appear "
                        f"in the replay trace",
                        enforced=len(enforced),
                        trace_tuples=len(occurrences)))
                else:
                    # Greedy cyclic walk: match each enforced key to its
                    # next trace occurrence at-or-after the cursor; a
                    # wrap means another replay pass was needed.  The
                    # greedy (earliest feasible occurrence) walk yields
                    # the minimum number of passes that could explain
                    # the enforcement order.
                    runs, cursor = 1, 0
                    for key in enforced:
                        idx_list = occurrences[key]
                        nxt = bisect_left(idx_list, cursor)
                        if nxt < len(idx_list):
                            cursor = idx_list[nxt] + 1
                        else:
                            runs += 1
                            cursor = idx_list[0] + 1
                    trace_len = len(ctx.replay.tuples)
                    passes = max(1, -(-layer.feed.tuples_consumed
                                      // trace_len))
                    if runs > passes:
                        out.append(self.violation(
                            "feed_order",
                            f"tuples were enforced out of replay-trace "
                            f"order: the order needs {runs} replay "
                            f"pass(es) but only {passes} were consumed",
                            runs=runs, passes=passes,
                            enforced=len(enforced),
                            trace_tuples=len(occurrences)))
        tracer = ctx.tracer
        if tracer is not None and tracer.dropped_spans == 0:
            by_device: Dict[Any, Dict[str, List[int]]] = {}
            for span in tracer.spans:
                if span["layer"] != "dev":
                    continue
                event = span["event"]
                if event not in ("enqueue", "tx"):
                    continue
                key = (span["host"], span.get("device"))
                lists = by_device.setdefault(key,
                                             {"enqueue": [], "tx": []})
                lists[event].append(span["pkt"])
            for (host, device), lists in sorted(by_device.items()):
                enq, tx = lists["enqueue"], lists["tx"]
                if tx != enq[:len(tx)]:
                    out.append(self.violation(
                        "queue_order",
                        f"{host}.{device}: transmit order deviates from "
                        f"enqueue order (queue is not FIFO)",
                        host=host, device=device,
                        transmitted=len(tx), enqueued=len(enq)))
        return out


# ======================================================================
# TCP sequence-space sanity
# ======================================================================
class TcpSanityMonitor(InvariantMonitor):
    """``snd_una ≤ snd_nxt ≤ snd_max`` on every connection, always."""

    name = "tcp"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for host in ctx.hosts():
            for key, conn in sorted(host.tcp._conns.items()):
                if not (conn.snd_una <= conn.snd_nxt <= conn.snd_max):
                    out.append(self.violation(
                        "send_sequence",
                        f"{host.name} conn {key}: snd_una "
                        f"{conn.snd_una} <= snd_nxt {conn.snd_nxt} <= "
                        f"snd_max {conn.snd_max} violated",
                        host=host.name, snd_una=conn.snd_una,
                        snd_nxt=conn.snd_nxt, snd_max=conn.snd_max))
                if conn.rcv_nxt < 0:
                    out.append(self.violation(
                        "recv_sequence",
                        f"{host.name} conn {key}: negative rcv_nxt "
                        f"{conn.rcv_nxt}",
                        host=host.name, rcv_nxt=conn.rcv_nxt))
        tracer = ctx.tracer
        if tracer is not None:
            for span in tracer.spans:
                if span["layer"] != "tcp" or span["event"] != "tx":
                    continue
                if span["seq"] < 0 or span.get("length", 0) < 0:
                    out.append(self.violation(
                        "segment_fields",
                        f"tcp segment with negative seq/length: seq="
                        f"{span['seq']} length={span.get('length')}",
                        trace=span["trace"], seq=span["seq"]))
        return out


# ======================================================================
# Replay-trace and collected-record well-formedness
# ======================================================================
class WellFormednessMonitor(InvariantMonitor):
    """Distilled tuples and collected records are valid by construction.

    ``QualityTuple`` itself enforces ``d > 0`` and ``0 ≤ L ≤ 1``; the
    distiller must additionally never emit negative costs (its §3.2.2
    correction step exists precisely to prevent that) or non-finite
    values, and collected trace records must be well-formed with
    monotone timestamps (the collection daemon appends in order).
    """

    name = "wellformed"

    def check(self, ctx: CheckContext) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        if ctx.replay is not None:
            out.extend(self.check_replay(ctx.replay))
        dist = ctx.distillation
        if dist is not None:
            last = -math.inf
            for est in dist.estimates:
                if not all(math.isfinite(v)
                           for v in (est.time, est.F, est.Vb, est.Vr)):
                    out.append(self.violation(
                        "estimate_finite",
                        f"non-finite parameter estimate at t={est.time}",
                        time=est.time))
                if est.F < 0 or est.Vb < 0 or est.Vr < 0:
                    out.append(self.violation(
                        "estimate_negative",
                        f"negative estimate at t={est.time}: "
                        f"F={est.F} Vb={est.Vb} Vr={est.Vr}",
                        time=est.time, F=est.F, Vb=est.Vb, Vr=est.Vr))
                if est.time < last - TIME_EPS:
                    out.append(self.violation(
                        "estimate_order",
                        f"estimate at t={est.time} precedes previous "
                        f"at t={last}", time=est.time, previous=last))
                last = max(last, est.time)
            if dist.groups_used > dist.groups_total:
                out.append(self.violation(
                    "group_accounting",
                    f"groups used {dist.groups_used} > total "
                    f"{dist.groups_total}", used=dist.groups_used,
                    total=dist.groups_total))
            if dist.replies_received > dist.echoes_sent:
                out.append(self.violation(
                    "echo_accounting",
                    f"replies {dist.replies_received} > echoes sent "
                    f"{dist.echoes_sent}",
                    replies=dist.replies_received,
                    echoes=dist.echoes_sent))
        if ctx.records is not None:
            out.extend(self.check_records(ctx.records))
        return out

    # ------------------------------------------------------------------
    def check_replay(self, replay: ReplayTrace) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for i, tup in enumerate(replay.tuples):
            values = (tup.d, tup.F, tup.Vb, tup.Vr, tup.L)
            if not all(math.isfinite(v) for v in values):
                out.append(self.violation(
                    "tuple_finite",
                    f"tuple {i} has non-finite fields: {values}",
                    index=i))
                continue
            if tup.d <= 0:
                out.append(self.violation(
                    "tuple_duration",
                    f"tuple {i} duration {tup.d} <= 0", index=i,
                    d=tup.d))
            if tup.F < 0 or tup.Vb < 0 or tup.Vr < 0:
                out.append(self.violation(
                    "tuple_negative_cost",
                    f"tuple {i} has negative cost: F={tup.F} "
                    f"Vb={tup.Vb} Vr={tup.Vr}", index=i, F=tup.F,
                    Vb=tup.Vb, Vr=tup.Vr))
            if not 0.0 <= tup.L <= 1.0:
                out.append(self.violation(
                    "tuple_loss",
                    f"tuple {i} loss {tup.L} outside [0, 1]",
                    index=i, L=tup.L))
        return out

    def check_records(self, records: Iterable) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        last = -math.inf
        for i, rec in enumerate(records):
            if isinstance(rec, PacketRecord):
                if rec.size <= 0:
                    out.append(self.violation(
                        "record_size",
                        f"record {i}: non-positive packet size "
                        f"{rec.size}", index=i, size=rec.size))
                if rec.direction not in (0, 1):
                    out.append(self.violation(
                        "record_direction",
                        f"record {i}: direction {rec.direction} not "
                        f"in/out", index=i, direction=rec.direction))
            elif isinstance(rec, DeviceStatusRecord):
                pass  # signal fields are device-scaled, no fixed range
            elif isinstance(rec, LostRecordsRecord):
                if rec.count <= 0:
                    out.append(self.violation(
                        "lost_records_count",
                        f"record {i}: lost-records count {rec.count} "
                        f"<= 0", index=i, count=rec.count))
            else:
                out.append(self.violation(
                    "record_type",
                    f"record {i}: unknown record type "
                    f"{type(rec).__name__}", index=i))
                continue
            if not math.isfinite(rec.timestamp):
                out.append(self.violation(
                    "record_timestamp",
                    f"record {i}: non-finite timestamp", index=i))
            elif rec.timestamp < last - TIME_EPS:
                out.append(self.violation(
                    "record_order",
                    f"record {i}: timestamp {rec.timestamp} precedes "
                    f"previous {last}", index=i,
                    timestamp=rec.timestamp, previous=last))
            else:
                last = max(last, rec.timestamp)
        return out


ALL_MONITORS = (
    PacketConservationMonitor,
    ClockSanityMonitor,
    TickAlignmentMonitor,
    DelayBoundMonitor,
    FifoOrderMonitor,
    TcpSanityMonitor,
    WellFormednessMonitor,
)


def run_monitors(ctx: CheckContext,
                 monitors: Optional[Iterable] = None
                 ) -> List[InvariantViolation]:
    """Run every monitor over one finished trial; never raises."""
    out: List[InvariantViolation] = []
    for monitor in (monitors or [cls() for cls in ALL_MONITORS]):
        out.extend(monitor.check(ctx))
    return out
