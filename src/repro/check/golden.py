"""Golden-master regression corpus: distilled traces + validation tables.

The corpus pins the pipeline's *behaviour* — not just "tests pass" —
at fixed seeds: one distilled replay trace and one rendered validation
table per scenario, checked into ``tests/golden/``.  The determinism
contract (everything keyed by ``(scenario, seed, trial)``, observability
draws no RNG) makes these byte-identical across runs and worker counts,
so any future perf PR that skews behaviour fails the diff loudly
instead of silently drifting EXPERIMENTS.md.

The differ is tolerance-aware: with ``rtol=0`` (the default, and what
the regression test uses) it demands byte-identical text; a non-zero
``rtol`` compares every embedded number within a relative tolerance
while still requiring the surrounding text to match exactly — the mode
to use when an *intentional* behaviour change is being reviewed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.replay import ReplayTrace
from ..pipeline import CollectStage, DistillStage, Pipeline, as_pipeline
from ..runtime.job import Job, register_job_kind, runner_ref
from ..runtime.session import shared_pipeline
from ..scenarios import ALL_SCENARIOS, scenario_by_name
from ..validation.harness import FtpRunner, compensation_vb
from ..validation.parallel import run_validation

# Corpus location: <repo>/tests/golden (this file is src/repro/check/).
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

GOLDEN_SEED = 0
GOLDEN_TRIAL = 0
GOLDEN_FTP_BYTES = 200_000

# One representative scenario per profile family (mobility, RAN, LEO)
# rides in the corpus alongside the paper's four traversals.
FAMILY_GOLDEN_SCENARIOS = ("shuttle", "ran4g", "leo")

_NUMBER = re.compile(r"[-+]?\d+\.?\d*(?:[eE][-+]?\d+)?")


def scenario_names(scenarios: Optional[Iterable[str]] = None) -> List[str]:
    if scenarios is None:
        return [cls.name for cls in ALL_SCENARIOS] \
            + list(FAMILY_GOLDEN_SCENARIOS)
    return list(scenarios)


# ======================================================================
# Corpus generation
# ======================================================================
def golden_replay(name: str, seed: int = GOLDEN_SEED,
                  trial: int = GOLDEN_TRIAL,
                  cache=None) -> ReplayTrace:
    """The scenario's distilled replay trace at the pinned seed.

    Runs collect → distill through the pipeline API; with ``cache``
    set, the stages resolve from the artifact store when warm.
    """
    scenario = scenario_by_name(name)
    pipeline = as_pipeline(cache) or Pipeline()
    stage = DistillStage(CollectStage(scenario, seed, trial),
                         label=f"{name}-{trial}")
    return pipeline.run(stage).replay


def golden_table(name: str, seed: int = GOLDEN_SEED,
                 ftp_bytes: int = GOLDEN_FTP_BYTES,
                 cache=None) -> str:
    """The scenario's one-trial validation table at the pinned seed.

    A single trial of a short FTP send keeps regeneration fast while
    exercising collect, distill, live and modulated stages end to end;
    ``workers=1`` is explicit, but any worker count renders the same
    bytes (the PR-1 determinism contract).
    """
    scenario = scenario_by_name(name)
    runner = FtpRunner(nbytes=ftp_bytes, direction="send")
    sweep = run_validation(scenario, runner, seed=seed, trials=1,
                           compensation=compensation_vb(), workers=1,
                           cache=cache)
    return sweep.render(title=f"Golden: {name} ftp-send "
                              f"{ftp_bytes} B, seed {seed}")


# ======================================================================
# The runtime job kind ("golden")
# ======================================================================
# One golden artifact pair runs collect, distill, live and modulated
# stages end to end — always above the chunking threshold, so each
# scenario's regeneration travels solo.
GOLDEN_COST_HINT = 400.0


@dataclass(frozen=True)
class GoldenJob:
    """Picklable description of one scenario's corpus artifacts.  The
    live ``cache`` handle is in-process only; the wire variant nulls
    it and workers reopen ``cache_root`` per process."""

    name: str
    seed: int = GOLDEN_SEED
    trial: int = GOLDEN_TRIAL
    ftp_bytes: int = GOLDEN_FTP_BYTES
    cache_root: Optional[str] = None
    cache: Optional[Pipeline] = None


def run_golden_job(job: GoldenJob) -> Dict[str, str]:
    """Produce one scenario's corpus artifacts as *text*: the replay
    JSON and the rendered table.  Returning the serialized forms keeps
    the job's output identical to what lands on disk, so byte-identity
    across backends is pinned at the job boundary."""
    cache = job.cache
    if cache is None:
        cache = shared_pipeline(job.cache_root)
    replay = golden_replay(job.name, seed=job.seed, trial=job.trial,
                           cache=cache)
    table = golden_table(job.name, seed=job.seed,
                         ftp_bytes=job.ftp_bytes, cache=cache)
    return {"replay_json": replay.to_json(), "table": table}


_RUN_GOLDEN = runner_ref(run_golden_job)
register_job_kind("golden", _RUN_GOLDEN, cost_hint=GOLDEN_COST_HINT)


def golden_job(name: str, cache=None) -> Job:
    """Build the runtime job for one scenario's corpus artifacts."""
    pipeline = as_pipeline(cache)
    root = None
    if pipeline is not None and pipeline.store.root is not None:
        root = str(pipeline.store.root)
    payload = GoldenJob(name=name, cache_root=root, cache=pipeline)
    return Job(kind="golden", runner=_RUN_GOLDEN, payload=payload,
               label=f"golden:{name}", cost_hint=GOLDEN_COST_HINT,
               wire_payload=replace(payload, cache=None))


def _golden_outputs(names: Sequence[str], cache,
                    executor=None) -> List[Dict[str, str]]:
    """Each scenario's ``{replay_json, table}`` pair, in name order —
    serial, or fanned out through a caller-supplied runtime executor
    (results are byte-identical either way)."""
    pipeline = as_pipeline(cache)
    jobs = [golden_job(name, cache=pipeline) for name in names]
    if executor is None:
        return [run_golden_job(job.payload) for job in jobs]
    return executor.map_jobs(jobs)


def replay_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.replay.json"


def table_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.table.txt"


def regenerate(directory: Optional[Path] = None,
               scenarios: Optional[Iterable[str]] = None,
               cache=None, executor=None) -> List[Path]:
    """(Re)write the corpus; returns the paths written.

    Only for *intentional* behaviour changes — see docs/TESTING.md.
    The written bytes are the runner's serialized output verbatim
    (``ReplayTrace.save`` writes exactly ``to_json()``), so serial and
    parallel regeneration produce identical files.
    """
    directory = Path(directory or DEFAULT_GOLDEN_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    names = scenario_names(scenarios)
    written: List[Path] = []
    for name, out in zip(names, _golden_outputs(names, cache, executor)):
        path = replay_path(directory, name)
        path.write_text(out["replay_json"], encoding="utf-8")
        written.append(path)
        path = table_path(directory, name)
        path.write_text(out["table"], encoding="utf-8")
        written.append(path)
    return written


# ======================================================================
# Tolerance-aware diffing
# ======================================================================
def diff_text(expected: str, actual: str, rtol: float = 0.0,
              label: str = "") -> List[str]:
    """Differences between two texts, numbers compared within ``rtol``.

    With ``rtol=0`` any byte difference is reported.  Otherwise each
    line is tokenized into numbers and the text between them: the text
    must match exactly, numbers must agree within relative tolerance
    ``rtol`` (absolute for values near zero).
    """
    prefix = f"{label}: " if label else ""
    if expected == actual:
        return []
    if rtol <= 0.0:
        exp_lines = expected.splitlines()
        act_lines = actual.splitlines()
        diffs = []
        for i in range(max(len(exp_lines), len(act_lines))):
            exp = exp_lines[i] if i < len(exp_lines) else "<missing>"
            act = act_lines[i] if i < len(act_lines) else "<missing>"
            if exp != act:
                diffs.append(f"{prefix}line {i + 1}: expected "
                             f"{exp!r}, got {act!r}")
        return diffs or [f"{prefix}texts differ (trailing whitespace?)"]
    diffs = []
    exp_lines = expected.splitlines()
    act_lines = actual.splitlines()
    if len(exp_lines) != len(act_lines):
        return [f"{prefix}line count {len(act_lines)} != expected "
                f"{len(exp_lines)}"]
    for i, (exp, act) in enumerate(zip(exp_lines, act_lines)):
        if exp == act:
            continue
        exp_nums = _NUMBER.findall(exp)
        act_nums = _NUMBER.findall(act)
        if (_NUMBER.sub("#", exp) != _NUMBER.sub("#", act)
                or len(exp_nums) != len(act_nums)):
            diffs.append(f"{prefix}line {i + 1}: structure differs: "
                         f"expected {exp!r}, got {act!r}")
            continue
        for e, a in zip(exp_nums, act_nums):
            ev, av = float(e), float(a)
            tol = rtol * max(abs(ev), abs(av), 1e-12)
            if abs(ev - av) > tol:
                diffs.append(f"{prefix}line {i + 1}: {av} outside "
                             f"rtol={rtol} of expected {ev}")
    return diffs


def diff_replay(expected: ReplayTrace, actual: ReplayTrace,
                rtol: float = 0.0, label: str = "") -> List[str]:
    """Differences between two replay traces, tuple by tuple."""
    prefix = f"{label}: " if label else ""
    diffs: List[str] = []
    if len(expected) != len(actual):
        return [f"{prefix}{len(actual)} tuples != expected "
                f"{len(expected)}"]
    for i, (e, a) in enumerate(zip(expected.tuples, actual.tuples)):
        for fld in ("d", "F", "Vb", "Vr", "L"):
            ev, av = getattr(e, fld), getattr(a, fld)
            tol = rtol * max(abs(ev), abs(av), 1e-12)
            if abs(ev - av) > tol:
                diffs.append(f"{prefix}tuple {i}.{fld}: {av} != "
                             f"expected {ev} (rtol={rtol})")
    return diffs


def compare(directory: Optional[Path] = None,
            scenarios: Optional[Iterable[str]] = None,
            rtol: float = 0.0, cache=None,
            executor=None) -> Dict[str, List[str]]:
    """Regenerate in memory and diff against the checked-in corpus.

    Returns ``{artifact: [differences]}`` — empty when everything
    matches.  A missing golden file is itself a difference (run
    ``repro check --regen-golden`` once to seed the corpus).
    """
    directory = Path(directory or DEFAULT_GOLDEN_DIR)
    names = scenario_names(scenarios)
    out: Dict[str, List[str]] = {}
    for name, actual in zip(names, _golden_outputs(names, cache, executor)):
        rpath = replay_path(directory, name)
        if not rpath.exists():
            out[rpath.name] = ["golden file missing"]
        else:
            expected = ReplayTrace.load(str(rpath))
            diffs = diff_replay(expected,
                                ReplayTrace.from_json(actual["replay_json"]),
                                rtol=rtol)
            # The JSON text itself must round-trip byte-identically
            # when the tuples match exactly.
            if not diffs and rtol == 0.0:
                diffs = diff_text(rpath.read_text(encoding="utf-8"),
                                  actual["replay_json"], rtol=0.0)
            if diffs:
                out[rpath.name] = diffs
        tpath = table_path(directory, name)
        if not tpath.exists():
            out[tpath.name] = ["golden file missing"]
        else:
            diffs = diff_text(tpath.read_text(encoding="utf-8"),
                              actual["table"], rtol=rtol)
            if diffs:
                out[tpath.name] = diffs
    return out
