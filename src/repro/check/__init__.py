"""repro.check: invariant monitors, golden masters, pipeline fuzzing.

Three pillars of correctness tooling over the emulator (all riding on
the ``repro.obs`` observability layer — no new hot-path hooks):

* :mod:`repro.check.invariants` — post-trial monitors asserting packet
  conservation, clock sanity, tick alignment, bounded under-delay,
  FIFO ordering, TCP sequence sanity and replay well-formedness;
* :mod:`repro.check.runner` — ``check_scenario``/``check_all`` drive
  the monitors over full traced pipeline runs (CLI: ``repro check``),
  plus the mutation hook CI uses to prove the monitors can fail;
* :mod:`repro.check.golden` — the checked-in golden-master corpus and
  its tolerance-aware differ.

The Hypothesis property suite lives in ``tests/test_check_properties.py``
(`pytest -m check` selects the whole tier).
"""

from .fuzz import (FUZZ_FTP_BYTES, FuzzFinding, FuzzRun, corpus_digest,
                   run_fuzz, shrink_spec)
from .golden import (DEFAULT_GOLDEN_DIR, compare, diff_replay, diff_text,
                     golden_replay, golden_table, regenerate)
from .invariants import (ALL_MONITORS, CheckContext, ClockSanityMonitor,
                         DelayBoundMonitor, FifoOrderMonitor,
                         InvariantMonitor, InvariantViolation,
                         PacketConservationMonitor, TcpSanityMonitor,
                         TickAlignmentMonitor, WellFormednessMonitor,
                         run_monitors)
from .runner import (CheckReport, StageResult, check_all, check_scenario,
                     inject_tick_undershoot, smoke_check)

__all__ = [
    "ALL_MONITORS",
    "CheckContext",
    "CheckReport",
    "ClockSanityMonitor",
    "DEFAULT_GOLDEN_DIR",
    "DelayBoundMonitor",
    "FUZZ_FTP_BYTES",
    "FifoOrderMonitor",
    "FuzzFinding",
    "FuzzRun",
    "InvariantMonitor",
    "InvariantViolation",
    "PacketConservationMonitor",
    "StageResult",
    "TcpSanityMonitor",
    "TickAlignmentMonitor",
    "WellFormednessMonitor",
    "check_all",
    "check_scenario",
    "compare",
    "corpus_digest",
    "diff_replay",
    "diff_text",
    "golden_replay",
    "golden_table",
    "inject_tick_undershoot",
    "regenerate",
    "run_fuzz",
    "run_monitors",
    "shrink_spec",
    "smoke_check",
]
