"""Generative fuzzing: random scenarios through the invariant monitors.

``run_fuzz`` turns the fixed-corpus invariant suite into a generative
one: it draws ``count`` random-but-valid scenario specs from the
seeded generator (:mod:`repro.scenarios.generate`), runs the full
``check_scenario`` pipeline — collect, distill, live trial, modulated
trial, every monitor — over each, and for any spec that violates an
invariant it *shrinks* the spec to a smaller reproducer and archives
both as repro artifacts.

Everything is deterministic in ``(seed, count, kinds)``: the corpus,
the per-spec check seeds, the shrink sequence and the rendered summary
are byte-identical across reruns and machines — which is what lets CI
assert reproducibility by diffing two runs.

Reproducing an archived failure::

    repro check --scenario artifacts/fuzz-s0-i0042.spec.toml

(the artifact is a plain TOML spec; see docs/SCENARIOS.md for the full
walkthrough).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..pipeline import Pipeline, as_pipeline, digest
from ..runtime.job import Job, register_job_kind, runner_ref
from ..runtime.session import shared_pipeline
from ..scenarios.generate import GENERATOR_VERSION, generate_specs
from ..scenarios.spec import (LossModel, ScenarioSpec, SpecError,
                              SpecScenario, save_spec, spec_to_dict)
from .invariants import InvariantViolation
from .runner import check_scenario

FUZZ_VERSION = 1

# A fuzz check uses a short transfer so hundreds of specs stay in
# minutes of wall clock; every stage still runs.
FUZZ_FTP_BYTES = 25_000
DEFAULT_SHRINK_BUDGET = 24


# ======================================================================
# Results
# ======================================================================
@dataclass
class FuzzFinding:
    """One violating spec: the shrunk reproducer plus provenance."""

    spec: ScenarioSpec                       # shrunk reproducer
    original: ScenarioSpec                   # as generated
    violations: List[InvariantViolation]
    shrink_steps: int = 0
    shrink_checks: int = 0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.original.name,
            "generator": self.original.generator,
            "violations": [v.as_dict() for v in self.violations],
            "shrink_steps": self.shrink_steps,
            "shrink_checks": self.shrink_checks,
            "spec": spec_to_dict(self.spec),
            "original": spec_to_dict(self.original),
            "artifacts": dict(self.artifacts),
        }


@dataclass
class FuzzRun:
    """The outcome of one seeded fuzz campaign."""

    seed: int
    count: int
    kinds: Optional[List[str]]
    checked: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    corpus_digest: str = ""
    corpus_dir: str = ""
    artifact_dir: str = ""

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fuzz_version": FUZZ_VERSION,
            "generator_version": GENERATOR_VERSION,
            "seed": self.seed,
            "count": self.count,
            "kinds": self.kinds,
            "checked": self.checked,
            "ok": self.ok,
            "corpus_digest": self.corpus_digest,
            "findings": [f.as_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Deterministic summary (no wall-clock, byte-stable reruns)."""
        head = (f"fuzz seed={self.seed} count={self.count}: "
                f"{self.checked} spec(s) checked, "
                f"{len(self.findings)} violating")
        lines = [head, f"corpus digest {self.corpus_digest}"]
        for finding in self.findings:
            first = finding.violations[0]
            lines.append(f"  !! {finding.original.name}: "
                         f"{len(finding.violations)} violation(s), "
                         f"first [{first.monitor}.{first.invariant}] "
                         f"(shrunk in {finding.shrink_steps} step(s))")
            for label, path in sorted(finding.artifacts.items()):
                lines.append(f"     {label}: {path}")
        return "\n".join(lines)


def corpus_digest(specs: Sequence[ScenarioSpec]) -> str:
    """SHA-256 over the canonical-JSON corpus (order-sensitive)."""
    return digest({"fuzz_corpus": FUZZ_VERSION,
                   "specs": [spec_to_dict(s) for s in specs]})


# ======================================================================
# Shrinking
# ======================================================================
def _field_shrink_candidates(spec: ScenarioSpec):
    """Per-field simplifications, most aggressive first."""
    for fname, pieces in sorted(spec.fields.items()):
        if len(pieces) > 1:
            # Collapse the curve to its first piece, extended full-span.
            collapsed = (replace(pieces[0], end=1.0, inclusive=False),)
            yield (f"{fname}: collapse to 1 piece",
                   _with_field(spec, fname, collapsed))
        simplified = tuple(
            replace(p, dist="gauss", slope=0.0, span=None,
                    dip_prob=0.0, spike_prob=0.0, spike_magnitude=0.0)
            for p in pieces)
        if simplified != pieces:
            yield (f"{fname}: gauss, no ramps/dips/spikes",
                   _with_field(spec, fname, simplified))


def _with_field(spec: ScenarioSpec, fname: str, pieces) -> ScenarioSpec:
    fields = dict(spec.fields)
    fields[fname] = pieces
    return replace(spec, fields=fields)


def _shrink_candidates(spec: ScenarioSpec):
    """Ordered candidate simplifications of ``spec``."""
    if spec.family is not None:
        # Detach the family first so field-level shrinking can bite;
        # the compiled fields are already on the spec.
        yield "detach family", replace(spec, family=None)
        return
    if spec.duration > 20.0:
        yield (f"halve duration to {spec.duration / 2:.1f}",
               replace(spec, duration=round(spec.duration / 2, 1)))
    if spec.checkpoints:
        yield "drop checkpoints", replace(spec, checkpoints=())
    if spec.cross_laptops:
        yield "drop cross laptops", replace(spec, cross_laptops=0)
    if spec.loss_model != LossModel():
        yield "default loss model", replace(spec, loss_model=LossModel())
    yield from _field_shrink_candidates(spec)


def shrink_spec(spec: ScenarioSpec,
                reproduces: Callable[[ScenarioSpec], bool],
                budget: int = DEFAULT_SHRINK_BUDGET):
    """Greedy shrink: keep any simplification that still reproduces.

    ``reproduces`` re-checks a candidate (expensive — a full pipeline
    run), so the total number of candidate evaluations is capped by
    ``budget``.  Returns ``(shrunk_spec, steps_applied, checks_used)``.
    """
    current = spec
    steps = 0
    checks = 0
    progress = True
    while progress and checks < budget:
        progress = False
        for _label, candidate in _shrink_candidates(current):
            if checks >= budget:
                break
            try:
                candidate.validate()
            except SpecError:
                continue
            checks += 1
            if reproduces(candidate):
                current = candidate
                steps += 1
                progress = True
                break   # restart from the smaller spec
    return current, steps, checks


# ======================================================================
# The campaign
# ======================================================================
def _check_spec(spec: ScenarioSpec, seed: int, ftp_bytes: int,
                cache) -> List[InvariantViolation]:
    """Violations for one spec; a pipeline crash is itself a finding."""
    try:
        report = check_scenario(SpecScenario(spec), seed=seed,
                                ftp_bytes=ftp_bytes, cache=cache)
    except InvariantViolation:
        raise
    except Exception as exc:  # noqa: BLE001 - fuzzing wants the crash
        return [InvariantViolation(
            "fuzz", "pipeline_crash",
            f"pipeline raised {type(exc).__name__}: {exc}")]
    return report.violations


def _signature(violations: Sequence[InvariantViolation]):
    return {(v.monitor, v.invariant) for v in violations}


# ----------------------------------------------------------------------
# The runtime job kind ("fuzz"): one generated spec through the full
# invariant pipeline.  The short FUZZ_FTP_BYTES transfer keeps a spec
# check cheaper than a full `check` job but still well above the
# chunking threshold, so specs travel solo and expensive ones do not
# serialize behind cheap ones.
# ----------------------------------------------------------------------
FUZZ_COST_HINT = 150.0


@dataclass(frozen=True)
class FuzzCheckJob:
    """Picklable description of one spec check.  The live ``cache``
    handle is in-process only; the wire variant nulls it and workers
    reopen ``cache_root`` per process."""

    spec: ScenarioSpec
    seed: int = 0
    ftp_bytes: int = FUZZ_FTP_BYTES
    cache_root: Optional[str] = None
    cache: Optional[Pipeline] = None


def run_fuzz_check_job(job: FuzzCheckJob) -> List[InvariantViolation]:
    cache = job.cache
    if cache is None:
        cache = shared_pipeline(job.cache_root)
    return _check_spec(job.spec, job.seed, job.ftp_bytes, cache)


_RUN_FUZZ_CHECK = runner_ref(run_fuzz_check_job)
register_job_kind("fuzz", _RUN_FUZZ_CHECK, cost_hint=FUZZ_COST_HINT)


def fuzz_check_job(spec: ScenarioSpec, seed: int = 0,
                   ftp_bytes: int = FUZZ_FTP_BYTES, cache=None) -> Job:
    """Build the runtime job checking one generated spec."""
    pipeline = as_pipeline(cache)
    root = None
    if pipeline is not None and pipeline.store.root is not None:
        root = str(pipeline.store.root)
    payload = FuzzCheckJob(spec=spec, seed=seed, ftp_bytes=ftp_bytes,
                           cache_root=root, cache=pipeline)
    return Job(kind="fuzz", runner=_RUN_FUZZ_CHECK, payload=payload,
               label=f"fuzz:{spec.name}", cost_hint=FUZZ_COST_HINT,
               wire_payload=replace(payload, cache=None))


def run_fuzz(count: int, seed: int = 0,
             kinds: Optional[Sequence[str]] = None,
             ftp_bytes: int = FUZZ_FTP_BYTES,
             corpus_dir: Optional[str] = None,
             artifact_dir: Optional[str] = None,
             cache=None, shrink: bool = True,
             shrink_budget: int = DEFAULT_SHRINK_BUDGET,
             progress: Optional[Callable[[int, int, str], None]] = None,
             executor=None) -> FuzzRun:
    """Fuzz ``count`` generated scenarios through the invariant suite.

    * ``corpus_dir`` — write every generated spec as a TOML file;
    * ``artifact_dir`` — archive each violating spec (shrunk reproducer
      ``<name>.spec.toml``, original ``<name>.orig.toml``, violation
      report ``<name>.report.json``);
    * ``cache`` — a pipeline cache dir/store: warm reruns of an
      unchanged corpus skip the simulations entirely;
    * ``progress`` — optional ``fn(done, total, name)`` callback (the
      CLI points it at stderr so stdout stays byte-identical);
    * ``executor`` — a runtime :class:`~repro.runtime.Scheduler`: the
      initial sweep over the corpus fans out across its workers while
      results are consumed in spec order, so ``FuzzRun`` (and hence the
      rendered summary) is byte-identical to the serial run.  Shrinking
      stays serial in the parent — each shrink candidate depends on the
      previous verdict, so there is no parallelism to harvest there.
    """
    specs = list(generate_specs(seed, count, kinds=kinds))
    cache = as_pipeline(cache)
    run = FuzzRun(seed=seed, count=count,
                  kinds=list(kinds) if kinds else None,
                  corpus_digest=corpus_digest(specs))
    if corpus_dir:
        corpus = Path(corpus_dir)
        corpus.mkdir(parents=True, exist_ok=True)
        for spec in specs:
            save_spec(spec, corpus / f"{spec.name}.toml")
        run.corpus_dir = str(corpus)
    archive = None
    if artifact_dir:
        archive = Path(artifact_dir)
        archive.mkdir(parents=True, exist_ok=True)
        run.artifact_dir = str(archive)
    futures = None
    if executor is not None:
        jobs = [fuzz_check_job(spec, seed=seed, ftp_bytes=ftp_bytes,
                               cache=cache) for spec in specs]
        futures = executor.submit_jobs(jobs)
    for i, spec in enumerate(specs):
        if progress is not None:
            progress(i, count, spec.name)
        if futures is not None:
            violations = futures[i].result()
        else:
            violations = _check_spec(spec, seed, ftp_bytes, cache)
        run.checked += 1
        if not violations:
            continue
        shrunk, steps, checks = spec, 0, 0
        if shrink:
            # A candidate reproduces when it breaks one of the same
            # invariants the original did — a candidate that fails some
            # *other* way (e.g. too short to distill) does not count.
            signature = _signature(violations)

            def reproduces(cand, signature=signature):
                found = _check_spec(cand, seed, ftp_bytes, cache)
                return bool(_signature(found) & signature)

            shrunk, steps, checks = shrink_spec(spec, reproduces,
                                                budget=shrink_budget)
            if shrunk is not spec:
                # Report the violations of the *reproducer*.
                violations = _check_spec(shrunk, seed, ftp_bytes, cache)
        finding = FuzzFinding(spec=shrunk, original=spec,
                              violations=violations,
                              shrink_steps=steps, shrink_checks=checks)
        if archive is not None:
            spec_path = archive / f"{spec.name}.spec.toml"
            orig_path = archive / f"{spec.name}.orig.toml"
            report_path = archive / f"{spec.name}.report.json"
            save_spec(shrunk, spec_path)
            save_spec(spec, orig_path)
            report_path.write_text(
                json.dumps(finding.as_dict(), indent=1, sort_keys=True),
                encoding="utf-8")
            finding.artifacts = {"reproducer": str(spec_path),
                                 "original": str(orig_path),
                                 "report": str(report_path)}
        run.findings.append(finding)
    if progress is not None:
        progress(count, count, "")
    return run
