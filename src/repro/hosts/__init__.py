"""Simulated hosts: kernels, stack assembly, prebuilt worlds."""

from .host import Host
from .kernel import DEFAULT_TICK, Kernel, PseudoDevice
from .worlds import (
    BASE_ADDR,
    LAPTOP_ADDR,
    LiveWorld,
    ModulationWorld,
    SERVER_ADDR,
    cross_laptop_addr,
)

__all__ = [
    "BASE_ADDR",
    "DEFAULT_TICK",
    "Host",
    "Kernel",
    "LAPTOP_ADDR",
    "LiveWorld",
    "ModulationWorld",
    "PseudoDevice",
    "SERVER_ADDR",
    "cross_laptop_addr",
]
