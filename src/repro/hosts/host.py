"""Host assembly: kernel + devices + protocol stack."""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..net.device import NetworkDevice
from ..protocols.icmp import ICMPProtocol
from ..protocols.ip import IPLayer
from ..protocols.tcp import TCPProtocol
from ..protocols.udp import UDPProtocol
from ..sim import Process, Simulator, spawn
from .kernel import DEFAULT_TICK, Kernel


class Host:
    """A simulated end host with a full protocol stack.

    >>> # doctest-style sketch; see tests/test_hosts.py for real usage
    >>> # host = Host(sim, "laptop", "10.0.0.2")
    >>> # host.add_device(dev, default=True)
    """

    def __init__(self, sim: Simulator, name: str, address: str,
                 tick_resolution: float = DEFAULT_TICK,
                 clock_drift: float = 0.0,
                 forwarding: bool = False):
        self.sim = sim
        self.name = name
        self.address = address
        self.kernel = Kernel(sim, tick_resolution=tick_resolution,
                             clock_drift=clock_drift)
        self.devices: List[NetworkDevice] = []
        self.ip = IPLayer(sim, [address], forwarding=forwarding)
        self.icmp = ICMPProtocol(sim, self.ip)
        self.udp = UDPProtocol(sim, self.ip)
        self.tcp = TCPProtocol(sim, self.ip, kernel=self.kernel)
        self.processes: List[Process] = []

    # ------------------------------------------------------------------
    def add_device(self, device: NetworkDevice, default: bool = False) -> None:
        """Attach a NIC; optionally make it the default route."""
        self.devices.append(device)
        self.ip.attach_device(device)
        if default:
            self.ip.routing.set_default(device)

    def add_address(self, address: str) -> None:
        if address not in self.ip.addresses:
            self.ip.addresses.append(address)

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        proc = spawn(self.sim, gen, name=f"{self.name}:{name or 'proc'}")
        self.processes.append(proc)
        return proc

    def device_named(self, name: str) -> NetworkDevice:
        for device in self.devices:
            if device.name == name:
                return device
        raise KeyError(f"{self.name} has no device {name!r}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} {self.address}>"
