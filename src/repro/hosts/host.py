"""Host assembly: kernel + devices + protocol stack."""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..net.device import NetworkDevice
from ..protocols.icmp import ICMPProtocol
from ..protocols.ip import IPLayer
from ..protocols.tcp import TCPProtocol
from ..protocols.udp import UDPProtocol
from ..sim import Process, Simulator, spawn
from .kernel import DEFAULT_TICK, Kernel


class Host:
    """A simulated end host with a full protocol stack.

    >>> # doctest-style sketch; see tests/test_hosts.py for real usage
    >>> # host = Host(sim, "laptop", "10.0.0.2")
    >>> # host.add_device(dev, default=True)
    """

    def __init__(self, sim: Simulator, name: str, address: str,
                 tick_resolution: float = DEFAULT_TICK,
                 clock_drift: float = 0.0,
                 forwarding: bool = False):
        self.sim = sim
        self.name = name
        self.address = address
        self.kernel = Kernel(sim, tick_resolution=tick_resolution,
                             clock_drift=clock_drift)
        self.devices: List[NetworkDevice] = []
        self.ip = IPLayer(sim, [address], forwarding=forwarding)
        self.icmp = ICMPProtocol(sim, self.ip)
        self.udp = UDPProtocol(sim, self.ip)
        self.tcp = TCPProtocol(sim, self.ip, kernel=self.kernel)
        self.processes: List[Process] = []

    # ------------------------------------------------------------------
    def add_device(self, device: NetworkDevice, default: bool = False) -> None:
        """Attach a NIC; optionally make it the default route."""
        self.devices.append(device)
        self.ip.attach_device(device)
        if default:
            self.ip.routing.set_default(device)

    def add_address(self, address: str) -> None:
        if address not in self.ip.addresses:
            self.ip.addresses.append(address)

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "") -> Process:
        proc = spawn(self.sim, gen, name=f"{self.name}:{name or 'proc'}")
        self.processes.append(proc)
        return proc

    def stats(self) -> dict:
        """Rollup of every per-layer counter this host accumulates.

        Surfaces the counters that previously sat orphaned on their
        objects (queue drops, device tx_drops, the protocols' demux
        drops) in one JSON-friendly snapshot; the observability layer's
        registry collectors read exactly this.
        """
        ip = self.ip
        return {
            "host": self.name,
            "devices": [{
                "device": device.name,
                "tx_packets": device.tx_packets,
                "rx_packets": device.rx_packets,
                "tx_bytes": device.tx_bytes,
                "rx_bytes": device.rx_bytes,
                "tx_drops": device.tx_drops,
                "queue": device.queue.stats(),
            } for device in self.devices],
            "ip": {
                "sent": ip.sent,
                "received": ip.received,
                "forwarded": ip.forwarded,
                "dropped_no_route": ip.dropped_no_route,
                "dropped_ttl": ip.dropped_ttl,
                "dropped_not_mine": ip.dropped_not_mine,
                "fragments_sent": ip.fragments_sent,
                "datagrams_fragmented": ip.datagrams_fragmented,
                "reassembled": ip.reassembler.reassembled,
                "reassembly_timeouts": ip.reassembler.timed_out,
            },
            "tcp": {"dropped_no_conn": self.tcp.dropped_no_conn},
            "udp": {"dropped_no_port": self.udp.dropped_no_port},
            "kernel": {
                "callouts_fired": self.kernel.callouts_fired,
                "immediate_callouts": self.kernel.immediate_callouts,
                "rounded_callouts": self.kernel.rounded_callouts,
            },
        }

    def device_named(self, name: str) -> NetworkDevice:
        for device in self.devices:
            if device.name == name:
                return device
        raise KeyError(f"{self.name} has no device {name!r}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} {self.address}>"
