"""Prebuilt network worlds.

Two topologies cover the paper's experiments:

* :class:`LiveWorld` — the "real" deployment: a mobile laptop on a
  WaveLAN medium, a WavePoint bridge to an Ethernet, and a wired
  server.  Trace collection and the live benchmark trials run here.
* :class:`ModulationWorld` — the controlled testbed: the same laptop
  and server on an isolated Ethernet, with the modulation layer
  installed in the laptop's stack between IP and the link device.

Addresses follow a fixed plan so experiment code reads naturally:
server ``10.0.0.1``, traced laptop ``10.0.0.2``, cross-traffic laptops
``10.0.0.11`` onward, base station ``10.0.0.254``.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.bridge import Bridge
from ..net.ethernet import EthernetDevice, EthernetSegment
from ..net.wavelan import ChannelProfile, WaveLANDevice, WirelessMedium
from ..sim import RngStreams, Simulator
from .host import Host
from .kernel import DEFAULT_TICK

SERVER_ADDR = "10.0.0.1"
LAPTOP_ADDR = "10.0.0.2"
BASE_ADDR = "10.0.0.254"
CROSS_ADDR_BASE = 10  # cross laptops get 10.0.0.11, 10.0.0.12, ...


def cross_laptop_addr(index: int) -> str:
    """Address of the i-th interfering laptop (Chatterbox)."""
    return f"10.0.0.{CROSS_ADDR_BASE + 1 + index}"


class LiveWorld:
    """Mobile laptop -- WaveLAN -- WavePoint bridge -- Ethernet -- server."""

    def __init__(self, profile: Optional[ChannelProfile] = None, seed: int = 0,
                 cross_laptops: int = 0,
                 cross_profile: Optional[ChannelProfile] = None,
                 tick_resolution: float = DEFAULT_TICK,
                 laptop_clock_drift: float = 2e-5):
        self.sim = Simulator()
        self.rngs = RngStreams(seed)
        self.medium = WirelessMedium(self.sim, self.rngs)
        self.ether = EthernetSegment(self.sim)

        # Traced mobile host.
        self.laptop = Host(self.sim, "laptop", LAPTOP_ADDR,
                           tick_resolution=tick_resolution,
                           clock_drift=laptop_clock_drift)
        self.radio = WaveLANDevice(self.sim, "wl0", LAPTOP_ADDR, profile=profile)
        self.medium.attach(self.radio)
        self.laptop.add_device(self.radio, default=True)

        # WavePoint: radio <-> Ethernet learning bridge.
        ap_radio = WaveLANDevice(self.sim, "ap-wl0", BASE_ADDR, is_base=True)
        ap_eth = EthernetDevice(self.sim, "ap-en0", BASE_ADDR)
        ap_eth.promiscuous = True
        self.medium.attach(ap_radio)
        self.ether.attach(ap_eth)
        self.bridge = Bridge(ap_radio, ap_eth, name="wavepoint")

        # Wired server.
        self.server = Host(self.sim, "server", SERVER_ADDR,
                           tick_resolution=tick_resolution)
        server_eth = EthernetDevice(self.sim, "en0", SERVER_ADDR)
        self.ether.attach(server_eth)
        self.server.add_device(server_eth, default=True)

        # Interfering laptops (Chatterbox's SynRGen stations).
        self.cross_hosts: List[Host] = []
        for i in range(cross_laptops):
            addr = cross_laptop_addr(i)
            host = Host(self.sim, f"cross{i}", addr,
                        tick_resolution=tick_resolution)
            radio = WaveLANDevice(self.sim, f"cwl{i}", addr,
                                  profile=cross_profile or ChannelProfile())
            self.medium.attach(radio)
            host.add_device(radio, default=True)
            self.cross_hosts.append(host)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


class ModulationWorld:
    """Laptop and server on an isolated Ethernet, ready for modulation.

    The modulation layer itself is installed by
    :func:`repro.core.modulator.install_modulation`; this class only
    provides the clean two-host wired testbed.
    """

    def __init__(self, seed: int = 0, tick_resolution: float = DEFAULT_TICK,
                 ethernet_bandwidth: float = 10e6):
        self.sim = Simulator()
        self.rngs = RngStreams(seed)
        self.ether = EthernetSegment(self.sim, bandwidth_bps=ethernet_bandwidth)

        self.laptop = Host(self.sim, "laptop", LAPTOP_ADDR,
                           tick_resolution=tick_resolution)
        laptop_eth = EthernetDevice(self.sim, "en0", LAPTOP_ADDR)
        self.ether.attach(laptop_eth)
        self.laptop.add_device(laptop_eth, default=True)
        self.laptop_device = laptop_eth

        self.server = Host(self.sim, "server", SERVER_ADDR,
                           tick_resolution=tick_resolution)
        server_eth = EthernetDevice(self.sim, "en1", SERVER_ADDR)
        self.ether.attach(server_eth)
        self.server.add_device(server_eth, default=True)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)
