"""Simulated host kernel.

Models the pieces of the paper's customized NetBSD 1.2 kernel that its
accuracy story depends on:

* a **coarse clock**: callouts fire on a 10 ms tick grid (§3.3
  "clock-based interrupt resolution on our hosts is only 10
  milliseconds"), with the modulator's round-to-nearest-tick /
  send-immediately-below-half-a-tick policy available as
  :meth:`schedule_rounded`;
* **pseudo-devices** with open/close/read/write, used by the trace
  collection daemon (§3.1.2) and the replay-trace feeding daemon
  (§3.3);
* a **drifting clock** for trace timestamps — the reason the paper is
  forced into round-trip measurements and the symmetry assumption
  (§3.2.2) is that mobile hosts lacked synchronized clocks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..sim import Event, Simulator

DEFAULT_TICK = 0.010  # 10 ms, as on the paper's NetBSD hosts


class PseudoDevice:
    """Base class for /dev-style kernel interfaces."""

    def __init__(self, name: str):
        self.name = name
        self.is_open = False

    def open(self) -> None:
        if self.is_open:
            raise RuntimeError(f"{self.name}: already open")
        self.is_open = True

    def close(self) -> None:
        self.is_open = False

    def read(self, max_records: int = 0) -> list:
        raise NotImplementedError

    def write(self, records: list) -> int:
        raise NotImplementedError


class Kernel:
    """Per-host kernel services: quantized timers, devices, clock."""

    def __init__(self, sim: Simulator, tick_resolution: float = DEFAULT_TICK,
                 clock_drift: float = 0.0, clock_offset: float = 0.0):
        if tick_resolution <= 0:
            raise ValueError("tick resolution must be positive")
        self.sim = sim
        self.tick_resolution = tick_resolution
        self.clock_drift = clock_drift
        self.clock_offset = clock_offset
        self._devices: Dict[str, PseudoDevice] = {}
        self.callouts_fired = 0
        # schedule_rounded policy accounting (modulation-fidelity audit):
        # how often releases fell under the half-tick immediate path vs.
        # landing on the rounded tick grid.
        self.immediate_callouts = 0
        self.rounded_callouts = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def timestamp(self) -> float:
        """The host's own (possibly drifting) clock reading.

        Trace records carry these, not true simulation time — exactly
        the imperfection that forces single-host round-trip timing.
        """
        return self.sim.now * (1.0 + self.clock_drift) + self.clock_offset

    def next_tick_at(self, when: float) -> float:
        """The first tick boundary at or after ``when``."""
        ticks = int(when / self.tick_resolution)
        boundary = ticks * self.tick_resolution
        if boundary < when - 1e-12:
            boundary += self.tick_resolution
        return boundary

    def nearest_tick_at(self, when: float) -> float:
        """The tick boundary closest to ``when``."""
        return round(when / self.tick_resolution) * self.tick_resolution

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def callout(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """BSD-style callout: fires on the first tick >= now + delay."""
        target = self.next_tick_at(self.sim.now + delay)
        return self.sim.schedule_at(max(target, self.sim.now), self._fire, fn, args)

    def schedule_rounded(self, delay: float, fn: Callable[..., Any],
                         *args: Any) -> None:
        """The modulator's policy (§3.3, *Scheduling Granularity*).

        Round to the closest tick; anything under half a tick from now
        runs immediately, so sparse traffic over fast links is
        under-delayed — the artifact the paper's Andrew/Wean results
        exhibit.  Fire-and-forget: the modulation layer never cancels a
        release, so no :class:`Event` handle is created.
        """
        if delay < self.tick_resolution / 2.0:
            self.immediate_callouts += 1
            self.sim.call_later(0.0, self._fire, fn, args)
            return
        self.rounded_callouts += 1
        target = self.nearest_tick_at(self.sim.now + delay)
        target = max(target, self.sim.now)
        self.sim.call_at(target, self._fire, fn, args)

    def _fire(self, fn: Callable[..., Any], args: tuple) -> None:
        self.callouts_fired += 1
        fn(*args)

    # ------------------------------------------------------------------
    # Pseudo-devices
    # ------------------------------------------------------------------
    def register_device(self, device: PseudoDevice) -> None:
        if device.name in self._devices:
            raise ValueError(f"device {device.name} already registered")
        self._devices[device.name] = device

    def device(self, name: str) -> PseudoDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"no pseudo-device {name!r}") from None

    def device_names(self) -> list:
        return sorted(self._devices)
