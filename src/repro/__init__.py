"""Trace-based mobile network emulation.

A from-scratch reproduction of *Trace-Based Mobile Network Emulation*
(Noble, Satyanarayanan, Nguyen, Katz -- SIGCOMM 1997): the collection /
distillation / modulation methodology, the simulated WaveLAN testbed it
is validated on, the paper's three benchmarks, four mobile scenarios,
and the full validation harness that regenerates every table and
figure.

Quick start::

    from repro import (PorterScenario, Distiller, ModulationWorld,
                       collect_trace, install_modulation)

    records = collect_trace(PorterScenario(), seed=0, trial=0)
    replay = Distiller().distill(records).replay
    world = ModulationWorld(seed=1)
    install_modulation(world.laptop, world.laptop_device, replay,
                       world.rngs.stream("mod"), loop=True)
    # run any application on world.laptop against world.server ...

See ``examples/`` for complete programs and ``benchmarks/`` for the
scripts that regenerate the paper's Figures 1-8.
"""

from .analysis import Summary, sigma_distance, within_sigma_sum
from .apps.andrew import AndrewBenchmark, AndrewCpuModel
from .apps.ftp import FtpClient, FtpServer
from .apps.nfs import NfsClient, NfsServer
from .apps.ping import ModifiedPing
from .apps.synrgen import SynRGenUser
from .apps.web import WebBrowser, WebServer
from .core import (
    CircularTraceBuffer,
    CollectionDaemon,
    DistillationResult,
    Distiller,
    ModulationDaemon,
    ModulationLayer,
    PacketTracer,
    QualityTuple,
    ReplayTrace,
    constant_trace,
    impulse_trace,
    install_modulation,
    load_trace,
    measure_modulation_network,
    save_trace,
    step_trace,
    trace_collection_run,
    wavelan_like_trace,
)
from .hosts import Host, LiveWorld, ModulationWorld, SERVER_ADDR, LAPTOP_ADDR
from .scenarios import (
    ALL_SCENARIOS,
    ChatterboxScenario,
    FlagstaffScenario,
    PorterScenario,
    Scenario,
    WeanScenario,
    scenario_by_name,
)
from .sim import RngStreams, Simulator
from .validation import (
    AndrewRunner,
    FtpRunner,
    WebRunner,
    characterize_scenario,
    collect_trace,
    ethernet_baseline,
    figure1_compensation,
    validate_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_SCENARIOS",
    "AndrewBenchmark",
    "AndrewCpuModel",
    "AndrewRunner",
    "ChatterboxScenario",
    "CircularTraceBuffer",
    "CollectionDaemon",
    "DistillationResult",
    "Distiller",
    "FlagstaffScenario",
    "FtpClient",
    "FtpRunner",
    "FtpServer",
    "Host",
    "LAPTOP_ADDR",
    "LiveWorld",
    "ModifiedPing",
    "ModulationDaemon",
    "ModulationLayer",
    "ModulationWorld",
    "NfsClient",
    "NfsServer",
    "PacketTracer",
    "PorterScenario",
    "QualityTuple",
    "ReplayTrace",
    "RngStreams",
    "SERVER_ADDR",
    "Scenario",
    "Simulator",
    "Summary",
    "SynRGenUser",
    "WeanScenario",
    "WebBrowser",
    "WebRunner",
    "WebServer",
    "characterize_scenario",
    "collect_trace",
    "constant_trace",
    "ethernet_baseline",
    "figure1_compensation",
    "impulse_trace",
    "install_modulation",
    "load_trace",
    "measure_modulation_network",
    "save_trace",
    "scenario_by_name",
    "sigma_distance",
    "step_trace",
    "trace_collection_run",
    "validate_scenario",
    "wavelan_like_trace",
    "within_sigma_sum",
]
