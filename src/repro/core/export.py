"""Exporting replay traces to modern emulator formats.

Trace modulation is the direct ancestor of Linux ``netem`` and of
Mahimahi's record-and-replay shells.  These exporters translate a
distilled replay trace into their native configuration so a trace
collected (or synthesized) here can drive a present-day testbed:

* :func:`to_netem_script` — a shell script that steps ``tc qdisc ...
  netem rate/delay/loss`` through the trace's tuples, sleeping ``d``
  seconds between steps;
* :func:`to_mahimahi_trace` — an ``mm-link`` packet-delivery trace:
  one line per delivery opportunity (milliseconds), MTU-sized, at each
  tuple's bottleneck rate;
* :func:`to_mahimahi_commands` — the matching ``mm-delay``/``mm-loss``
  invocation for the trace's average latency and loss.
"""

from __future__ import annotations

import math
from typing import List

from .replay import QualityTuple, ReplayTrace

MTU_BYTES = 1500


def _tuple_netem_args(tup: QualityTuple) -> str:
    """netem arguments for one quality tuple.

    netem's ``rate`` models the bottleneck (Vb); its ``delay`` takes
    the latency plus the residual cost of an MTU-sized packet (netem
    cannot charge per-byte residual costs, so we bound with the MTU).
    """
    rate_kbit = max(1.0, tup.bottleneck_bandwidth_bps() / 1000.0)
    if math.isinf(rate_kbit):
        rate_kbit = 10_000_000.0
    delay_ms = (tup.F + MTU_BYTES * tup.Vr) * 1000.0
    loss_pct = tup.L * 100.0
    args = f"rate {rate_kbit:.0f}kbit delay {delay_ms:.2f}ms"
    if loss_pct > 0.0:
        args += f" loss {loss_pct:.3f}%"
    return args


def to_netem_script(trace: ReplayTrace, dev: str = "eth0",
                    loop: bool = False) -> str:
    """A POSIX shell script stepping netem through the replay trace."""
    lines: List[str] = [
        "#!/bin/sh",
        f"# Generated from replay trace {trace.name!r}: "
        f"{len(trace)} tuples, {trace.duration:.0f}s.",
        "# Requires root and the sch_netem module.",
        f"DEV=\"${{1:-{dev}}}\"",
        "",
        f"tc qdisc add dev \"$DEV\" root netem "
        f"{_tuple_netem_args(trace.tuples[0])}",
        "trap 'tc qdisc del dev \"$DEV\" root; exit 0' INT TERM",
        "",
    ]
    body: List[str] = []
    for i, tup in enumerate(trace.tuples):
        if i > 0:
            body.append(f"tc qdisc change dev \"$DEV\" root netem "
                        f"{_tuple_netem_args(tup)}")
        body.append(f"sleep {tup.d:g}")
    if loop:
        lines.append("while true; do")
        lines.extend("  " + cmd for cmd in body)
        lines.append("  tc qdisc change dev \"$DEV\" root netem "
                     + _tuple_netem_args(trace.tuples[0]))
        lines.append("done")
    else:
        lines.extend(body)
        lines.append("tc qdisc del dev \"$DEV\" root")
    return "\n".join(lines) + "\n"


def to_mahimahi_trace(trace: ReplayTrace, mtu: int = MTU_BYTES) -> str:
    """An ``mm-link`` delivery-opportunity trace.

    Each output line is a millisecond timestamp at which one MTU-sized
    packet may be delivered; the inter-line spacing realizes each
    tuple's bottleneck rate.
    """
    lines: List[str] = []
    now_ms = 0.0
    for tup in trace.tuples:
        end_ms = now_ms + tup.d * 1000.0
        if tup.Vb <= 0:
            # Effectively infinite rate: one opportunity per ms.
            step_ms = 1.0
        else:
            step_ms = mtu * tup.Vb * 1000.0
        t = now_ms
        while t < end_ms:
            lines.append(str(int(round(t)) or 1))
            t += step_ms
        now_ms = end_ms
    # mm-link requires a non-empty, nondecreasing trace.
    if not lines:
        lines = ["1"]
    return "\n".join(lines) + "\n"


def to_mahimahi_commands(trace: ReplayTrace,
                         trace_filename: str = "replay.up") -> str:
    """The mm-delay/mm-loss/mm-link pipeline for this trace's averages."""
    delay_ms = max(0, int(round(trace.mean_latency() * 1000.0)))
    loss = trace.mean_loss()
    cmd = f"mm-delay {delay_ms}"
    if loss > 0.0:
        cmd += f" mm-loss uplink {loss:.4f} mm-loss downlink {loss:.4f}"
    cmd += f" mm-link {trace_filename} {trace_filename}"
    return cmd + "\n"
