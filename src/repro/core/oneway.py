"""One-way distillation and asymmetric modulation (§6 extension).

The paper's conclusion: *"fine-grain, low-drift, synchronized clocks
... would enable us to eliminate our assumption of network symmetry and
hence allow us to use one-way rather than round-trip measurements"* —
the fix for the Flagstaff FTP divergence (§5.3).  This module builds
that extension:

* **Two-ended collection** — packet tracers run on *both* endpoints;
  records are matched by ICMP sequence number, giving one-way delays
  ``t_arrive − t_send`` across the two hosts' clocks.  This is only
  meaningful when those clocks are synchronized and low-drift (the
  laptop's default simulated drift visibly corrupts the estimates; see
  ``tests/test_oneway.py``).

* **Per-direction distillation** — the same modified-ping workload
  yields each direction's parameters independently and *cleanly*:

  - uplink: the small and first large ECHO give ``F_up``/``V_up``
    (one-way analogues of Eqs. 5-6); the two back-to-back large ECHOs
    arrive spaced by exactly ``s2·Vb_up`` (Eq. 8's logic without the
    return-path contention that inflates round-trip estimates);
  - downlink: the small and first large ECHOREPLY give
    ``F_down``/``V_down``; ``Vb_down`` comes from reply-arrival
    spacing when it exceeds the departure spacing (queueing observed),
    otherwise from ``V_down`` less the uplink's residual cost (the
    residual path is the shared wired segment);
  - loss is counted per direction by sequence number — no square
    roots, no symmetry assumption (Eq. 10 reduces to a direct count).

* **Asymmetric modulation** — a modulation layer driven by *two*
  replay traces, one per direction, over the same unified bottleneck
  horizon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hosts.host import Host
from ..net.device import NetworkDevice
from ..net.packet import Packet
from .distill import ICMP_ECHO, ICMP_ECHOREPLY
from .modulator import ModulationDaemon, ModulationLayer, ReplayFeedDevice
from .replay import QualityTuple, ReplayTrace
from .traceformat import DIR_IN, DIR_OUT, PacketRecord


@dataclass
class OneWayEstimate:
    """Per-direction instantaneous parameters from one packet group."""

    time: float
    F: float
    Vb: float
    Vr: float


@dataclass
class AsymmetricDistillationResult:
    """Two replay traces — uplink (outbound) and downlink (inbound)."""

    up: ReplayTrace
    down: ReplayTrace
    groups_used: int
    groups_skipped: int
    up_estimates: List[OneWayEstimate] = field(default_factory=list)
    down_estimates: List[OneWayEstimate] = field(default_factory=list)

    def asymmetry_ratio(self) -> float:
        """Mean uplink loss over mean downlink loss (inf if down is 0)."""
        down = self.down.mean_loss()
        if down == 0.0:
            return math.inf if self.up.mean_loss() > 0 else 1.0
        return self.up.mean_loss() / down


class OneWayDistiller:
    """Distills matched two-ended records into per-direction traces."""

    def __init__(self, window_width: float = 5.0, step: float = 1.0,
                 ident: Optional[int] = None):
        if window_width <= 0 or step <= 0:
            raise ValueError("window width and step must be positive")
        self.window_width = window_width
        self.step = step
        self.ident = ident

    # ------------------------------------------------------------------
    def distill(self, mobile_records: Sequence, remote_records: Sequence,
                name: str = "") -> AsymmetricDistillationResult:
        """``mobile_records`` from the laptop, ``remote_records`` from
        the server; timestamps must come from synchronized clocks."""
        m_out, m_in = self._icmp_by_direction(mobile_records)
        r_out, r_in = self._icmp_by_direction(remote_records)
        if not m_out:
            raise ValueError("mobile trace contains no outgoing echoes")

        t0 = min(rec.timestamp for rec in m_out)
        sizes = sorted({rec.size for rec in m_out})
        if len(sizes) < 2:
            raise ValueError("ping workload needs two packet sizes")
        s1, s2 = sizes[0], sizes[-1]

        echo_sent = {rec.seq: rec for rec in m_out
                     if rec.icmp_type == ICMP_ECHO}
        echo_arrived = {rec.seq: rec for rec in r_in
                        if rec.icmp_type == ICMP_ECHO}
        reply_sent = {rec.seq: rec for rec in r_out
                      if rec.icmp_type == ICMP_ECHOREPLY}
        reply_arrived = {rec.seq: rec for rec in m_in
                         if rec.icmp_type == ICMP_ECHOREPLY}

        up_est, down_est, used, skipped = self._estimate_groups(
            echo_sent, echo_arrived, reply_sent, reply_arrived, s1, s2, t0)
        if not up_est or not down_est:
            raise ValueError("no usable packet groups; cannot distill")

        duration = max(rec.timestamp for rec in m_out) - t0
        up = self._window(up_est, echo_sent, echo_arrived, t0, duration)
        down = self._window(down_est, reply_sent, reply_arrived, t0, duration)
        return AsymmetricDistillationResult(
            up=ReplayTrace(up, name=f"{name}-up"),
            down=ReplayTrace(down, name=f"{name}-down"),
            groups_used=used, groups_skipped=skipped,
            up_estimates=up_est, down_estimates=down_est)

    # ------------------------------------------------------------------
    def _icmp_by_direction(self, records: Sequence
                           ) -> Tuple[List[PacketRecord], List[PacketRecord]]:
        out, inc = [], []
        for rec in records:
            if not isinstance(rec, PacketRecord) or rec.icmp_type < 0:
                continue
            if self.ident is not None and rec.ident != self.ident:
                continue
            (out if rec.direction == DIR_OUT else inc).append(rec)
        return out, inc

    # ------------------------------------------------------------------
    def _estimate_groups(self, echo_sent, echo_arrived, reply_sent,
                         reply_arrived, s1, s2, t0):
        groups = sorted({seq // 3 for seq in echo_sent})
        up_est: List[OneWayEstimate] = []
        down_est: List[OneWayEstimate] = []
        used = skipped = 0
        for g in groups:
            seqs = (3 * g, 3 * g + 1, 3 * g + 2)
            if not all(seq in echo_sent and seq in echo_arrived
                       and seq in reply_sent and seq in reply_arrived
                       for seq in seqs):
                skipped += 1
                continue
            when = echo_sent[seqs[0]].timestamp - t0
            up = self._solve_uplink(
                send=[echo_sent[s].timestamp for s in seqs],
                arrive=[echo_arrived[s].timestamp for s in seqs],
                s1=s1, s2=s2, when=when)
            down = None
            if up is not None:
                down = self._solve_downlink(
                    send=[reply_sent[s].timestamp for s in seqs],
                    arrive=[reply_arrived[s].timestamp for s in seqs],
                    s1=s1, s2=s2, when=when, peer_residual=up.Vr)
            if up is None or down is None:
                skipped += 1
                continue
            up_est.append(up)
            down_est.append(down)
            used += 1
        return up_est, down_est, used, skipped

    def _solve_uplink(self, send: List[float], arrive: List[float],
                      s1: int, s2: int,
                      when: float) -> Optional[OneWayEstimate]:
        """Uplink: both the small and the first large probe travel an
        idle channel, so the size/delay slope gives V cleanly; the
        back-to-back pair's arrival spacing gives Vb (the one-way
        analogue of Eq. 8, minus the return-path contention)."""
        d1 = arrive[0] - send[0]
        d2 = arrive[1] - send[1]
        if d1 <= 0 or d2 <= 0:
            return None                   # clock skew artifact
        V = (d2 - d1) / (s2 - s1)
        F = d1 - s1 * V
        arr_spacing = arrive[2] - arrive[1]
        if arr_spacing <= 0:
            return None
        Vb = arr_spacing / s2
        # The spacing-derived bottleneck cost includes per-frame jitter
        # the slope-derived V may not: a slightly negative residual is
        # measurement noise, not an inconsistent group.
        Vr = max(0.0, V - Vb)
        if F < -1e-9 * max(abs(V), 1.0) or Vb <= 0.0:
            return None
        return OneWayEstimate(time=when, F=max(0.0, F), Vb=Vb, Vr=Vr)

    def _solve_downlink(self, send: List[float], arrive: List[float],
                        s1: int, s2: int, when: float,
                        peer_residual: float) -> Optional[OneWayEstimate]:
        """Downlink: the large replies contend with the still-arriving
        uplink probes on the half-duplex medium, so their size/delay
        slope is contaminated.  Only two clean observables remain: the
        small reply's one-way delay (nothing else was in flight) and
        the large replies' inter-arrival spacing, which equals
        max(departure spacing, s2*Vb_down) and therefore bounds —
        and, on any channel no faster downstream than up, equals —
        the bottleneck cost.  The residual cost is the shared wired
        segment, taken from the uplink estimate."""
        d1 = arrive[0] - send[0]
        if d1 <= 0:
            return None
        arr_spacing = arrive[2] - arrive[1]
        if arr_spacing <= 0:
            return None
        Vb = arr_spacing / s2
        Vr = max(0.0, peer_residual)
        V = Vb + Vr
        F = d1 - s1 * V
        if F < -1e-9:
            F = 0.0
        return OneWayEstimate(time=when, F=max(0.0, F), Vb=Vb, Vr=Vr)

    # ------------------------------------------------------------------
    def _window(self, estimates: List[OneWayEstimate],
                sent: Dict[int, PacketRecord],
                arrived: Dict[int, PacketRecord],
                t0: float, duration: float) -> List[QualityTuple]:
        sent_times = sorted((rec.timestamp - t0, seq)
                            for seq, rec in sent.items())
        arrived_seqs = set(arrived)
        tuples: List[QualityTuple] = []
        prev: Optional[QualityTuple] = None
        steps = max(1, int(math.ceil(duration / self.step)))
        for k in range(steps):
            center = (k + 0.5) * self.step
            w_lo = center - self.window_width / 2.0
            w_hi = center + self.window_width / 2.0
            in_window = [e for e in estimates if w_lo <= e.time < w_hi]
            if in_window:
                n = len(in_window)
                F = sum(e.F for e in in_window) / n
                Vb = sum(e.Vb for e in in_window) / n
                Vr = sum(e.Vr for e in in_window) / n
            elif prev is not None:
                F, Vb, Vr = prev.F, prev.Vb, prev.Vr
            else:
                first = estimates[0]
                F, Vb, Vr = first.F, first.Vb, first.Vr
            window_seqs = [seq for t, seq in sent_times if w_lo <= t < w_hi]
            if window_seqs:
                lost = sum(1 for seq in window_seqs
                           if seq not in arrived_seqs)
                L = lost / len(window_seqs)   # direct one-way count
            else:
                L = prev.L if prev is not None else 0.0
            tup = QualityTuple(d=self.step, F=max(0.0, F), Vb=max(0.0, Vb),
                               Vr=max(0.0, Vr), L=min(1.0, max(0.0, L)))
            tuples.append(tup)
            prev = tup
        return tuples


# ======================================================================
# Asymmetric modulation
# ======================================================================
class AsymmetricModulationLayer(ModulationLayer):
    """A modulation layer driven by separate up/down replay traces.

    The bottleneck horizon stays unified (the emulated medium is still
    half-duplex); only the parameters differ per direction.  The
    inbound wire-cost/compensation handling is inherited.
    """

    def __init__(self, host: Host, device: NetworkDevice,
                 feed_up: ReplayFeedDevice, feed_down: ReplayFeedDevice,
                 rng, compensation_vb: float = 0.0,
                 inbound_wire_vb: Optional[float] = None):
        super().__init__(host, device, feed_up, rng,
                         compensation_vb=compensation_vb,
                         inbound_wire_vb=inbound_wire_vb)
        self.feed_down = feed_down
        self._current_down: Optional[QualityTuple] = None
        self._expires_down = 0.0

    def _down_tuple(self) -> Optional[QualityTuple]:
        now = self.sim.now
        if self._current_down is None:
            tup = self.feed_down.next_tuple()
            if tup is None:
                return None
            self._current_down = tup
            self._expires_down = now + tup.d
            return tup
        while now >= self._expires_down:
            tup = self.feed_down.next_tuple()
            if tup is None:
                self._expires_down = now + self._current_down.d
                break
            self._current_down = tup
            self._expires_down += tup.d
        return self._current_down

    def _modulate(self, packet: Packet, forward: Callable[[Packet], None],
                  inbound: bool) -> bool:
        tup = self._down_tuple() if inbound else self._current_tuple()
        if tup is None:
            forward(packet)
            return False
        now = self.sim.now
        size = packet.ip_size
        vb = tup.Vb
        if inbound:
            vb = max(0.0, vb + self.inbound_wire_vb - self.compensation_vb)
        start = max(now, self._bottleneck_free)
        depart = start + size * vb
        self._bottleneck_free = depart
        if self.rng.random() < tup.L:
            return True
        deliver_at = depart + tup.F + size * tup.Vr
        delay = deliver_at - now
        self.delay_sum += delay
        if delay < self.host.kernel.tick_resolution / 2.0:
            self.sent_immediately += 1
        self.host.kernel.schedule_rounded(delay, forward, packet)
        return False


def install_asymmetric_modulation(host: Host, device: NetworkDevice,
                                  up: ReplayTrace, down: ReplayTrace,
                                  rng, compensation_vb: float = 0.0,
                                  loop: bool = False,
                                  buffer_capacity: int = 64
                                  ) -> AsymmetricModulationLayer:
    """Wire up two feed devices + daemons + the asymmetric layer."""
    feed_up = ReplayFeedDevice(host, capacity=buffer_capacity, name="modup0")
    feed_down = ReplayFeedDevice(host, capacity=buffer_capacity,
                                 name="moddn0")
    host.kernel.register_device(feed_up)
    host.kernel.register_device(feed_down)
    feed_up.open()
    feed_down.open()
    layer = AsymmetricModulationLayer(host, device, feed_up, feed_down, rng,
                                      compensation_vb=compensation_vb)
    layer.install()
    for feed, trace in ((feed_up, up), (feed_down, down)):
        daemon = ModulationDaemon(host, trace, device_name=feed.name,
                                  loop=loop)
        host.spawn(daemon.loop(), name=f"mod-daemon-{feed.name}")
    return layer
