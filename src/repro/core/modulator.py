"""The modulation phase: enforcing a replay trace on live traffic (§3.3).

Two components, exactly as in the paper:

* a **user-level daemon** (:class:`ModulationDaemon`) that feeds network
  quality tuples through a pseudo-device backed by a fixed-size
  in-kernel buffer, blocking when the buffer is full, optionally
  looping over the trace until interrupted;
* an **in-kernel modulation layer** (:class:`ModulationLayer`) spliced
  between IP and the link device, which delays and drops *all* inbound
  and outbound packets according to the current tuple.

Faithfulness notes
------------------
* **Unified delay queue.**  Inbound and outbound packets share a single
  bottleneck horizon, so they interfere with one another just as they
  would on a real half-duplex wireless link.
* **Drop after bottleneck.**  A dropped packet still occupies the
  bottleneck for its serialization time before being discarded.
* **Scheduling granularity.**  Releases are scheduled on the host
  kernel's clock-tick grid (10 ms by default); packets whose computed
  delay is under half a tick are sent immediately.  This reproduces the
  paper's under-delay artifact for short, sparse messages (§5.4).
* **Endpoint placement asymmetry + delay compensation.**  An endpoint
  delay queue cannot overlap the modulating LAN's serialization of an
  inbound packet with the bottleneck service of its predecessor: by the
  time the packet reaches the queue, the wire time has already been
  paid serially.  Outbound packets overlap these costs naturally (the
  NIC transmits one packet while the queue services the next).  Inbound
  packets therefore pay the LAN's per-byte cost *in addition to* the
  emulated bottleneck — exactly the asymmetry Figure 1 shows — and
  delay compensation subtracts the measured long-term ``Vb`` of the
  modulating network from inbound packets to cancel it.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..hosts.host import Host
from ..hosts.kernel import PseudoDevice
from ..net.device import NetworkDevice
from ..net.packet import Packet
from ..sim import Signal, Timeout
from .replay import QualityTuple, ReplayTrace


class ReplayFeedDevice(PseudoDevice):
    """/dev/modulate: a bounded in-kernel buffer of quality tuples."""

    def __init__(self, host: Host, capacity: int = 64, name: str = "mod0"):
        super().__init__(name)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._tuples: List[QualityTuple] = []
        self.space_signal = Signal(host.sim, f"{name}.space")
        self.tuples_written = 0
        self.tuples_consumed = 0
        self.underruns = 0

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._tuples)

    def write(self, records: List[QualityTuple]) -> int:
        """Accept as many tuples as fit; returns the count accepted."""
        if not self.is_open:
            raise RuntimeError(f"{self.name}: not open")
        accepted = records[: self.free_slots]
        self._tuples.extend(accepted)
        self.tuples_written += len(accepted)
        return len(accepted)

    def read(self, max_records: int = 0) -> List[QualityTuple]:
        limit = max_records if max_records > 0 else len(self._tuples)
        out = self._tuples[:limit]
        del self._tuples[:limit]
        return out

    def next_tuple(self) -> Optional[QualityTuple]:
        """Kernel side: consume the next tuple (None if starved)."""
        if not self._tuples:
            self.underruns += 1
            return None
        tup = self._tuples.pop(0)
        self.tuples_consumed += 1
        self.space_signal.fire()
        return tup


class ModulationDaemon:
    """Feeds a replay trace into the kernel buffer, blocking when full."""

    def __init__(self, host: Host, trace: ReplayTrace,
                 device_name: str = "mod0", loop: bool = False,
                 batch: int = 16):
        self.host = host
        self.trace = trace
        self.device_name = device_name
        self.loop_forever = loop
        self.batch = batch
        self._stop = False
        self.passes_completed = 0

    def loop(self) -> Generator[Any, Any, None]:
        device = self.host.kernel.device(self.device_name)
        if not device.is_open:
            device.open()
        while not self._stop:
            index = 0
            tuples = self.trace.tuples
            while index < len(tuples) and not self._stop:
                chunk = tuples[index:index + self.batch]
                written = device.write(chunk)
                index += written
                if written < len(chunk):
                    yield device.space_signal  # buffer full: block
            self.passes_completed += 1
            if not self.loop_forever:
                break
        # Leave the device open: the kernel keeps draining what remains.

    def stop(self) -> None:
        self._stop = True


class ModulationLayer:
    """Delays and drops packets according to the current quality tuple."""

    def __init__(self, host: Host, device: NetworkDevice,
                 feed: ReplayFeedDevice, rng,
                 compensation_vb: float = 0.0,
                 inbound_wire_vb: Optional[float] = None):
        self.host = host
        self.sim = host.sim
        self.device = device
        self.feed = feed
        self.rng = rng
        self.compensation_vb = compensation_vb
        if inbound_wire_vb is None:
            inbound_wire_vb = self._wire_cost_of(device)
        self.inbound_wire_vb = inbound_wire_vb
        self._current: Optional[QualityTuple] = None
        self._expires = 0.0
        self._bottleneck_free = 0.0
        self._installed = False
        # repro.obs hooks; None keeps modulation on the fast path.
        self.tracer = None
        self.audit = None
        self.out_packets = 0
        self.in_packets = 0
        self.out_dropped = 0
        self.in_dropped = 0
        self.sent_immediately = 0
        self.delay_sum = 0.0

    @staticmethod
    def _wire_cost_of(device: NetworkDevice) -> float:
        """Per-byte serialization cost of the device's medium, if known."""
        segment = getattr(device, "segment", None)
        if segment is not None and hasattr(segment, "per_byte_cost"):
            return segment.per_byte_cost()
        link = getattr(device, "link", None)
        if link is not None and getattr(link, "bandwidth_bps", 0):
            return 8.0 / link.bandwidth_bps
        return 0.0

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Splice into the host stack between IP and the link device."""
        if self._installed:
            raise RuntimeError("modulation layer already installed")
        self.host.ip.outbound_filter = self._outbound
        self.host.ip.inbound_filter = self._inbound
        self._installed = True

    def uninstall(self) -> None:
        """Remove the filters, restoring an unmodulated stack."""
        if self._installed:
            self.host.ip.outbound_filter = None
            self.host.ip.inbound_filter = None
            self._installed = False

    # ------------------------------------------------------------------
    def _current_tuple(self) -> Optional[QualityTuple]:
        now = self.sim.now
        if self._current is None:
            tup = self.feed.next_tuple()
            if tup is None:
                return None
            self._current = tup
            self._expires = now + tup.d
            return tup
        while now >= self._expires:
            tup = self.feed.next_tuple()
            if tup is None:
                # Starved: hold the last tuple (the daemon either
                # finished a single pass or has fallen behind).
                self._expires = now + self._current.d
                break
            self._current = tup
            self._expires += tup.d
        return self._current

    # ------------------------------------------------------------------
    def _outbound(self, packet: Packet, device: NetworkDevice,
                  forward: Callable[[Packet], None]) -> None:
        self.out_packets += 1
        dropped = self._modulate(packet, forward, inbound=False)
        if dropped:
            self.out_dropped += 1

    def _inbound(self, packet: Packet,
                 deliver: Callable[[Packet], None]) -> None:
        self.in_packets += 1
        dropped = self._modulate(packet, deliver, inbound=True)
        if dropped:
            self.in_dropped += 1

    def _modulate(self, packet: Packet, forward: Callable[[Packet], None],
                  inbound: bool) -> bool:
        """Apply the model to one packet; returns True if dropped."""
        tup = self._current_tuple()
        if tup is None:
            if self.audit is not None:
                self.audit.observe_passthrough()
            if self.tracer is not None:
                self.tracer.event("mod", "passthrough", packet,
                                  inbound=inbound)
            forward(packet)  # no tuples yet: pass through unmodulated
            return False
        now = self.sim.now
        size = packet.ip_size
        vb = tup.Vb
        if inbound:
            # The wire's serialization of this packet finished before it
            # reached the delay queue, so it cannot overlap the emulated
            # bottleneck: the packet pays the LAN cost again here unless
            # compensation cancels it (Figure 1).
            vb = max(0.0, vb + self.inbound_wire_vb - self.compensation_vb)
        start = max(now, self._bottleneck_free)
        depart = start + size * vb
        self._bottleneck_free = depart
        # Losses strike only after the bottleneck has been traversed.
        if self.rng.random() < tup.L:
            if self.audit is not None:
                self.audit.observe(tup, size,
                                   depart + tup.F + size * tup.Vr - now,
                                   0.0, True)
            if self.tracer is not None:
                self.tracer.drop("mod", packet, "modulation_loss",
                                 inbound=inbound)
            return True
        deliver_at = depart + tup.F + size * tup.Vr
        delay = deliver_at - now
        self.delay_sum += delay
        kernel = self.host.kernel
        if delay < kernel.tick_resolution / 2.0:
            self.sent_immediately += 1
        if self.audit is not None or self.tracer is not None:
            # The delay the tick-quantized kernel will actually apply:
            # schedule_rounded sends sub-half-tick releases immediately
            # and rounds everything else to the nearest tick (clamped to
            # now).  Computed only when instrumented — the scheduling
            # call below stays byte-for-byte identical either way.
            if delay < kernel.tick_resolution / 2.0:
                applied = 0.0
            else:
                applied = max(kernel.nearest_tick_at(now + delay), now) - now
            if self.audit is not None:
                self.audit.observe(tup, size, delay, applied, False)
            if self.tracer is not None:
                self.tracer.event("mod", "delay", packet, inbound=inbound,
                                  intended=delay, applied=applied)
        kernel.schedule_rounded(delay, forward, packet)
        return False


def install_modulation(host: Host, device: NetworkDevice, trace: ReplayTrace,
                       rng, compensation_vb: float = 0.0,
                       loop: bool = False, buffer_capacity: int = 64,
                       inbound_wire_vb: Optional[float] = None
                       ) -> ModulationLayer:
    """Wire up feed device + daemon + modulation layer on ``host``.

    Returns the installed :class:`ModulationLayer`; the daemon process
    is already running.
    """
    feed = ReplayFeedDevice(host, capacity=buffer_capacity)
    host.kernel.register_device(feed)
    feed.open()
    layer = ModulationLayer(host, device, feed, rng,
                            compensation_vb=compensation_vb,
                            inbound_wire_vb=inbound_wire_vb)
    layer.install()
    daemon = ModulationDaemon(host, trace, device_name=feed.name, loop=loop)
    host.spawn(daemon.loop(), name="modulation-daemon")
    return layer
