"""A Delayline-style user-level emulation wrapper (§2.3 contrast).

The paper positions trace modulation against user-level emulation
libraries (Delayline, RPC2's ``slow``): *"such libraries have two
shortcomings: they require recompilation or relinking of applications,
and they only influence traffic to or from the applications in
question."*

This module implements exactly such a library — a wrapper around one
UDP socket that delays and drops that socket's datagrams according to a
replay trace — so the shortcoming can be demonstrated quantitatively
(see ``tests/test_delayline.py`` and the transparency ablation): the
wrapped application sees the emulated network while every other flow
on the same host still sees the raw LAN.  The kernel modulation layer,
by contrast, covers *all* traffic with zero application changes.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from ..protocols.udp import UdpSocket
from ..sim import Signal
from .replay import QualityTuple, ReplayTrace


class DelaylineSocket:
    """A UDP socket relinked against the emulation library.

    Outbound datagrams are held for the model's one-way delay before
    really being sent; inbound datagrams are held after arrival.  Drops
    are applied per direction.  Only traffic through *this* socket is
    affected — that is the point being demonstrated.
    """

    def __init__(self, sock: UdpSocket, trace: ReplayTrace, rng,
                 loop: bool = True):
        self._sock = sock
        self.trace = trace
        self.rng = rng
        self.loop = loop
        self._sim = sock.proto.sim
        self._t0: Optional[float] = None
        self._inbox = []
        self._inbox_signal = Signal(self._sim, "delayline.inbox")
        self._sim.call_later(0.0, self._pump_start)
        self.delayed_out = 0
        self.delayed_in = 0
        self.dropped_out = 0
        self.dropped_in = 0

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._sock.port

    @property
    def address(self) -> str:
        return self._sock.address

    def _tuple_now(self) -> QualityTuple:
        if self._t0 is None:
            self._t0 = self._sim.now
        return self.trace.tuple_at(self._sim.now - self._t0, loop=self.loop)

    def _delay_for(self, nbytes: int) -> float:
        tup = self._tuple_now()
        return tup.one_way_delay(nbytes)

    def _dropped(self) -> bool:
        return self.rng.random() < self._tuple_now().L

    # ------------------------------------------------------------------
    def send_to(self, dst_addr: str, dst_port: int, payload: Any = None,
                payload_bytes: int = 0) -> None:
        if self._dropped():
            self.dropped_out += 1
            return
        self.delayed_out += 1
        self._sim.call_later(self._delay_for(payload_bytes),
                             self._sock.send_to, dst_addr, dst_port,
                             payload, payload_bytes)

    def recv(self) -> Generator[Any, Any, Tuple[str, int, Any, int]]:
        while not self._inbox:
            yield self._inbox_signal
        return self._inbox.pop(0)

    def close(self) -> None:
        self._sock.close()

    # ------------------------------------------------------------------
    def _pump_start(self) -> None:
        from ..sim import spawn

        spawn(self._sim, self._pump(), name="delayline-pump")

    def _pump(self):
        """Drain the real socket, re-queueing datagrams after delay."""
        while not self._sock.closed:
            datagram = yield from self._sock.recv()
            if self._dropped():
                self.dropped_in += 1
                continue
            self.delayed_in += 1
            self._sim.call_later(self._delay_for(datagram[3]),
                                 self._deliver, datagram)

    def _deliver(self, datagram) -> None:
        self._inbox.append(datagram)
        self._inbox_signal.fire()


def wrap_rpc_client(rpc_client, trace: ReplayTrace, rng,
                    loop: bool = True) -> DelaylineSocket:
    """Relink an :class:`repro.protocols.rpc.RpcClient` against the
    emulation library by swapping its socket — the "recompilation"
    the paper speaks of, done monkeypatch-style."""
    wrapped = DelaylineSocket(rpc_client.sock, trace, rng, loop=loop)
    rpc_client.sock = wrapped
    return wrapped
