"""Trace distillation: collected trace → replay trace (§3.2.2).

The distiller consumes the packet records produced by trace collection
and emits a :class:`~repro.core.replay.ReplayTrace`.  It follows the
paper's algorithm exactly:

1. **Group** the ping workload's packets: each second the workload is
   one small ECHO of size ``s1`` followed, after its reply, by two
   back-to-back large ECHOs of size ``s2`` (sequence numbers ``3g``,
   ``3g+1``, ``3g+2`` within group ``g``).

2. **Solve** for the model parameters from the three round-trip times
   (Eqs. 5–8)::

       t1 = 2 (F + s1 V)
       t2 = 2 (F + s2 V)          =>  V  = (t2 - t1) / (2 (s2 - s1))
                                      F  = t1/2 - s1 V
       t3 = t2 + s2 Vb            =>  Vb = (t3 - t2) / s2
                                      Vr = V - Vb

3. **Correct** groups that solve to negative parameters — the packets
   saw different network conditions.  Reuse the previous estimate's
   ``Vb``/``Vr``, attribute the entire deviation of ``t1`` from its
   expected value to ``F`` (media-access delay), and never let a
   corrected estimate seed further corrections (no cascading).

4. **Slide a window** (default 5 s wide, stepping 1 s) over the
   estimates, averaging within the window to produce one delay tuple
   per step.

5. **Estimate loss** per window from sequence numbers: between the last
   reply before the window and the first after it, ``a`` ECHOs were
   sent and ``b`` ECHOREPLYs arrived, so with per-packet survival
   probability ``P``, ``b = P²a`` and ``L = 1 − sqrt(b/a)`` (Eq. 10).

All timing uses round trips timed by a single host clock; the derived
one-way parameters therefore embed the paper's **symmetry assumption**,
which the validation deliberately stresses (§5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

try:  # Vectorized window selection; the scalar path needs nothing extra.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from .replay import QualityTuple, ReplayTrace
from .traceformat import (
    DIR_IN,
    DIR_OUT,
    DeviceStatusRecord,
    PacketRecord,
    TraceRecord,
)

ICMP_ECHO = 8
ICMP_ECHOREPLY = 0


@dataclass
class ParameterEstimate:
    """One instantaneous (F, Vb, Vr) estimate from a packet group."""

    time: float        # trace-relative time of the estimate
    F: float
    Vb: float
    Vr: float
    corrected: bool    # produced by the negative-parameter correction

    @property
    def V(self) -> float:
        return self.Vb + self.Vr


@dataclass
class DistillationResult:
    """Replay trace plus the diagnostics the scenario figures plot."""

    replay: ReplayTrace
    estimates: List[ParameterEstimate]
    groups_total: int
    groups_used: int
    groups_corrected: int
    groups_skipped: int
    echoes_sent: int
    replies_received: int
    status_records: List[DeviceStatusRecord] = field(default_factory=list)

    @property
    def overall_loss_estimate(self) -> float:
        if self.echoes_sent == 0:
            return 0.0
        ratio = min(1.0, self.replies_received / self.echoes_sent)
        return 1.0 - math.sqrt(ratio)


class Distiller:
    """Transforms a collected trace into a replay trace."""

    def __init__(self, window_width: float = 5.0, step: float = 1.0,
                 ident: Optional[int] = None):
        if window_width <= 0 or step <= 0:
            raise ValueError("window width and step must be positive")
        self.window_width = window_width
        self.step = step
        self.ident = ident

    def cache_token(self) -> Dict[str, Union[str, float, int, None]]:
        """Deterministic identity for pipeline fingerprints."""
        return {"distiller": type(self).__qualname__,
                "window_width": self.window_width, "step": self.step,
                "ident": self.ident}

    # ------------------------------------------------------------------
    def distill(self, records: Sequence[Union[TraceRecord, dict]],
                name: str = "") -> DistillationResult:
        """Produce a replay trace (plus diagnostics) from trace records."""
        packets, statuses = self._split(records)
        if not packets:
            raise ValueError("trace contains no ping packets to distill")
        t0 = min(p.timestamp for p in packets)

        echo_out = [p for p in packets
                    if p.direction == DIR_OUT and p.icmp_type == ICMP_ECHO]
        replies = [p for p in packets
                   if p.direction == DIR_IN and p.icmp_type == ICMP_ECHOREPLY]
        sizes = sorted({p.size for p in echo_out})
        if len(sizes) < 2:
            raise ValueError(
                "ping workload needs two packet sizes; "
                f"saw {sizes} — was the modified ping used?")
        s1, s2 = sizes[0], sizes[-1]

        estimates = self._estimate_groups(replies, s1, s2, t0)
        duration = max(p.timestamp for p in packets) - t0
        tuples = self._window(estimates, echo_out, replies, t0, duration)
        replay = ReplayTrace(tuples, name=name)
        return DistillationResult(
            replay=replay,
            estimates=estimates,
            groups_total=self._groups_total,
            groups_used=self._groups_used,
            groups_corrected=self._groups_corrected,
            groups_skipped=self._groups_skipped,
            echoes_sent=len(echo_out),
            replies_received=len(replies),
            status_records=statuses,
        )

    # ------------------------------------------------------------------
    def _split(self, records: Sequence[Union[TraceRecord, dict]]
               ) -> Tuple[List[PacketRecord], List[DeviceStatusRecord]]:
        packets: List[PacketRecord] = []
        statuses: List[DeviceStatusRecord] = []
        for rec in records:
            if isinstance(rec, PacketRecord) and rec.icmp_type >= 0:
                if self.ident is not None and rec.ident != self.ident:
                    continue
                packets.append(rec)
            elif isinstance(rec, DeviceStatusRecord):
                statuses.append(rec)
        return packets, statuses

    # ------------------------------------------------------------------
    def _estimate_groups(self, replies: List[PacketRecord], s1: int, s2: int,
                         t0: float) -> List[ParameterEstimate]:
        rtt_by_seq: Dict[int, PacketRecord] = {}
        for rec in replies:
            if rec.rtt >= 0:
                rtt_by_seq.setdefault(rec.seq, rec)

        groups = sorted({seq // 3 for seq in rtt_by_seq})
        estimates: List[ParameterEstimate] = []
        last_good: Optional[ParameterEstimate] = None
        self._groups_total = len(groups)
        self._groups_used = 0
        self._groups_corrected = 0
        self._groups_skipped = 0

        for g in groups:
            recs = [rtt_by_seq.get(3 * g + i) for i in range(3)]
            if any(r is None for r in recs):
                self._groups_skipped += 1
                continue
            t1, t2, t3 = (r.rtt for r in recs)
            when = recs[0].timestamp - t0
            est = self._solve(t1, t2, t3, s1, s2, when, last_good)
            if est is None:
                self._groups_skipped += 1
                continue
            estimates.append(est)
            self._groups_used += 1
            if est.corrected:
                self._groups_corrected += 1
            else:
                # Only genuine solutions seed future corrections — the
                # corrective factor must not cascade (§3.2.2).
                last_good = est
        return estimates

    def _solve(self, t1: float, t2: float, t3: float, s1: int, s2: int,
               when: float, last_good: Optional[ParameterEstimate]
               ) -> Optional[ParameterEstimate]:
        V = (t2 - t1) / (2.0 * (s2 - s1))
        F = t1 / 2.0 - s1 * V
        Vb = (t3 - t2) / s2
        Vr = V - Vb
        # Tolerate floating-point dust around zero: a genuinely zero
        # residual cost must not be misread as an inconsistent group.
        tol = 1e-9 * max(abs(V), abs(Vb), 1e-12)
        if F >= -tol and Vb > 0.0 and Vr >= -tol:
            return ParameterEstimate(time=when, F=max(0.0, F), Vb=Vb,
                                     Vr=max(0.0, Vr), corrected=False)
        # The packets saw different conditions: fall back to the previous
        # genuine estimate, pushing the deviation into latency.
        if last_good is None:
            return None
        expected_t1 = 2.0 * (last_good.F + s1 * last_good.V)
        F_corr = max(0.0, last_good.F + (t1 - expected_t1) / 2.0)
        return ParameterEstimate(time=when, F=F_corr, Vb=last_good.Vb,
                                 Vr=last_good.Vr, corrected=True)

    # ------------------------------------------------------------------
    def _window(self, estimates: List[ParameterEstimate],
                echo_out: List[PacketRecord], replies: List[PacketRecord],
                t0: float, duration: float) -> List[QualityTuple]:
        """Sliding-window averaging (step 4) plus per-window loss (step 5).

        The selection math — which estimates fall in each window, which
        replies bound each loss span, how many echoes in the span were
        answered — is vectorized: one ``searchsorted`` per bound over
        pre-sorted arrays and an integer prefix sum over the answered
        flags, all exact index arithmetic.  The floating-point work
        (averaging F/Vb/Vr, Eq. 10) stays in plain Python over the
        selected slices, in the same order with the same operations as
        the scalar path, so both paths produce byte-identical tuples.
        """
        if _np is None:
            return self._window_scalar(estimates, echo_out, replies,
                                       t0, duration)
        if not estimates:
            raise ValueError("no usable packet groups; cannot distill")
        est_times = _np.array([e.time for e in estimates],
                              dtype=_np.float64)
        if est_times.size > 1 and bool((_np.diff(est_times) < 0.0).any()):
            # Group estimates arrive time-sorted; fall back rather than
            # assume if a caller hands us something else.
            return self._window_scalar(estimates, echo_out, replies,
                                       t0, duration)
        echoes = sorted((p.timestamp - t0, p.seq) for p in echo_out)
        answered = {p.seq for p in replies}
        echo_times = _np.array([t for t, _ in echoes], dtype=_np.float64)
        reply_times = _np.array(sorted(p.timestamp - t0 for p in replies),
                                dtype=_np.float64)
        answered_cum = _np.zeros(len(echoes) + 1, dtype=_np.int64)
        if echoes:
            _np.cumsum([1 if seq in answered else 0 for _, seq in echoes],
                       out=answered_cum[1:])

        steps = max(1, int(math.ceil(duration / self.step)))
        ks = _np.arange(steps, dtype=_np.float64)
        los = ks * self.step
        his = los + self.step
        centers = (los + his) / 2.0
        w_los = centers - self.window_width / 2.0
        w_his = centers + self.window_width / 2.0
        est_lo = _np.searchsorted(est_times, w_los, side="left")
        est_hi = _np.searchsorted(est_times, w_his, side="left")
        # Loss spans: from the last reply before the window to the first
        # after it (edges themselves when no such reply exists).
        if reply_times.size:
            r_lo = _np.searchsorted(reply_times, w_los, side="left")
            r_hi = _np.searchsorted(reply_times, w_his, side="right")
            span_los = _np.where(r_lo > 0,
                                 reply_times[_np.maximum(r_lo - 1, 0)],
                                 w_los)
            span_his = _np.where(r_hi < reply_times.size,
                                 reply_times[_np.minimum(r_hi,
                                                         reply_times.size - 1)],
                                 w_his)
        else:
            span_los = w_los
            span_his = w_his
        echo_lo = _np.searchsorted(echo_times, span_los, side="left")
        echo_hi = _np.searchsorted(echo_times, span_his, side="right")

        tuples: List[QualityTuple] = []
        prev: Optional[QualityTuple] = None
        for k in range(steps):
            i_lo = est_lo[k]
            i_hi = est_hi[k]
            if i_hi > i_lo:
                seg = estimates[i_lo:i_hi]
                n = i_hi - i_lo
                F = sum(e.F for e in seg) / n
                Vb = sum(e.Vb for e in seg) / n
                Vr = sum(e.Vr for e in seg) / n
            elif prev is not None:
                F, Vb, Vr = prev.F, prev.Vb, prev.Vr
            else:
                first = estimates[0]
                F, Vb, Vr = first.F, first.Vb, first.Vr
            a = int(echo_hi[k] - echo_lo[k])
            if a == 0:
                L = prev.L if prev is not None else 0.0
            else:
                b = int(answered_cum[echo_hi[k]] - answered_cum[echo_lo[k]])
                ratio = min(1.0, b / a)
                L = max(0.0, 1.0 - math.sqrt(ratio))
            tup = QualityTuple(d=self.step, F=max(0.0, F), Vb=max(0.0, Vb),
                               Vr=max(0.0, Vr), L=L)
            tuples.append(tup)
            prev = tup
        return tuples

    def _window_scalar(self, estimates: List[ParameterEstimate],
                       echo_out: List[PacketRecord],
                       replies: List[PacketRecord],
                       t0: float, duration: float) -> List[QualityTuple]:
        """Reference scalar implementation (numpy-free fallback)."""
        if not estimates:
            raise ValueError("no usable packet groups; cannot distill")
        echoes = sorted((p.timestamp - t0, p.seq) for p in echo_out)
        reply_times = sorted(p.timestamp - t0 for p in replies)
        answered = {p.seq for p in replies}
        tuples: List[QualityTuple] = []
        prev: Optional[QualityTuple] = None
        steps = max(1, int(math.ceil(duration / self.step)))
        for k in range(steps):
            lo = k * self.step
            hi = lo + self.step
            center = (lo + hi) / 2.0
            w_lo = center - self.window_width / 2.0
            w_hi = center + self.window_width / 2.0
            in_window = [e for e in estimates if w_lo <= e.time < w_hi]
            if in_window:
                n = len(in_window)
                F = sum(e.F for e in in_window) / n
                Vb = sum(e.Vb for e in in_window) / n
                Vr = sum(e.Vr for e in in_window) / n
            elif prev is not None:
                F, Vb, Vr = prev.F, prev.Vb, prev.Vr
            else:
                first = estimates[0]
                F, Vb, Vr = first.F, first.Vb, first.Vr
            L = self._loss_for_window(w_lo, w_hi, echoes, answered,
                                      reply_times,
                                      prev.L if prev is not None else 0.0)
            tup = QualityTuple(d=self.step, F=max(0.0, F), Vb=max(0.0, Vb),
                               Vr=max(0.0, Vr), L=L)
            tuples.append(tup)
            prev = tup
        return tuples

    def _loss_for_window(self, w_lo: float, w_hi: float,
                         echoes: List[Tuple[float, int]],
                         answered: set, reply_times: List[float],
                         fallback: float) -> float:
        """Sequence-number loss estimate for one window (Eq. 10).

        The span runs from the last reply before the window to the
        first reply after it, so losses adjacent to the window edges
        are attributed somewhere rather than nowhere.  Expected replies
        are matched to sent ECHOs *by sequence number* — a reply that
        lands just past the span edge still answers its echo, so only
        genuinely missing replies count as losses.
        """
        span_lo = w_lo
        span_hi = w_hi
        before = [t for t in reply_times if t < w_lo]
        after = [t for t in reply_times if t > w_hi]
        if before:
            span_lo = before[-1]
        if after:
            span_hi = after[0]
        sent = [seq for t, seq in echoes if span_lo <= t <= span_hi]
        a = len(sent)
        if a == 0:
            return fallback
        b = sum(1 for seq in sent if seq in answered)
        ratio = min(1.0, b / a)
        return max(0.0, 1.0 - math.sqrt(ratio))

    # populated per distill() call
    _groups_total: int = 0
    _groups_used: int = 0
    _groups_corrected: int = 0
    _groups_skipped: int = 0
