"""Trace collection: in-kernel tracer, circular buffer, drain daemon.

Implements §3.1.2 faithfully:

* hooks in the traced device's input and output routines copy relevant
  packet information into an **in-kernel circular buffer**;
* the kernel **periodically samples device characteristics** into the
  same buffer;
* the buffer is fixed-size and may be **overrun**; the number and type
  of lost records is tracked and emitted as ``lost_records`` records;
* the kernel exports a **pseudo-device** (open enables tracing, close
  disables it, read drains records);
* a **user-level daemon** periodically extracts records and appends
  them to the trace file.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional

from ..hosts.host import Host
from ..hosts.kernel import PseudoDevice
from ..net.device import DIR_IN, NetworkDevice
from ..net.packet import ICMPHeader, Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from ..sim import Timeout
from .traceformat import (
    DIR_IN as REC_IN,
    DIR_OUT as REC_OUT,
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
    TraceRecord,
)

TRACED_PROTOCOLS = (PROTO_ICMP, PROTO_UDP, PROTO_TCP)


class CircularTraceBuffer:
    """Fixed-capacity record buffer with per-type overrun accounting."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque()
        self.lost_by_type: Dict[str, int] = {}
        self.total_appended = 0
        self.total_lost = 0

    def append(self, record: TraceRecord) -> None:
        if len(self._records) >= self.capacity:
            evicted = self._records.popleft()
            name = evicted.RECORD_TYPE
            self.lost_by_type[name] = self.lost_by_type.get(name, 0) + 1
            self.total_lost += 1
        self._records.append(record)
        self.total_appended += 1

    def drain(self, max_records: int = 0) -> List[TraceRecord]:
        """Remove and return up to ``max_records`` (0 = all).

        If records were lost since the last drain, ``lost_records``
        entries are prepended so the loss is visible in the trace.
        """
        out: List[TraceRecord] = []
        if self.lost_by_type:
            for name, count in sorted(self.lost_by_type.items()):
                out.append(LostRecordsRecord(timestamp=-1.0, record_type=name,
                                             count=count))
            self.lost_by_type = {}
        limit = max_records if max_records > 0 else len(self._records)
        while self._records and limit > 0:
            out.append(self._records.popleft())
            limit -= 1
        return out

    def __len__(self) -> int:
        return len(self._records)


class TracePseudoDevice(PseudoDevice):
    """/dev/trace: open enables tracing, close disables, read drains."""

    def __init__(self, tracer: "PacketTracer", name: str = "trace0"):
        super().__init__(name)
        self.tracer = tracer

    def open(self) -> None:
        super().open()
        self.tracer.enabled = True

    def close(self) -> None:
        super().close()
        self.tracer.enabled = False

    def read(self, max_records: int = 0) -> List[TraceRecord]:
        if not self.is_open:
            raise RuntimeError(f"{self.name}: not open")
        return self.tracer.buffer.drain(max_records)


class PacketTracer:
    """The in-kernel tracing machinery for one device."""

    def __init__(self, host: Host, device: NetworkDevice,
                 buffer_capacity: int = 4096,
                 status_period: float = 1.0):
        self.host = host
        self.device = device
        self.buffer = CircularTraceBuffer(buffer_capacity)
        self.status_period = status_period
        self.enabled = False
        self.packets_traced = 0
        self.packets_ignored = 0
        device.output_hooks.append(self._packet_hook)
        device.input_hooks.append(self._packet_hook)
        self.pseudo_device = TracePseudoDevice(self)
        host.kernel.register_device(self.pseudo_device)
        self._status_timer_running = False

    # ------------------------------------------------------------------
    def start_status_sampling(self) -> None:
        """Begin periodic device-status records (idempotent)."""
        if not self._status_timer_running:
            self._status_timer_running = True
            self._sample_status()

    def _sample_status(self) -> None:
        if self.enabled:
            status = self.device.device_status()
            self.buffer.append(DeviceStatusRecord(
                timestamp=self.host.kernel.timestamp(),
                signal_level=float(status.get("signal_level", 0.0)),
                signal_quality=float(status.get("signal_quality", 0.0)),
                silence_level=float(status.get("silence_level", 0.0)),
            ))
        self.host.kernel.callout(self.status_period, self._sample_status)

    # ------------------------------------------------------------------
    def _packet_hook(self, device: NetworkDevice, packet: Packet,
                     direction: str, timestamp: float) -> None:
        if not self.enabled:
            return
        if packet.ip is None or packet.ip.proto not in TRACED_PROTOCOLS:
            self.packets_ignored += 1
            return
        record = self._record_for(packet, direction)
        self.buffer.append(record)
        self.packets_traced += 1

    def _record_for(self, packet: Packet, direction: str) -> PacketRecord:
        now_host = self.host.kernel.timestamp()
        record = PacketRecord(
            timestamp=now_host,
            direction=REC_IN if direction == DIR_IN else REC_OUT,
            proto=packet.ip.proto,
            size=packet.ip_size,
            src=packet.ip.src,
            dst=packet.ip.dst,
        )
        if packet.icmp is not None:
            record.icmp_type = packet.icmp.icmp_type
            record.ident = packet.icmp.ident
            record.seq = packet.icmp.seq
            if packet.icmp.icmp_type == ICMPHeader.ECHOREPLY:
                sent_at = packet.meta.get("echo_sent_at_host")
                if sent_at is not None:
                    # RTT from the payload timestamp — both stamps come
                    # from this host's clock, so no synchronization is
                    # needed (§3.1.1).
                    record.rtt = now_host - sent_at
        elif packet.udp is not None:
            record.src_port = packet.udp.src_port
            record.dst_port = packet.udp.dst_port
        elif packet.tcp is not None:
            record.src_port = packet.tcp.src_port
            record.dst_port = packet.tcp.dst_port
            record.seq = packet.tcp.seq
            record.flags = packet.tcp.flags
        return record


class CollectionDaemon:
    """User-level daemon that drains the pseudo-device to a list/file."""

    def __init__(self, host: Host, device_name: str = "trace0",
                 drain_period: float = 0.5, batch: int = 512):
        self.host = host
        self.device_name = device_name
        self.drain_period = drain_period
        self.batch = batch
        self.records: List[TraceRecord] = []
        self.drains = 0
        self._running = False

    def loop(self) -> Generator[Any, Any, None]:
        """Daemon process body; run with ``host.spawn(daemon.loop())``."""
        device = self.host.kernel.device(self.device_name)
        device.open()
        self._running = True
        try:
            while self._running:
                yield Timeout(self.drain_period)
                got = device.read(self.batch)
                self.records.extend(got)
                self.drains += 1
        finally:
            # Final drain so records queued at shutdown are not lost.
            self.records.extend(device.read(0))
            device.close()

    def stop(self) -> None:
        self._running = False


def trace_collection_run(host: Host, device: NetworkDevice,
                         buffer_capacity: int = 4096,
                         status_period: float = 1.0,
                         drain_period: float = 0.5) -> CollectionDaemon:
    """Wire up tracer + daemon on ``host`` and start the daemon process.

    Returns the daemon; its ``records`` list accumulates the trace.
    """
    tracer = PacketTracer(host, device, buffer_capacity=buffer_capacity,
                          status_period=status_period)
    tracer.start_status_sampling()
    daemon = CollectionDaemon(host, tracer.pseudo_device.name,
                              drain_period=drain_period)
    host.spawn(daemon.loop(), name="trace-daemon")
    return daemon
