"""Self-descriptive trace file format.

The paper defines a "flexible and extensible while remaining fully
self-descriptive" trace format (§3.1, published as RFC 2041).  This
module implements that idea: a trace file starts with a header that
*describes the layout of every record type it contains* — field names,
types and struct codes — so a reader can parse files containing record
types it has never seen, skipping unknown ones by length.

Record types used by the collection phase:

* ``packet`` — one per traced packet: host-clock timestamp, direction,
  protocol, wire size, addresses, and protocol-specific fields (ICMP
  type/ident/seq and the measured round-trip time for ECHOREPLYs).
* ``device_status`` — periodic snapshot of the wireless device's
  signal level, signal quality and silence level.
* ``lost_records`` — written after a circular-buffer overrun with the
  count of each record type lost, so loss of trace data is always
  detected (§3.1.2).
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import asdict, dataclass, field, fields
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Tuple, Type, Union

MAGIC = b"RPTR"
VERSION = 1

DIR_IN = 0
DIR_OUT = 1


@dataclass
class PacketRecord:
    """One traced packet."""

    timestamp: float
    direction: int            # DIR_IN or DIR_OUT
    proto: int                # IP protocol number
    size: int                 # IP datagram size in bytes
    src: str = ""
    dst: str = ""
    icmp_type: int = -1
    ident: int = -1
    seq: int = -1
    rtt: float = -1.0         # ECHOREPLY round-trip time; -1 when n/a
    src_port: int = -1
    dst_port: int = -1
    flags: int = 0

    RECORD_TYPE = "packet"


@dataclass
class DeviceStatusRecord:
    """Periodic wireless device characteristics (§3.1.1)."""

    timestamp: float
    signal_level: float
    signal_quality: float
    silence_level: float

    RECORD_TYPE = "device_status"


@dataclass
class LostRecordsRecord:
    """Accounting for circular-buffer overruns."""

    timestamp: float
    record_type: str
    count: int

    RECORD_TYPE = "lost_records"


TraceRecord = Union[PacketRecord, DeviceStatusRecord, LostRecordsRecord]

RECORD_CLASSES: Dict[str, Type[Any]] = {
    cls.RECORD_TYPE: cls
    for cls in (PacketRecord, DeviceStatusRecord, LostRecordsRecord)
}

# struct codes per Python annotation; strings are length-prefixed UTF-8.
_STRUCT_CODES = {"float": "d", "int": "q", "str": "S"}


def _schema_for(cls: Type[Any]) -> List[Tuple[str, str]]:
    return [(f.name, _STRUCT_CODES[f.type]) for f in fields(cls)]


def _pack_value(code: str, value: Any) -> bytes:
    if code == "S":
        raw = str(value).encode("utf-8")
        return struct.pack("<H", len(raw)) + raw
    return struct.pack("<" + code, value)


def _unpack_value(code: str, buf: memoryview, offset: int) -> Tuple[Any, int]:
    if code == "S":
        (length,) = struct.unpack_from("<H", buf, offset)
        start = offset + 2
        value = bytes(buf[start:start + length]).decode("utf-8")
        return value, start + length
    size = struct.calcsize("<" + code)
    (value,) = struct.unpack_from("<" + code, buf, offset)
    return value, offset + size


_STR_LEN = struct.Struct("<H")


class _RecordPlan:
    """A schema compiled to batch struct operations.

    Consecutive fixed-width fields collapse into one precompiled
    :class:`struct.Struct`; strings (variable length) break the run.
    When the schema's field names match the record class exactly — the
    overwhelmingly common case of reading a file this writer produced —
    records are constructed positionally, skipping per-record dict
    assembly and :func:`dataclasses.fields` introspection.
    """

    __slots__ = ("name", "cls", "ops", "positional", "known", "names")

    def __init__(self, name: str, schema: List[Tuple[str, str]]):
        self.name = name
        self.cls = RECORD_CLASSES.get(name)
        self.names = [fname for fname, _ in schema]
        ops: List[Tuple[str, Any, Any]] = []
        run_codes = ""
        run_names: List[str] = []
        for fname, code in schema:
            if code == "S":
                if run_codes:
                    ops.append(("f", struct.Struct("<" + run_codes),
                                tuple(run_names)))
                    run_codes, run_names = "", []
                ops.append(("s", None, fname))
            else:
                run_codes += code
                run_names.append(fname)
        if run_codes:
            ops.append(("f", struct.Struct("<" + run_codes),
                        tuple(run_names)))
        self.ops = ops
        if self.cls is not None:
            cls_names = [f.name for f in fields(self.cls)]
            self.positional = cls_names == self.names
            self.known = set(cls_names)
        else:
            self.positional = False
            self.known = None

    def decode(self, body: memoryview) -> Union[TraceRecord, Dict[str, Any]]:
        values: List[Any] = []
        offset = 0
        for kind, st, _names in self.ops:
            if kind == "f":
                values.extend(st.unpack_from(body, offset))
                offset += st.size
            else:
                (length,) = _STR_LEN.unpack_from(body, offset)
                start = offset + 2
                values.append(bytes(body[start:start + length])
                              .decode("utf-8"))
                offset = start + length
        if self.positional:
            return self.cls(*values)
        rec = dict(zip(self.names, values))
        if self.cls is None:
            rec["record_type"] = self.name
            return rec
        return self.cls(**{k: v for k, v in rec.items() if k in self.known})

    def encode(self, record: Any) -> bytes:
        parts: List[bytes] = []
        for kind, st, names in self.ops:
            if kind == "f":
                parts.append(st.pack(*[getattr(record, n) for n in names]))
            else:
                raw = str(getattr(record, names)).encode("utf-8")
                parts.append(_STR_LEN.pack(len(raw)))
                parts.append(raw)
        return b"".join(parts)


_PLAN_CACHE: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _RecordPlan] = {}


def _plan_for(name: str, schema: List[Tuple[str, str]]) -> _RecordPlan:
    key = (name, tuple((f, c) for f, c in schema))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = _PLAN_CACHE[key] = _RecordPlan(name, schema)
    return plan


class TraceWriter:
    """Streams records into a self-descriptive binary trace."""

    def __init__(self, stream: BinaryIO, description: str = "",
                 extra_schemas: Optional[Dict[str, List[Tuple[str, str]]]] = None):
        self._stream = stream
        self._schemas: Dict[str, List[Tuple[str, str]]] = {
            name: _schema_for(cls) for name, cls in RECORD_CLASSES.items()
        }
        if extra_schemas:
            self._schemas.update(extra_schemas)
        self._type_ids = {name: i for i, name in enumerate(sorted(self._schemas))}
        self._plans = {name: _plan_for(name, schema)
                       for name, schema in self._schemas.items()}
        self.records_written = 0
        self._write_header(description)

    def _write_header(self, description: str) -> None:
        header = {
            "version": VERSION,
            "description": description,
            "types": {name: {"id": self._type_ids[name], "fields": schema}
                      for name, schema in self._schemas.items()},
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        self._stream.write(MAGIC)
        self._stream.write(struct.pack("<I", len(blob)))
        self._stream.write(blob)

    def write(self, record: TraceRecord) -> None:
        name = record.RECORD_TYPE
        body = self._plans[name].encode(record)
        self._stream.write(struct.pack("<HI", self._type_ids[name], len(body)))
        self._stream.write(body)
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.write(record)


class TraceReader:
    """Parses a trace written by :class:`TraceWriter`.

    Unknown record types (present in the file header but not in
    ``RECORD_CLASSES``) are surfaced as plain dicts — the format is
    self-descriptive, so nothing is lost.
    """

    def __init__(self, stream: BinaryIO):
        magic = stream.read(4)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a trace file")
        (header_len,) = struct.unpack("<I", stream.read(4))
        header = json.loads(stream.read(header_len).decode("utf-8"))
        if header["version"] != VERSION:
            raise ValueError(f"unsupported trace version {header['version']}")
        self.description = header.get("description", "")
        self._by_id: Dict[int, _RecordPlan] = {}
        for name, info in header["types"].items():
            schema = [tuple(pair) for pair in info["fields"]]
            self._by_id[info["id"]] = _plan_for(name, schema)
        self._stream = stream
        self._head = struct.Struct("<HI")

    def __iter__(self):
        return self

    def __next__(self) -> Union[TraceRecord, Dict[str, Any]]:
        head = self._stream.read(6)
        if len(head) < 6:
            raise StopIteration
        type_id, body_len = self._head.unpack(head)
        body = memoryview(self._stream.read(body_len))
        plan = self._by_id.get(type_id)
        if plan is None:
            return {"record_type": f"unknown:{type_id}"}
        return plan.decode(body)

    def read_all(self) -> List[Union[TraceRecord, Dict[str, Any]]]:
        return list(self)


def save_trace(path: str, records: Iterable[TraceRecord],
               description: str = "") -> int:
    """Write ``records`` to ``path``; returns the record count."""
    with open(path, "wb") as f:
        writer = TraceWriter(f, description=description)
        writer.write_all(records)
        return writer.records_written


def load_trace(path: str) -> List[Union[TraceRecord, Dict[str, Any]]]:
    """Read every record from the trace file at ``path``."""
    with open(path, "rb") as f:
        return TraceReader(f).read_all()


def dumps_trace(records: Iterable[TraceRecord], description: str = "") -> bytes:
    """Serialize records to an in-memory trace blob."""
    buf = io.BytesIO()
    writer = TraceWriter(buf, description=description)
    writer.write_all(records)
    return buf.getvalue()


def loads_trace(blob: bytes) -> List[Union[TraceRecord, Dict[str, Any]]]:
    """Parse a trace blob produced by :func:`dumps_trace`."""
    return TraceReader(io.BytesIO(blob)).read_all()
