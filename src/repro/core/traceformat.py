"""Self-descriptive trace file format.

The paper defines a "flexible and extensible while remaining fully
self-descriptive" trace format (§3.1, published as RFC 2041).  This
module implements that idea: a trace file starts with a header that
*describes the layout of every record type it contains* — field names,
types and struct codes — so a reader can parse files containing record
types it has never seen, skipping unknown ones by length.

Record types used by the collection phase:

* ``packet`` — one per traced packet: host-clock timestamp, direction,
  protocol, wire size, addresses, and protocol-specific fields (ICMP
  type/ident/seq and the measured round-trip time for ECHOREPLYs).
* ``device_status`` — periodic snapshot of the wireless device's
  signal level, signal quality and silence level.
* ``lost_records`` — written after a circular-buffer overrun with the
  count of each record type lost, so loss of trace data is always
  detected (§3.1.2).
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import asdict, dataclass, field, fields
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Tuple, Type, Union

MAGIC = b"RPTR"
VERSION = 1

DIR_IN = 0
DIR_OUT = 1


@dataclass
class PacketRecord:
    """One traced packet."""

    timestamp: float
    direction: int            # DIR_IN or DIR_OUT
    proto: int                # IP protocol number
    size: int                 # IP datagram size in bytes
    src: str = ""
    dst: str = ""
    icmp_type: int = -1
    ident: int = -1
    seq: int = -1
    rtt: float = -1.0         # ECHOREPLY round-trip time; -1 when n/a
    src_port: int = -1
    dst_port: int = -1
    flags: int = 0

    RECORD_TYPE = "packet"


@dataclass
class DeviceStatusRecord:
    """Periodic wireless device characteristics (§3.1.1)."""

    timestamp: float
    signal_level: float
    signal_quality: float
    silence_level: float

    RECORD_TYPE = "device_status"


@dataclass
class LostRecordsRecord:
    """Accounting for circular-buffer overruns."""

    timestamp: float
    record_type: str
    count: int

    RECORD_TYPE = "lost_records"


TraceRecord = Union[PacketRecord, DeviceStatusRecord, LostRecordsRecord]

RECORD_CLASSES: Dict[str, Type[Any]] = {
    cls.RECORD_TYPE: cls
    for cls in (PacketRecord, DeviceStatusRecord, LostRecordsRecord)
}

# struct codes per Python annotation; strings are length-prefixed UTF-8.
_STRUCT_CODES = {"float": "d", "int": "q", "str": "S"}


def _schema_for(cls: Type[Any]) -> List[Tuple[str, str]]:
    return [(f.name, _STRUCT_CODES[f.type]) for f in fields(cls)]


def _pack_value(code: str, value: Any) -> bytes:
    if code == "S":
        raw = str(value).encode("utf-8")
        return struct.pack("<H", len(raw)) + raw
    return struct.pack("<" + code, value)


def _unpack_value(code: str, buf: memoryview, offset: int) -> Tuple[Any, int]:
    if code == "S":
        (length,) = struct.unpack_from("<H", buf, offset)
        start = offset + 2
        value = bytes(buf[start:start + length]).decode("utf-8")
        return value, start + length
    size = struct.calcsize("<" + code)
    (value,) = struct.unpack_from("<" + code, buf, offset)
    return value, offset + size


class TraceWriter:
    """Streams records into a self-descriptive binary trace."""

    def __init__(self, stream: BinaryIO, description: str = "",
                 extra_schemas: Optional[Dict[str, List[Tuple[str, str]]]] = None):
        self._stream = stream
        self._schemas: Dict[str, List[Tuple[str, str]]] = {
            name: _schema_for(cls) for name, cls in RECORD_CLASSES.items()
        }
        if extra_schemas:
            self._schemas.update(extra_schemas)
        self._type_ids = {name: i for i, name in enumerate(sorted(self._schemas))}
        self.records_written = 0
        self._write_header(description)

    def _write_header(self, description: str) -> None:
        header = {
            "version": VERSION,
            "description": description,
            "types": {name: {"id": self._type_ids[name], "fields": schema}
                      for name, schema in self._schemas.items()},
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        self._stream.write(MAGIC)
        self._stream.write(struct.pack("<I", len(blob)))
        self._stream.write(blob)

    def write(self, record: TraceRecord) -> None:
        name = record.RECORD_TYPE
        schema = self._schemas[name]
        body = b"".join(
            _pack_value(code, getattr(record, fname)) for fname, code in schema
        )
        self._stream.write(struct.pack("<HI", self._type_ids[name], len(body)))
        self._stream.write(body)
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.write(record)


class TraceReader:
    """Parses a trace written by :class:`TraceWriter`.

    Unknown record types (present in the file header but not in
    ``RECORD_CLASSES``) are surfaced as plain dicts — the format is
    self-descriptive, so nothing is lost.
    """

    def __init__(self, stream: BinaryIO):
        magic = stream.read(4)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a trace file")
        (header_len,) = struct.unpack("<I", stream.read(4))
        header = json.loads(stream.read(header_len).decode("utf-8"))
        if header["version"] != VERSION:
            raise ValueError(f"unsupported trace version {header['version']}")
        self.description = header.get("description", "")
        self._by_id: Dict[int, Tuple[str, List[Tuple[str, str]]]] = {}
        for name, info in header["types"].items():
            schema = [tuple(pair) for pair in info["fields"]]
            self._by_id[info["id"]] = (name, schema)
        self._stream = stream

    def __iter__(self):
        return self

    def __next__(self) -> Union[TraceRecord, Dict[str, Any]]:
        head = self._stream.read(6)
        if len(head) < 6:
            raise StopIteration
        type_id, body_len = struct.unpack("<HI", head)
        body = memoryview(self._stream.read(body_len))
        if type_id not in self._by_id:
            return {"record_type": f"unknown:{type_id}"}
        name, schema = self._by_id[type_id]
        values: Dict[str, Any] = {}
        offset = 0
        for fname, code in schema:
            values[fname], offset = _unpack_value(code, body, offset)
        cls = RECORD_CLASSES.get(name)
        if cls is None:
            values["record_type"] = name
            return values
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in values.items() if k in known})

    def read_all(self) -> List[Union[TraceRecord, Dict[str, Any]]]:
        return list(self)


def save_trace(path: str, records: Iterable[TraceRecord],
               description: str = "") -> int:
    """Write ``records`` to ``path``; returns the record count."""
    with open(path, "wb") as f:
        writer = TraceWriter(f, description=description)
        writer.write_all(records)
        return writer.records_written


def load_trace(path: str) -> List[Union[TraceRecord, Dict[str, Any]]]:
    """Read every record from the trace file at ``path``."""
    with open(path, "rb") as f:
        return TraceReader(f).read_all()


def dumps_trace(records: Iterable[TraceRecord], description: str = "") -> bytes:
    """Serialize records to an in-memory trace blob."""
    buf = io.BytesIO()
    writer = TraceWriter(buf, description=description)
    writer.write_all(records)
    return buf.getvalue()


def loads_trace(blob: bytes) -> List[Union[TraceRecord, Dict[str, Any]]]:
    """Parse a trace blob produced by :func:`dumps_trace`."""
    return TraceReader(io.BytesIO(blob)).read_all()
