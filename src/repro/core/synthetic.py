"""Synthetic replay traces (§6).

Beyond replaying real networks, the paper points out that modulation
with *synthetic* traces "can be used to generate characteristics that
can only be approximated by actual networks" — step and impulse
variations in bandwidth for stress-testing adaptive systems (their
reference [14]).  These generators produce such traces, plus the
WaveLAN-like constant trace used in Figure 1's compensation study.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .replay import QualityTuple, ReplayTrace


def constant_trace(duration: float, latency: float, bandwidth_bps: float,
                   loss: float = 0.0, residual_fraction: float = 0.1,
                   step: float = 1.0, name: str = "constant") -> ReplayTrace:
    """A trace with invariant behaviour.

    ``residual_fraction`` splits the total per-byte cost between the
    bottleneck (``Vb``) and the rest of the path (``Vr``).
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    total_v = 8.0 / bandwidth_bps
    vr = total_v * residual_fraction
    vb = total_v - vr
    count = max(1, int(round(duration / step)))
    return ReplayTrace(
        (QualityTuple(d=step, F=latency, Vb=vb, Vr=vr, L=loss)
         for _ in range(count)),
        name=name,
    )


def wavelan_like_trace(duration: float = 120.0,
                       name: str = "synthetic-wavelan") -> ReplayTrace:
    """The Figure 1 modulating trace: performance close to a WaveLAN.

    Nominal 2 Mb/s radio delivering ~1.5 Mb/s end-to-end with a few
    milliseconds of latency and no loss (loss would confound the
    compensation comparison).
    """
    return constant_trace(duration=duration, latency=3e-3,
                          bandwidth_bps=1.5e6, loss=0.0, name=name)


def slow_network_trace(duration: float = 120.0,
                       name: str = "synthetic-slow") -> ReplayTrace:
    """A much slower network (Figure 1's independence check)."""
    return constant_trace(duration=duration, latency=20e-3,
                          bandwidth_bps=256e3, loss=0.0, name=name)


def step_trace(duration: float, period: float, latency: float,
               low_bandwidth_bps: float, high_bandwidth_bps: float,
               loss: float = 0.0, step: float = 1.0,
               name: str = "step") -> ReplayTrace:
    """Square-wave bandwidth alternating every ``period`` seconds."""
    if period <= 0:
        raise ValueError("period must be positive")
    tuples: List[QualityTuple] = []
    t = 0.0
    while t < duration:
        high_phase = int(t / period) % 2 == 1
        bw = high_bandwidth_bps if high_phase else low_bandwidth_bps
        v = 8.0 / bw
        tuples.append(QualityTuple(d=step, F=latency, Vb=v * 0.9, Vr=v * 0.1,
                                   L=loss))
        t += step
    return ReplayTrace(tuples, name=name)


def impulse_trace(duration: float, impulse_at: float, impulse_width: float,
                  latency: float, base_bandwidth_bps: float,
                  impulse_bandwidth_bps: float, loss: float = 0.0,
                  step: float = 1.0, name: str = "impulse") -> ReplayTrace:
    """A single bandwidth impulse on an otherwise constant network."""
    tuples: List[QualityTuple] = []
    t = 0.0
    while t < duration:
        in_impulse = impulse_at <= t < impulse_at + impulse_width
        bw = impulse_bandwidth_bps if in_impulse else base_bandwidth_bps
        v = 8.0 / bw
        tuples.append(QualityTuple(d=step, F=latency, Vb=v * 0.9, Vr=v * 0.1,
                                   L=loss))
        t += step
    return ReplayTrace(tuples, name=name)


def piecewise_trace(segments: Sequence[Tuple[float, float, float, float]],
                    step: float = 1.0, residual_fraction: float = 0.1,
                    name: str = "piecewise") -> ReplayTrace:
    """Build a trace from (duration, latency, bandwidth_bps, loss) segments."""
    tuples: List[QualityTuple] = []
    for duration, latency, bandwidth_bps, loss in segments:
        total_v = 8.0 / bandwidth_bps
        vr = total_v * residual_fraction
        vb = total_v - vr
        remaining = duration
        while remaining > 1e-9:
            d = min(step, remaining)
            tuples.append(QualityTuple(d=d, F=latency, Vb=vb, Vr=vr, L=loss))
            remaining -= d
    return ReplayTrace(tuples, name=name)
