"""The network performance model and replay traces.

§3.2.1: time-varying network behaviour is decomposed into a sequence of
short intervals of invariant behaviour.  Each interval is a *network
quality tuple* ``⟨d, F, Vb, Vr, L⟩``:

* ``d``  — duration of the interval (seconds);
* ``F``  — one-way latency (fixed per-packet cost, seconds);
* ``Vb`` — bottleneck per-byte cost (seconds/byte, the inverse of the
  bottleneck bandwidth);
* ``Vr`` — residual per-byte cost of every other queue on the path;
* ``L``  — probability that a packet is dropped during the interval.

A single packet of size ``s`` therefore experiences a one-way delay of
``F + s·(Vb + Vr)``; back-to-back packets additionally queue behind one
another at the bottleneck for ``s·Vb`` each.

The model is deliberately separable from both the distiller that
produces tuples and the modulator that enforces them (§3.2: "the model
is separable from the methodology").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class QualityTuple:
    """One interval of invariant network behaviour."""

    d: float    # duration (s)
    F: float    # latency (s)
    Vb: float   # bottleneck per-byte cost (s/byte)
    Vr: float   # residual per-byte cost (s/byte)
    L: float    # loss probability in [0, 1]

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise ValueError(f"duration must be positive, got {self.d}")
        if not 0.0 <= self.L <= 1.0:
            raise ValueError(f"loss probability out of range: {self.L}")

    @property
    def V(self) -> float:
        """Total per-byte cost."""
        return self.Vb + self.Vr

    def one_way_delay(self, size: int) -> float:
        """Model delay for a single packet of ``size`` bytes (Eq. 4)."""
        return self.F + size * self.V

    def bottleneck_bandwidth_bps(self) -> float:
        """The bottleneck bandwidth this tuple implies, in bits/s."""
        if self.Vb <= 0:
            return float("inf")
        return 8.0 / self.Vb

    def scaled(self, bandwidth_factor: float = 1.0,
               latency_factor: float = 1.0) -> "QualityTuple":
        """A derived tuple with scaled bandwidth/latency (synthetics)."""
        return QualityTuple(d=self.d, F=self.F * latency_factor,
                            Vb=self.Vb / bandwidth_factor,
                            Vr=self.Vr / bandwidth_factor, L=self.L)


class ReplayTrace:
    """An ordered list of quality tuples describing a network over time."""

    def __init__(self, tuples: Iterable[QualityTuple], name: str = ""):
        self.tuples: List[QualityTuple] = list(tuples)
        if not self.tuples:
            raise ValueError("a replay trace needs at least one tuple")
        self.name = name
        self._starts: List[float] = []
        t = 0.0
        for tup in self.tuples:
            self._starts.append(t)
            t += tup.d
        self._duration = t

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Total duration covered by the trace (seconds)."""
        return self._duration

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[QualityTuple]:
        return iter(self.tuples)

    def tuple_at(self, t: float, loop: bool = False) -> QualityTuple:
        """The tuple in effect at time ``t`` from the trace's start.

        With ``loop`` the trace repeats; otherwise times past the end
        hold the final tuple (the daemon "may write a file of tuples
        once ... or loop over the file until interrupted", §3.3).
        """
        if t < 0:
            raise ValueError("negative time")
        if loop and self._duration > 0:
            t = t % self._duration
        if t >= self._duration:
            return self.tuples[-1]
        lo, hi = 0, len(self._starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return self.tuples[lo]

    # ------------------------------------------------------------------
    def mean_latency(self) -> float:
        """Duration-weighted mean of F."""
        return self._weighted(lambda q: q.F)

    def mean_bandwidth_bps(self) -> float:
        """Duration-weighted harmonic view: bandwidth of mean Vb."""
        mean_vb = self._weighted(lambda q: q.Vb)
        return 8.0 / mean_vb if mean_vb > 0 else float("inf")

    def mean_bottleneck_cost(self) -> float:
        """Duration-weighted mean Vb — what delay compensation uses."""
        return self._weighted(lambda q: q.Vb)

    def mean_loss(self) -> float:
        """Duration-weighted mean loss probability."""
        return self._weighted(lambda q: q.L)

    def _weighted(self, key) -> float:
        total = sum(q.d for q in self.tuples)
        return sum(key(q) * q.d for q in self.tuples) / total

    # ------------------------------------------------------------------
    # Serialization (JSON: replay traces are small and humans read them)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a human-readable JSON document."""
        return json.dumps({
            "name": self.name,
            "tuples": [asdict(t) for t in self.tuples],
        }, indent=1)

    @classmethod
    def from_json(cls, blob: str) -> "ReplayTrace":
        data = json.loads(blob)
        return cls((QualityTuple(**t) for t in data["tuples"]),
                   name=data.get("name", ""))

    def save(self, path: str) -> None:
        """Write the JSON form to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ReplayTrace":
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_json(f.read())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplayTrace):
            return NotImplemented
        return self.name == other.name and self.tuples == other.tuples

    __hash__ = None  # mutable value type

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ReplayTrace {self.name!r} {len(self.tuples)} tuples, "
                f"{self._duration:.1f}s>")
