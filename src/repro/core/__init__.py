"""The paper's contribution: collection, distillation, modulation."""

from .collection import (
    CircularTraceBuffer,
    CollectionDaemon,
    PacketTracer,
    TracePseudoDevice,
    trace_collection_run,
)
from .compensation import CompensationMeasurement, measure_modulation_network
from .delayline import DelaylineSocket, wrap_rpc_client
from .distill import DistillationResult, Distiller, ParameterEstimate
from .export import to_mahimahi_commands, to_mahimahi_trace, to_netem_script
from .oneway import (
    AsymmetricDistillationResult,
    AsymmetricModulationLayer,
    OneWayDistiller,
    install_asymmetric_modulation,
)
from .modulator import (
    ModulationDaemon,
    ModulationLayer,
    ReplayFeedDevice,
    install_modulation,
)
from .replay import QualityTuple, ReplayTrace
from .synthetic import (
    constant_trace,
    impulse_trace,
    piecewise_trace,
    slow_network_trace,
    step_trace,
    wavelan_like_trace,
)
from .traceformat import (
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
    TraceReader,
    TraceWriter,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
)

__all__ = [
    "AsymmetricDistillationResult",
    "AsymmetricModulationLayer",
    "OneWayDistiller",
    "install_asymmetric_modulation",
    "CircularTraceBuffer",
    "CollectionDaemon",
    "DelaylineSocket",
    "to_mahimahi_commands",
    "to_mahimahi_trace",
    "to_netem_script",
    "wrap_rpc_client",
    "CompensationMeasurement",
    "DeviceStatusRecord",
    "DistillationResult",
    "Distiller",
    "LostRecordsRecord",
    "ModulationDaemon",
    "ModulationLayer",
    "PacketRecord",
    "PacketTracer",
    "ParameterEstimate",
    "QualityTuple",
    "ReplayFeedDevice",
    "ReplayTrace",
    "TracePseudoDevice",
    "TraceReader",
    "TraceWriter",
    "constant_trace",
    "dumps_trace",
    "impulse_trace",
    "install_modulation",
    "load_trace",
    "loads_trace",
    "measure_modulation_network",
    "piecewise_trace",
    "save_trace",
    "slow_network_trace",
    "step_trace",
    "trace_collection_run",
    "wavelan_like_trace",
]
