"""Delay compensation measurement (§3.3, Figure 1).

Because the unified delay queue sits at an endpoint, inbound traffic
pays the physical network's bottleneck cost *and* the emulated one,
while outbound traffic's emulated spacing subsumes the physical cost.
The fix: measure the modulating network once — with the very same
ping/collection/distillation tools — and subtract its long-term average
bottleneck per-byte cost from the replay trace's ``Vb`` for inbound
packets.

The measurement is a property of the modulation testbed only; it is
independent of whatever network is being emulated (the paper verifies
this with a much slower synthetic trace, and
``benchmarks/bench_fig1_compensation.py`` repeats that check).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.ping import ModifiedPing
from ..hosts.worlds import ModulationWorld, SERVER_ADDR
from .collection import trace_collection_run
from .distill import DistillationResult, Distiller


@dataclass
class CompensationMeasurement:
    """Measured characteristics of the modulating (physical) network."""

    vb: float          # long-term average bottleneck per-byte cost (s/byte)
    latency: float     # long-term average one-way latency (s)
    distillation: DistillationResult

    @property
    def bandwidth_bps(self) -> float:
        return 8.0 / self.vb if self.vb > 0 else float("inf")


def measure_modulation_network(duration: float = 30.0, seed: int = 1729,
                               ethernet_bandwidth: float = 10e6
                               ) -> CompensationMeasurement:
    """Measure the isolated Ethernet testbed's bottleneck cost.

    Runs the modified ping workload over a pristine
    :class:`~repro.hosts.worlds.ModulationWorld` (no modulation layer),
    collects a trace at the laptop, distills it, and averages ``Vb``.
    This need happen only once per testbed.
    """
    world = ModulationWorld(seed=seed, ethernet_bandwidth=ethernet_bandwidth)
    daemon = trace_collection_run(world.laptop, world.laptop_device)
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    world.laptop.spawn(ping.run(duration), name="ping")
    world.run(until=duration + 2.0)

    result = Distiller().distill(daemon.records, name="modulating-network")
    return CompensationMeasurement(
        vb=result.replay.mean_bottleneck_cost(),
        latency=result.replay.mean_latency(),
        distillation=result,
    )
