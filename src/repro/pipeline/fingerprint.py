"""Deterministic fingerprints for pipeline stages.

A fingerprint is the SHA-256 of a canonical-JSON rendering of a stage's
identity: its name, its version, and a token for every declared input.
Tokens come from :func:`cache_token` — objects participate either by
being plain data, by being (frozen) dataclasses, or by exposing a
``cache_token()`` method (scenarios, benchmark runners, distillers).

Fingerprints are stable across processes and Python versions (SHA-256
over sorted-key JSON, never ``hash()``), which is what makes the
on-disk artifact store valid across runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

__all__ = ["cache_token", "canonical_json", "digest"]


def cache_token(obj: Any) -> Any:
    """A JSON-able, deterministic token for ``obj``.

    Raises ``TypeError`` for objects with no stable identity — better a
    loud failure than a fingerprint that silently ignores an input.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    token_method = getattr(obj, "cache_token", None)
    if callable(token_method):
        return cache_token(token_method())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__qualname__,
                **{f.name: cache_token(getattr(obj, f.name))
                   for f in dataclasses.fields(obj)}}
    if isinstance(obj, (list, tuple)):
        return [cache_token(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): cache_token(value) for key, value in obj.items()}
    raise TypeError(
        f"{type(obj).__qualname__} has no stable cache token; give it a "
        f"cache_token() method or pass plain data")


def canonical_json(token: Any) -> str:
    """Sorted-key, minimal-separator JSON — the hashed byte form."""
    return json.dumps(token, sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def digest(token: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``token``."""
    blob = canonical_json(cache_token(token)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
