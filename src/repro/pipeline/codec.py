"""Versioned binary codec for pipeline artifacts.

Every artifact the pipeline stores or ships between processes used to
round-trip through Python pickles.  Pickle is general but slow to
parse, version-fragile on disk, and opaque to size accounting — and
the bulk artifacts here (trace-record streams, replay traces,
distillation results, validation summaries) are all regular, mostly
numeric structures that pack tightly with ``struct``.

This module defines that packed form.  A frame is::

    MAGIC (4 bytes, b"RBAC") | version (<H) | one value

and a value is a one-byte tag followed by a tag-specific payload:

* primitives — ``None``/bools (tag only), ``int`` (``<q``, with an
  arbitrary-precision escape), ``float`` (``<d``, exact), ``str`` /
  ``bytes`` (``<I`` length prefix);
* containers — list / tuple / dict (``<I`` count, recursive values;
  list and tuple keep distinct tags so round-trips are exact);
* bulk domain types with dedicated packed layouts —
  :class:`~repro.core.traceformat.TraceRecord` streams (embedded as a
  self-descriptive :mod:`~repro.core.traceformat` blob),
  :class:`~repro.core.replay.QualityTuple` (``<5d``),
  :class:`~repro.core.replay.ReplayTrace` (name + packed tuple array),
  :class:`~repro.core.distill.ParameterEstimate` (``<4dB``),
  :class:`~repro.core.distill.DistillationResult`,
  :class:`~repro.analysis.stats.Summary` (``<ddq``);
* a pickle escape hatch for rare, small, irregular objects (check
  reports and the like).  Bulk trial data never takes it.

The codec is *exact*: floats are IEEE-754 doubles bit-for-bit, ints
are unbounded, list/tuple identity is preserved, and ``decode``
rejects trailing garbage — so ``decode(encode(x)) == x`` and the
determinism contract (byte-identical validation tables however an
artifact travelled) holds through any number of round trips.

``encode_gz``/``decode_gz`` add deterministic gzip framing (``mtime=0``)
for on-disk artifacts in :class:`~repro.pipeline.store.ArtifactStore`.

Failure modes raise :class:`CodecError`: bad magic, unsupported
version, truncated or corrupt frames, trailing bytes.
"""

from __future__ import annotations

import gzip
import hashlib
import pickle
import struct
from typing import Any, List, Tuple

__all__ = [
    "MAGIC",
    "VERSION",
    "CodecError",
    "encode",
    "decode",
    "encode_gz",
    "decode_gz",
    "content_digest",
]

MAGIC = b"RBAC"        # Repro Binary Artifact Codec
VERSION = 1
_HEADER = struct.Struct("<4sH")
_GZIP_MAGIC = b"\x1f\x8b"

# Value tags ------------------------------------------------------------
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03          # <q
_T_BIGINT = 0x04       # <B sign, <I nbytes, big-endian magnitude
_T_FLOAT = 0x05        # <d
_T_STR = 0x06          # <I len, utf-8
_T_BYTES = 0x07        # <I len
_T_LIST = 0x10         # <I count, values
_T_TUPLE = 0x11        # <I count, values
_T_DICT = 0x12         # <I count, key/value value pairs
_T_TRACE_RECORDS = 0x20  # <I len, traceformat blob (self-descriptive)
_T_QUALITY = 0x21      # <5d  (d, F, Vb, Vr, L)
_T_REPLAY = 0x22       # str name, <I count, count x <5d
_T_ESTIMATE = 0x23     # <4d (time, F, Vb, Vr), <B corrected
_T_DISTILL = 0x24      # replay, estimates, <6q counters, status records
_T_SUMMARY = 0x25      # <ddq (mean, std, n)
_T_PICKLE = 0x7F       # <I len, pickle bytes (irregular small objects)

_U8 = struct.Struct("<B")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_QUALITY = struct.Struct("<5d")
_ESTIMATE = struct.Struct("<4dB")
_SUMMARY = struct.Struct("<ddq")
_COUNTERS = struct.Struct("<6q")


class CodecError(ValueError):
    """A frame that cannot be decoded: bad magic, bad version,
    truncation, corruption, or trailing bytes."""


# ======================================================================
# Encoding
# ======================================================================
def _trace_types():
    from ..core.traceformat import (DeviceStatusRecord, LostRecordsRecord,
                                    PacketRecord)
    return (PacketRecord, DeviceStatusRecord, LostRecordsRecord)


def _encode_value(obj: Any, out: bytearray) -> None:
    from ..analysis.stats import Summary
    from ..core.distill import DistillationResult, ParameterEstimate
    from ..core.replay import QualityTuple, ReplayTrace

    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        if -(1 << 63) <= obj < (1 << 63):
            out.append(_T_INT)
            out += _I64.pack(obj)
        else:
            out.append(_T_BIGINT)
            mag = abs(obj)
            raw = mag.to_bytes((mag.bit_length() + 7) // 8, "big")
            out += _U8.pack(1 if obj < 0 else 0)
            out += _U32.pack(len(raw))
            out += raw
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(obj)
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        out += _U32.pack(len(obj))
        out += obj
    elif type(obj) is list:
        trace_types = _trace_types()
        if obj and all(type(item) in trace_types for item in obj):
            from ..core.traceformat import dumps_trace

            blob = dumps_trace(obj)
            out.append(_T_TRACE_RECORDS)
            out += _U32.pack(len(blob))
            out += blob
        else:
            out.append(_T_LIST)
            out += _U32.pack(len(obj))
            for item in obj:
                _encode_value(item, out)
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        out += _U32.pack(len(obj))
        for item in obj:
            _encode_value(item, out)
    elif type(obj) is dict:
        out.append(_T_DICT)
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            _encode_value(key, out)
            _encode_value(value, out)
    elif type(obj) is QualityTuple:
        out.append(_T_QUALITY)
        out += _QUALITY.pack(obj.d, obj.F, obj.Vb, obj.Vr, obj.L)
    elif type(obj) is ReplayTrace:
        _encode_replay(obj, out)
    elif type(obj) is ParameterEstimate:
        out.append(_T_ESTIMATE)
        out += _ESTIMATE.pack(obj.time, obj.F, obj.Vb, obj.Vr,
                              1 if obj.corrected else 0)
    elif type(obj) is DistillationResult:
        out.append(_T_DISTILL)
        _encode_replay(obj.replay, out)
        out += _U32.pack(len(obj.estimates))
        for est in obj.estimates:
            out += _ESTIMATE.pack(est.time, est.F, est.Vb, est.Vr,
                                  1 if est.corrected else 0)
        out += _COUNTERS.pack(obj.groups_total, obj.groups_used,
                              obj.groups_corrected, obj.groups_skipped,
                              obj.echoes_sent, obj.replies_received)
        _encode_value(list(obj.status_records), out)
    elif type(obj) is Summary:
        out.append(_T_SUMMARY)
        out += _SUMMARY.pack(obj.mean, obj.std, obj.n)
    else:
        # Escape hatch for irregular, small objects (check reports,
        # subclassed containers).  Loud on genuinely unserializable
        # values, exactly like the store's old pickle path.
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_T_PICKLE)
        out += _U32.pack(len(blob))
        out += blob


def _encode_replay(replay, out: bytearray) -> None:
    out.append(_T_REPLAY)
    raw = replay.name.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw
    out += _U32.pack(len(replay.tuples))
    pack = _QUALITY.pack
    for q in replay.tuples:
        out += pack(q.d, q.F, q.Vb, q.Vr, q.L)


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` to a versioned binary frame."""
    out = bytearray(_HEADER.pack(MAGIC, VERSION))
    _encode_value(obj, out)
    return bytes(out)


# ======================================================================
# Decoding
# ======================================================================
class _Reader:
    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf: memoryview):
        self.buf = buf
        self.pos = 0
        self.end = len(buf)

    def take(self, n: int) -> memoryview:
        if self.pos + n > self.end:
            raise CodecError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"have {self.end - self.pos}")
        view = self.buf[self.pos:self.pos + n]
        self.pos += n
        return view

    def unpack(self, st: struct.Struct) -> Tuple:
        return st.unpack(self.take(st.size))


def _decode_value(r: _Reader) -> Any:
    from ..analysis.stats import Summary
    from ..core.distill import DistillationResult, ParameterEstimate
    from ..core.replay import QualityTuple

    (tag,) = r.unpack(_U8)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.unpack(_I64)[0]
    if tag == _T_BIGINT:
        (sign,) = r.unpack(_U8)
        (nbytes,) = r.unpack(_U32)
        mag = int.from_bytes(r.take(nbytes), "big")
        return -mag if sign else mag
    if tag == _T_FLOAT:
        return r.unpack(_F64)[0]
    if tag == _T_STR:
        (n,) = r.unpack(_U32)
        return bytes(r.take(n)).decode("utf-8")
    if tag == _T_BYTES:
        (n,) = r.unpack(_U32)
        return bytes(r.take(n))
    if tag == _T_LIST:
        (n,) = r.unpack(_U32)
        return [_decode_value(r) for _ in range(n)]
    if tag == _T_TUPLE:
        (n,) = r.unpack(_U32)
        return tuple(_decode_value(r) for _ in range(n))
    if tag == _T_DICT:
        (n,) = r.unpack(_U32)
        out = {}
        for _ in range(n):
            key = _decode_value(r)
            out[key] = _decode_value(r)
        return out
    if tag == _T_TRACE_RECORDS:
        from ..core.traceformat import loads_trace

        (n,) = r.unpack(_U32)
        try:
            return loads_trace(bytes(r.take(n)))
        except (ValueError, struct.error) as exc:
            raise CodecError(f"corrupt trace-record block: {exc}")
    if tag == _T_QUALITY:
        d, F, Vb, Vr, L = r.unpack(_QUALITY)
        return QualityTuple(d=d, F=F, Vb=Vb, Vr=Vr, L=L)
    if tag == _T_REPLAY:
        return _decode_replay(r)
    if tag == _T_ESTIMATE:
        t, F, Vb, Vr, corrected = r.unpack(_ESTIMATE)
        return ParameterEstimate(time=t, F=F, Vb=Vb, Vr=Vr,
                                 corrected=bool(corrected))
    if tag == _T_DISTILL:
        (rtag,) = r.unpack(_U8)
        if rtag != _T_REPLAY:
            raise CodecError("distillation frame missing its replay")
        replay = _decode_replay(r)
        (n,) = r.unpack(_U32)
        block = r.take(n * _ESTIMATE.size)
        estimates = [
            ParameterEstimate(time=t, F=F, Vb=Vb, Vr=Vr,
                              corrected=bool(corrected))
            for t, F, Vb, Vr, corrected in _ESTIMATE.iter_unpack(block)]
        counters = r.unpack(_COUNTERS)
        statuses = _decode_value(r)
        return DistillationResult(
            replay=replay, estimates=estimates,
            groups_total=counters[0], groups_used=counters[1],
            groups_corrected=counters[2], groups_skipped=counters[3],
            echoes_sent=counters[4], replies_received=counters[5],
            status_records=statuses)
    if tag == _T_SUMMARY:
        mean, std, n = r.unpack(_SUMMARY)
        return Summary(mean=mean, std=std, n=n)
    if tag == _T_PICKLE:
        (n,) = r.unpack(_U32)
        try:
            return pickle.loads(bytes(r.take(n)))
        except Exception as exc:
            raise CodecError(f"corrupt pickle block: {exc}")
    raise CodecError(f"unknown value tag 0x{tag:02x}")


def _decode_replay(r: _Reader):
    from ..core.replay import QualityTuple, ReplayTrace

    (n,) = r.unpack(_U32)
    name = bytes(r.take(n)).decode("utf-8")
    (count,) = r.unpack(_U32)
    block = r.take(count * _QUALITY.size)
    try:
        tuples = [QualityTuple(d=d, F=F, Vb=Vb, Vr=Vr, L=L)
                  for d, F, Vb, Vr, L in _QUALITY.iter_unpack(block)]
        return ReplayTrace(tuples, name=name)
    except ValueError as exc:
        raise CodecError(f"corrupt replay frame: {exc}")


def decode(blob: bytes) -> Any:
    """Parse a frame produced by :func:`encode` (strict: trailing
    bytes, truncation, bad magic and unknown versions all raise)."""
    r = _Reader(memoryview(blob))
    try:
        magic, version = r.unpack(_HEADER)
    except CodecError:
        raise CodecError("truncated frame: no header")
    if magic != MAGIC:
        raise CodecError(f"bad magic {bytes(magic)!r}; not a binary "
                         f"artifact frame")
    if version != VERSION:
        raise CodecError(f"unsupported artifact codec version {version} "
                         f"(this build reads version {VERSION})")
    try:
        value = _decode_value(r)
    except struct.error as exc:
        raise CodecError(f"corrupt frame: {exc}")
    if r.pos != r.end:
        raise CodecError(f"{r.end - r.pos} trailing byte(s) after the "
                         f"top-level value")
    return value


# ======================================================================
# Gzip framing (on-disk form) and content digests
# ======================================================================
def encode_gz(obj: Any, level: int = 1) -> bytes:
    """:func:`encode` plus deterministic gzip framing (``mtime=0``, so
    identical artifacts produce identical files)."""
    return gzip.compress(encode(obj), compresslevel=level, mtime=0)


def decode_gz(blob: bytes) -> Any:
    """Decode a gzip-framed artifact (plain frames also accepted)."""
    if blob[:2] == _GZIP_MAGIC:
        try:
            blob = gzip.decompress(blob)
        except (OSError, EOFError) as exc:
            raise CodecError(f"corrupt gzip framing: {exc}")
    return decode(blob)


def content_digest(blob: bytes) -> str:
    """SHA-256 hex digest of an encoded frame — the envelope integrity
    token for store-mediated result handoff."""
    return hashlib.sha256(blob).hexdigest()
