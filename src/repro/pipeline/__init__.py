"""Unified pipeline API: stages, fingerprints, artifact cache.

The validation harness, the parallel sweep, the check runner and the
CLI all express their work as :class:`Stage` objects resolved through a
:class:`Pipeline`.  Stages declare their inputs; a stage's fingerprint
(SHA-256 over stage name x version x input tokens, with upstream
fingerprints chained in) addresses its artifact in the store, so warm
reruns recompute only the stages whose inputs actually changed.
"""

from .api import Pipeline, StageExecution, as_pipeline
from .codec import CodecError, content_digest, decode, decode_gz, encode, encode_gz
from .fingerprint import cache_token, canonical_json, digest
from .stages import (
    ALL_STAGES,
    CACHE_FORMAT_VERSION,
    CollectStage,
    CompensationStage,
    DistillStage,
    EthernetTrialStage,
    LiveTrialStage,
    ModulatedTrialStage,
    Stage,
)
from .store import ArtifactStore

__all__ = [
    "ALL_STAGES",
    "ArtifactStore",
    "CACHE_FORMAT_VERSION",
    "CodecError",
    "CollectStage",
    "CompensationStage",
    "DistillStage",
    "EthernetTrialStage",
    "LiveTrialStage",
    "ModulatedTrialStage",
    "Pipeline",
    "Stage",
    "StageExecution",
    "as_pipeline",
    "cache_token",
    "canonical_json",
    "content_digest",
    "decode",
    "decode_gz",
    "digest",
    "encode",
    "encode_gz",
]
