"""Content-addressed artifact store.

Artifacts are keyed by their producing stage's fingerprint and stored
as gzip-framed binary codec blobs (:mod:`repro.pipeline.codec`) — on
disk under ``<root>/objects/<fp[:2]>/<fp>.rba`` with a JSON sidecar
describing what produced them, or purely in memory when no root
directory is given.  Both modes round-trip values through the codec,
so a cached artifact is always a *fresh copy*: callers may mutate what
they get back without corrupting the cache.

Writes are atomic (temp file + rename) so a crashed run never leaves a
truncated artifact behind; unreadable artifacts — including objects
from the pickle-era store layout, which used a different extension and
an incompatible stage keyspace — are treated as misses and dropped.

The raw-bytes surface (:meth:`ArtifactStore.put_encoded` /
:meth:`ArtifactStore.raw_get`) lets the parallel sweep's envelope
transport move already-encoded frames between worker and parent
without a decode/re-encode cycle in the middle.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from . import codec

__all__ = ["ArtifactStore"]

_MISS = (False, None)
_RAW_MISS = (False, b"")


class ArtifactStore:
    """Codec-valued, fingerprint-keyed store (disk or memory)."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else None
        self._memory: Dict[str, bytes] = {}
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _object_path(self, fingerprint: str) -> Path:
        return (self.root / "objects" / fingerprint[:2]
                / f"{fingerprint}.rba")

    def _meta_path(self, fingerprint: str) -> Path:
        return self._object_path(fingerprint).with_suffix(".json")

    # ------------------------------------------------------------------
    def contains(self, fingerprint: str) -> bool:
        if self.root is None:
            return fingerprint in self._memory
        return self._object_path(fingerprint).exists()

    def get(self, fingerprint: str) -> Tuple[bool, Any]:
        """(found, value).  Unreadable artifacts count as misses."""
        found, blob = self.raw_get(fingerprint)
        if not found:
            return _MISS
        try:
            return True, codec.decode_gz(blob)
        except codec.CodecError:
            # Corrupt or stale artifact: drop it and recompute.
            self.delete(fingerprint)
            return _MISS

    def raw_get(self, fingerprint: str) -> Tuple[bool, bytes]:
        """(found, encoded frame) without decoding — the envelope
        rehydration path decodes (and times) on its own clock."""
        if self.root is None:
            blob = self._memory.get(fingerprint)
            if blob is None:
                return _RAW_MISS
            return True, blob
        try:
            return True, self._object_path(fingerprint).read_bytes()
        except FileNotFoundError:
            return _RAW_MISS
        except OSError:
            self.delete(fingerprint)
            return _RAW_MISS

    def put(self, fingerprint: str, value: Any,
            meta: Optional[Dict[str, Any]] = None) -> int:
        """Encode and store ``value``; returns the stored byte count."""
        return self.put_encoded(fingerprint, codec.encode_gz(value), meta)

    def put_encoded(self, fingerprint: str, blob: bytes,
                    meta: Optional[Dict[str, Any]] = None) -> int:
        """Store an already-encoded (gzip-framed) codec blob."""
        if self.root is None:
            self._memory[fingerprint] = blob
            return len(blob)
        path = self._object_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, blob)
        if meta is not None:
            doc = dict(meta)
            doc["fingerprint"] = fingerprint
            doc["bytes"] = len(blob)
            doc["codec"] = codec.VERSION
            self._atomic_write(self._meta_path(fingerprint),
                               json.dumps(doc, indent=1).encode("utf-8"))
        return len(blob)

    def delete(self, fingerprint: str) -> None:
        if self.root is None:
            self._memory.pop(fingerprint, None)
            return
        for path in (self._object_path(fingerprint),
                     self._meta_path(fingerprint)):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def fingerprints(self) -> Iterator[str]:
        if self.root is None:
            yield from sorted(self._memory)
            return
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.rba")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def __repr__(self) -> str:  # pragma: no cover
        where = str(self.root) if self.root is not None else "memory"
        return f"<ArtifactStore {where}: {len(self)} artifact(s)>"

    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name + ".")
        try:
            with io.FileIO(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
