"""The pipeline's stages: collect, distill, trials, compensation.

Each stage is a small frozen dataclass naming its inputs; its
fingerprint is the SHA-256 of ``{stage, version, inputs}`` where
upstream stages contribute *their* fingerprints — so changing a
scenario spec, a seed, a distiller parameter or a stage's algorithm
version invalidates exactly the downstream artifacts and nothing else.

``version`` is bumped when a stage's *algorithm* changes behaviour;
everything else about the cache key comes from declared inputs.  The
stages call straight into the validation harness's single-trial
primitives, so a stage computes exactly what the serial harness, the
parallel sweep and the check runner would compute — they are all the
same code path now.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional

from ..core.distill import DistillationResult, Distiller
from ..obs import ObsConfig
from ..scenarios.base import Scenario
from .fingerprint import digest

__all__ = [
    "CACHE_FORMAT_VERSION",
    "Stage",
    "CollectStage",
    "DistillStage",
    "LiveTrialStage",
    "ModulatedTrialStage",
    "EthernetTrialStage",
    "CompensationStage",
    "ALL_STAGES",
]

# Version of the *stored artifact encoding*, folded into every stage
# fingerprint.  Bumped when the on-disk representation changes shape
# (v1: pickle objects; v2: gzip-framed binary codec), so caches written
# by an older layout miss cleanly instead of being misread.  A stage's
# own ``version`` still covers algorithm changes.
CACHE_FORMAT_VERSION = 2


class Stage:
    """One unit of pipeline work with a content-addressed identity."""

    stage_name: ClassVar[str] = "stage"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        """Declared inputs, as fingerprint tokens."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        return digest({"stage": self.stage_name, "version": self.version,
                       "format": CACHE_FORMAT_VERSION,
                       "inputs": self.inputs()})

    def compute(self, pipeline, world_out: Optional[Dict] = None) -> Any:
        """Produce the stage's artifact (``pipeline`` resolves upstreams).

        ``world_out``, when given, receives live simulation state
        (worlds, obs handles) for in-process invariant checking; such
        runs bypass the cache because worlds cannot be stored.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class CollectStage(Stage):
    """One trace-collection traversal of a scenario.

    Artifact: ``{"records": [...], "obs": record | None}``.
    """

    scenario: Scenario
    seed: int
    trial: int
    duration: Optional[float] = None
    obs: Optional[ObsConfig] = None

    stage_name: ClassVar[str] = "collect"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        return {"scenario": self.scenario, "seed": self.seed,
                "trial": self.trial, "duration": self.duration,
                "obs": self.obs}

    def compute(self, pipeline, world_out: Optional[Dict] = None) -> Any:
        from ..validation.harness import collect_trace

        obs_out: Dict[str, Any] = {}
        records = collect_trace(self.scenario, self.seed, self.trial,
                                duration=self.duration, obs=self.obs,
                                obs_out=obs_out, world_out=world_out)
        return {"records": records, "obs": obs_out.get("record")}


@dataclass(frozen=True)
class DistillStage(Stage):
    """Distill a collected trace into a replay trace.

    Artifact: a :class:`~repro.core.distill.DistillationResult`.
    """

    collect: CollectStage
    distiller: Optional[Distiller] = None
    label: str = ""

    stage_name: ClassVar[str] = "distill"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        return {"collect": self.collect.fingerprint(),
                "distiller": self.distiller, "label": self.label}

    def compute(self, pipeline,
                world_out: Optional[Dict] = None) -> DistillationResult:
        from ..validation.harness import distill_scenario_trace

        records = pipeline.run(self.collect)["records"]
        return distill_scenario_trace(records, name=self.label,
                                      distiller=self.distiller)


@dataclass(frozen=True)
class LiveTrialStage(Stage):
    """One live benchmark trial over the scenario's WaveLAN world.

    Artifact: the benchmark's metric sink (plus ``"__obs__"`` when
    observability is configured).
    """

    scenario: Scenario
    runner: Any                  # BenchmarkRunner (cache_token protocol)
    seed: int
    trial: int
    obs: Optional[ObsConfig] = None

    stage_name: ClassVar[str] = "live"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        return {"scenario": self.scenario, "runner": self.runner,
                "seed": self.seed, "trial": self.trial, "obs": self.obs}

    def compute(self, pipeline, world_out: Optional[Dict] = None) -> Any:
        from ..validation.harness import run_live_trial

        return run_live_trial(self.scenario, self.runner, self.seed,
                              self.trial, obs=self.obs,
                              world_out=world_out)


@dataclass(frozen=True)
class ModulatedTrialStage(Stage):
    """One modulated benchmark trial over a distilled replay trace.

    Artifact: the benchmark's metric sink.  The replay comes from the
    upstream :class:`DistillStage`, whose fingerprint chains the whole
    collect → distill ancestry into this stage's key.
    """

    distill: DistillStage
    runner: Any
    seed: int
    trial: int
    compensation: float = 0.0
    obs: Optional[ObsConfig] = None

    stage_name: ClassVar[str] = "modulated"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        return {"distill": self.distill.fingerprint(),
                "runner": self.runner, "seed": self.seed,
                "trial": self.trial, "compensation": self.compensation,
                "obs": self.obs}

    def compute(self, pipeline, world_out: Optional[Dict] = None) -> Any:
        from ..validation.harness import run_modulated_trial

        replay = pipeline.run(self.distill).replay
        return run_modulated_trial(replay, self.runner, self.seed,
                                   self.trial, self.compensation,
                                   obs=self.obs, world_out=world_out)


@dataclass(frozen=True)
class EthernetTrialStage(Stage):
    """The unmodulated Ethernet baseline trial."""

    runner: Any
    seed: int
    trial: int
    obs: Optional[ObsConfig] = None

    stage_name: ClassVar[str] = "ethernet"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        return {"runner": self.runner, "seed": self.seed,
                "trial": self.trial, "obs": self.obs}

    def compute(self, pipeline, world_out: Optional[Dict] = None) -> Any:
        from ..validation.harness import run_ethernet_trial

        return run_ethernet_trial(self.runner, self.seed, self.trial,
                                  obs=self.obs)


@dataclass(frozen=True)
class CompensationStage(Stage):
    """The testbed's measured delay-compensation constant (§3.3)."""

    seed: int = 1729

    stage_name: ClassVar[str] = "compensation"
    version: ClassVar[int] = 1

    def inputs(self) -> Dict[str, Any]:
        return {"seed": self.seed}

    def compute(self, pipeline, world_out: Optional[Dict] = None) -> float:
        from ..core.compensation import measure_modulation_network

        return measure_modulation_network(seed=self.seed).vb


ALL_STAGES = (CollectStage, DistillStage, LiveTrialStage,
              ModulatedTrialStage, EthernetTrialStage, CompensationStage)
