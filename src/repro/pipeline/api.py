"""The pipeline driver: resolve stages through the artifact cache.

``Pipeline.run(stage)`` is the one entry point: look the stage's
fingerprint up in the store, compute on a miss, record what happened.
Every consumer — the serial harness, the parallel sweep (which checks
the cache before shipping a trial to a worker), the check runner and
the CLI — funnels through it, so a ``--cache-dir`` warm rerun
recomputes exactly the stages whose fingerprints changed and loads
everything else from disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .stages import Stage
from .store import ArtifactStore

__all__ = ["Pipeline", "StageExecution", "as_pipeline"]

HIT = "hit"
MISS = "miss"
BYPASS = "bypass"      # computed with live world capture; cache unused


@dataclass
class StageExecution:
    """One resolved stage: what ran (or didn't) and for how long."""

    stage: str
    fingerprint: str
    status: str                 # "hit" | "miss" | "bypass"
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "fingerprint": self.fingerprint,
                "status": self.status, "seconds": self.seconds}


class Pipeline:
    """Stage resolver over a content-addressed :class:`ArtifactStore`."""

    def __init__(self, store: Optional[Union[ArtifactStore, str,
                                             Path]] = None):
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.executions: List[StageExecution] = []

    # ------------------------------------------------------------------
    def run(self, stage: Stage, world_out: Optional[Dict] = None) -> Any:
        """The stage's artifact — cached when possible, computed when not.

        With ``world_out`` the caller needs live simulation state, which
        a cache hit cannot supply: the stage always computes (recorded
        as a bypass, not a miss), but its — picklable — artifact is
        still stored, so downstream stages and later runs reuse it.
        """
        fingerprint = stage.fingerprint()
        if world_out is None:
            found, value = self.store.get(fingerprint)
            if found:
                self._record(stage.stage_name, fingerprint, HIT)
                return value
        started = time.perf_counter()
        value = stage.compute(self, world_out=world_out)
        elapsed = time.perf_counter() - started
        self.store.put(fingerprint, value,
                       meta={"stage": stage.stage_name,
                             "version": stage.version})
        self._record(stage.stage_name, fingerprint,
                     MISS if world_out is None else BYPASS, elapsed)
        return value

    # -- the parallel sweep's split lookup/store protocol ---------------
    def lookup(self, fingerprint: str, stage: str = "") -> tuple:
        """(found, value); a hit is recorded, a miss records nothing
        (the eventual :meth:`store_result` logs the miss)."""
        found, value = self.store.get(fingerprint)
        if found:
            self._record(stage, fingerprint, HIT)
        return found, value

    def store_result(self, fingerprint: str, value: Any,
                     stage: str = "", seconds: float = 0.0) -> None:
        """Record a computed-elsewhere artifact (worker-pool results)."""
        self.store.put(fingerprint, value, meta={"stage": stage})
        self._record(stage, fingerprint, MISS, seconds)

    def record_remote(self, fingerprint: str, stage: str = "",
                      seconds: float = 0.0) -> None:
        """Account for an artifact a worker already wrote to the shared
        store (envelope handoff): a miss happened, but the bytes are on
        disk — nothing to rewrite."""
        self._record(stage, fingerprint, MISS, seconds)

    # ------------------------------------------------------------------
    def _record(self, stage: str, fingerprint: str, status: str,
                seconds: float = 0.0) -> None:
        self.executions.append(StageExecution(stage=stage,
                                              fingerprint=fingerprint,
                                              status=status,
                                              seconds=seconds))

    @property
    def hits(self) -> int:
        return sum(1 for e in self.executions if e.status == HIT)

    @property
    def misses(self) -> int:
        return sum(1 for e in self.executions if e.status == MISS)

    def summary(self, since: int = 0) -> Dict[str, Any]:
        """Hit/miss accounting for executions ``since`` an index."""
        window = self.executions[since:]
        return {
            "hits": sum(1 for e in window if e.status == HIT),
            "misses": sum(1 for e in window if e.status == MISS),
            "bypassed": sum(1 for e in window if e.status == BYPASS),
            "stages": [e.as_dict() for e in window],
        }

    def collector(self):
        """A :class:`~repro.obs.registry.MetricsRegistry` collector over
        this pipeline's hit/miss accounting.  Snapshot-time only, so
        registering it adds nothing to stage execution; register it
        under a fixed key (``"pipeline"``) so executor reuse never
        double-counts."""
        def collect() -> Dict[str, float]:
            return {
                "pipeline.hits": float(self.hits),
                "pipeline.misses": float(self.misses),
                "pipeline.executions": float(len(self.executions)),
            }
        return collect

    def render_summary(self, since: int = 0) -> str:
        s = self.summary(since=since)
        parts = [f"{s['hits']} hit(s)", f"{s['misses']} recomputed"]
        if s["bypassed"]:
            parts.append(f"{s['bypassed']} bypassed")
        label = "warm" if s["misses"] == 0 and s["hits"] else "cold" \
            if s["hits"] == 0 else "mixed"
        return f"pipeline cache: {', '.join(parts)} ({label})"


def as_pipeline(cache: Optional[Union[Pipeline, ArtifactStore, str,
                                      Path]]) -> Optional[Pipeline]:
    """Coerce a cache argument (dir path, store, pipeline) to a Pipeline."""
    if cache is None or isinstance(cache, Pipeline):
        return cache
    return Pipeline(cache)
