"""A BPF-style filter language for trace records (§2.3).

The paper situates its collection machinery relative to "the Berkeley
Packet Filter ... typically used in conjunction with tcpdump".  This
module supplies the analysis half of that comparison: a small,
tcpdump-flavoured expression language compiled to predicates over
:class:`~repro.core.traceformat.PacketRecord`, so collected traces can
be queried the way network people expect:

    icmp and out
    tcp and port 20
    udp and size > 8000
    (icmp and not out) or (tcp and dst 10.0.0.1)
    time >= 120 and time < 160

Grammar::

    expr    := term ("or" term)*
    term    := factor ("and" factor)*
    factor  := "not" factor | "(" expr ")" | primitive
    primitive :=
        "icmp" | "udp" | "tcp"          protocol
      | "in" | "out"                    direction
      | "echo" | "echoreply"            ICMP type
      | "port" NUMBER                   src or dst port
      | "src" VALUE | "dst" VALUE       addresses
      | FIELD CMP NUMBER                numeric comparison, FIELD in
                                        {size, seq, ident, time, rtt}
    CMP := "==" | "!=" | "<" | "<=" | ">" | ">="

``time`` compares against the record timestamp relative to the first
record's (set via :func:`compile_filter`'s ``t0``, or absolute when
omitted).
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Sequence, Union

from ..core.traceformat import DIR_IN, DIR_OUT, PacketRecord
from ..net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP

Predicate = Callable[[PacketRecord], bool]


class FilterError(ValueError):
    """The filter expression could not be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))"
    r"|(?P<cmp>==|!=|<=|>=|<|>)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_.]*)"
    r"|(?P<value>\d+\.\d+\.\d+\.\d+)"   # IP literals before numbers
    r"|(?P<number>\d+(?:\.\d+)?))"
)

_PROTOCOLS = {"icmp": PROTO_ICMP, "udp": PROTO_UDP, "tcp": PROTO_TCP}
_FIELDS = {"size", "seq", "ident", "time", "rtt"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise FilterError(f"cannot tokenize near {rest[:20]!r}")
        token = match.group().strip()
        if token:
            tokens.append(token)
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser producing a predicate tree."""

    def __init__(self, tokens: List[str], t0: float):
        self.tokens = tokens
        self.pos = 0
        self.t0 = t0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise FilterError("unexpected end of expression")
        self.pos += 1
        return token

    # ------------------------------------------------------------------
    def parse(self) -> Predicate:
        pred = self.expr()
        if self.peek() is not None:
            raise FilterError(f"trailing tokens at {self.peek()!r}")
        return pred

    def expr(self) -> Predicate:
        left = self.term()
        while self.peek() == "or":
            self.take()
            right = self.term()
            left = (lambda a, b: lambda r: a(r) or b(r))(left, right)
        return left

    def term(self) -> Predicate:
        left = self.factor()
        while self.peek() == "and":
            self.take()
            right = self.factor()
            left = (lambda a, b: lambda r: a(r) and b(r))(left, right)
        return left

    def factor(self) -> Predicate:
        token = self.peek()
        if token == "not":
            self.take()
            inner = self.factor()
            return lambda r: not inner(r)
        if token == "(":
            self.take()
            inner = self.expr()
            if self.take() != ")":
                raise FilterError("expected ')'")
            return inner
        return self.primitive()

    # ------------------------------------------------------------------
    def primitive(self) -> Predicate:
        token = self.take()
        if token in _PROTOCOLS:
            proto = _PROTOCOLS[token]
            return lambda r: r.proto == proto
        if token == "in":
            return lambda r: r.direction == DIR_IN
        if token == "out":
            return lambda r: r.direction == DIR_OUT
        if token == "echo":
            return lambda r: r.icmp_type == 8
        if token == "echoreply":
            return lambda r: r.icmp_type == 0
        if token == "port":
            port = self._number()
            return lambda r: port in (r.src_port, r.dst_port)
        if token == "src":
            value = self.take()
            return lambda r: r.src == value
        if token == "dst":
            value = self.take()
            return lambda r: r.dst == value
        if token in _FIELDS:
            op = self.take()
            number = self._number()
            return self._comparison(token, op, number)
        raise FilterError(f"unknown primitive {token!r}")

    def _number(self) -> float:
        token = self.take()
        try:
            return float(token)
        except ValueError:
            raise FilterError(f"expected a number, got {token!r}") from None

    def _comparison(self, field: str, op: str, number: float) -> Predicate:
        ops = {
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        if op not in ops:
            raise FilterError(f"bad comparison operator {op!r}")
        compare = ops[op]
        t0 = self.t0

        def value_of(record: PacketRecord) -> float:
            if field == "time":
                return record.timestamp - t0
            return float(getattr(record, field))

        return lambda r: compare(value_of(r), number)


def compile_filter(expression: str, t0: float = 0.0) -> Predicate:
    """Compile a filter expression into a packet-record predicate."""
    tokens = _tokenize(expression)
    if not tokens:
        raise FilterError("empty filter expression")
    return _Parser(tokens, t0).parse()


def filter_records(records: Sequence[Union[PacketRecord, object]],
                   expression: str,
                   relative_time: bool = True) -> List[PacketRecord]:
    """Select the packet records matching ``expression``.

    Non-packet records (device status, loss accounting) never match.
    With ``relative_time``, ``time`` compares seconds from the first
    packet record.
    """
    packets = [r for r in records if isinstance(r, PacketRecord)]
    if not packets:
        return []
    t0 = min(r.timestamp for r in packets) if relative_time else 0.0
    predicate = compile_filter(expression, t0=t0)
    return [r for r in packets if predicate(r)]


def dump_records(records: Sequence[PacketRecord],
                 limit: int = 0) -> str:
    """tcpdump-style one-line-per-packet rendering."""
    lines = []
    shown = records if limit <= 0 else records[:limit]
    for rec in shown:
        direction = "<-" if rec.direction == DIR_IN else "->"
        proto = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp",
                 PROTO_UDP: "udp"}.get(rec.proto, str(rec.proto))
        detail = ""
        if rec.icmp_type == 8:
            detail = f" echo seq={rec.seq}"
        elif rec.icmp_type == 0:
            detail = f" echoreply seq={rec.seq} rtt={rec.rtt * 1e3:.2f}ms"
        elif rec.src_port >= 0:
            detail = f" {rec.src_port}>{rec.dst_port}"
        lines.append(f"{rec.timestamp:12.6f} {direction} {proto:4s} "
                     f"{rec.src}>{rec.dst} len={rec.size}{detail}")
    if limit > 0 and len(records) > limit:
        lines.append(f"... {len(records) - limit} more")
    return "\n".join(lines)
