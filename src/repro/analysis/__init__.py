"""Statistics and rendering for the validation figures/tables."""

from .filter import (
    FilterError,
    compile_filter,
    dump_records,
    filter_records,
)
from .tracestats import (
    ProtocolCounts,
    TraceStatistics,
    analyze_trace,
    interarrival_summary,
    signal_timeline,
    throughput_timeline,
)
from .stats import (
    Summary,
    histogram,
    percentile,
    sigma_distance,
    within_sigma_sum,
)
from .tables import render_histogram, render_series, render_table

__all__ = [
    "FilterError",
    "ProtocolCounts",
    "compile_filter",
    "dump_records",
    "filter_records",
    "Summary",
    "TraceStatistics",
    "analyze_trace",
    "interarrival_summary",
    "signal_timeline",
    "throughput_timeline",
    "histogram",
    "percentile",
    "render_histogram",
    "render_series",
    "render_table",
    "sigma_distance",
    "within_sigma_sum",
]
