"""Collected-trace analysis.

The paper notes that recording device characteristics alongside packets
is "valuable for a better understanding of wireless networks" (§2.3,
their Winter Simulation Conference companion paper).  This module is
that analysis half: summary statistics and timelines computed directly
from collected traces, independent of distillation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.traceformat import (
    DIR_IN,
    DIR_OUT,
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
)
from ..net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .stats import Summary

PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}


@dataclass
class ProtocolCounts:
    """Per-protocol packet/byte counters, split by direction."""

    packets_in: int = 0
    packets_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def packets(self) -> int:
        return self.packets_in + self.packets_out

    @property
    def bytes(self) -> int:
        return self.bytes_in + self.bytes_out


@dataclass
class TraceStatistics:
    """Everything :func:`analyze_trace` computes."""

    duration: float
    first_timestamp: float
    by_protocol: Dict[str, ProtocolCounts]
    rtt: Optional[Summary]                  # echo-reply round trips
    signal: Optional[Summary]
    echo_sent: int
    echo_answered: int
    records_lost: int
    status_samples: int

    @property
    def total_packets(self) -> int:
        return sum(c.packets for c in self.by_protocol.values())

    @property
    def reply_ratio(self) -> float:
        if self.echo_sent == 0:
            return 1.0
        return self.echo_answered / self.echo_sent

    def as_dict(self) -> dict:
        """JSON-friendly view (the `repro analyze --json` payload)."""
        def summary(s: Optional[Summary]) -> Optional[dict]:
            if s is None:
                return None
            return {"mean": s.mean, "std": s.std, "n": s.n}

        return {
            "duration": self.duration,
            "first_timestamp": self.first_timestamp,
            "total_packets": self.total_packets,
            "by_protocol": {
                name: {
                    "packets_in": c.packets_in,
                    "packets_out": c.packets_out,
                    "bytes_in": c.bytes_in,
                    "bytes_out": c.bytes_out,
                } for name, c in sorted(self.by_protocol.items())
            },
            "rtt": summary(self.rtt),
            "signal": summary(self.signal),
            "echo_sent": self.echo_sent,
            "echo_answered": self.echo_answered,
            "reply_ratio": self.reply_ratio,
            "records_lost": self.records_lost,
            "status_samples": self.status_samples,
        }

    def render(self) -> str:
        lines = [f"trace: {self.total_packets} packets over "
                 f"{self.duration:.1f}s"]
        for name in sorted(self.by_protocol):
            c = self.by_protocol[name]
            lines.append(f"  {name:5s} out {c.packets_out:6d} pkts "
                         f"{c.bytes_out:9d} B | in {c.packets_in:6d} pkts "
                         f"{c.bytes_in:9d} B")
        if self.rtt is not None:
            lines.append(f"  echo RTT {self.rtt.mean * 1e3:.2f} ms mean "
                         f"({self.rtt.std * 1e3:.2f} ms std, n={self.rtt.n})")
        lines.append(f"  echoes answered {self.echo_answered}/"
                     f"{self.echo_sent} ({self.reply_ratio * 100:.1f}%)")
        if self.signal is not None:
            lines.append(f"  signal level {self.signal.mean:.1f} mean "
                         f"({self.signal.std:.1f} std, "
                         f"n={self.status_samples})")
        if self.records_lost:
            lines.append(f"  WARNING: {self.records_lost} trace records "
                         f"lost to buffer overruns")
        return "\n".join(lines)


def analyze_trace(records: Sequence[Union[PacketRecord, DeviceStatusRecord,
                                          LostRecordsRecord, dict]]
                  ) -> TraceStatistics:
    """Compute summary statistics for a collected trace."""
    by_protocol: Dict[str, ProtocolCounts] = {}
    rtts: List[float] = []
    signals: List[float] = []
    echo_sent = 0
    answered = set()
    lost = 0
    timestamps: List[float] = []

    for rec in records:
        if isinstance(rec, PacketRecord):
            timestamps.append(rec.timestamp)
            name = PROTO_NAMES.get(rec.proto, f"proto{rec.proto}")
            counts = by_protocol.setdefault(name, ProtocolCounts())
            if rec.direction == DIR_OUT:
                counts.packets_out += 1
                counts.bytes_out += rec.size
            else:
                counts.packets_in += 1
                counts.bytes_in += rec.size
            if rec.icmp_type == 8 and rec.direction == DIR_OUT:
                echo_sent += 1
            if rec.icmp_type == 0 and rec.direction == DIR_IN:
                answered.add(rec.seq)
                if rec.rtt >= 0:
                    rtts.append(rec.rtt)
        elif isinstance(rec, DeviceStatusRecord):
            timestamps.append(rec.timestamp)
            signals.append(rec.signal_level)
        elif isinstance(rec, LostRecordsRecord):
            lost += rec.count

    if not timestamps:
        raise ValueError("trace contains no timestamped records")
    first = min(timestamps)
    return TraceStatistics(
        duration=max(timestamps) - first,
        first_timestamp=first,
        by_protocol=by_protocol,
        rtt=Summary.of(rtts) if rtts else None,
        signal=Summary.of(signals) if signals else None,
        echo_sent=echo_sent,
        echo_answered=len(answered),
        records_lost=lost,
        status_samples=len(signals),
    )


def throughput_timeline(records: Sequence, bucket: float = 5.0,
                        direction: Optional[int] = None
                        ) -> List[Tuple[float, float]]:
    """(bucket start, bits/s) series of traced traffic volume."""
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    packets = [r for r in records if isinstance(r, PacketRecord)
               and (direction is None or r.direction == direction)]
    if not packets:
        return []
    t0 = min(r.timestamp for r in packets)
    buckets: Dict[int, int] = {}
    for rec in packets:
        idx = int((rec.timestamp - t0) / bucket)
        buckets[idx] = buckets.get(idx, 0) + rec.size
    top = max(buckets)
    return [(i * bucket, buckets.get(i, 0) * 8.0 / bucket)
            for i in range(top + 1)]


def signal_timeline(records: Sequence) -> List[Tuple[float, float]]:
    """(time, signal level) series from the device-status records."""
    statuses = [r for r in records if isinstance(r, DeviceStatusRecord)]
    if not statuses:
        return []
    t0 = min(r.timestamp for r in statuses)
    return [(r.timestamp - t0, r.signal_level) for r in statuses]


def interarrival_summary(records: Sequence, proto: int = PROTO_ICMP,
                         direction: int = DIR_IN) -> Optional[Summary]:
    """Summary of packet inter-arrival gaps for one protocol/direction."""
    times = sorted(r.timestamp for r in records
                   if isinstance(r, PacketRecord)
                   and r.proto == proto and r.direction == direction)
    if len(times) < 2:
        return None
    gaps = [b - a for a, b in zip(times, times[1:])]
    return Summary.of(gaps)
