"""Summary statistics and the paper's accuracy criterion.

The paper's quantitative test (§5.2): trace modulation is "accurate
within the bounds of experimental error" when the difference between
the real and modulated means is less than the sum of their standard
deviations.  §5.3 also quantifies misses in units of that sum
("modulated send performance is off by 1.05 times the sum of the
standard deviations").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean and (sample) standard deviation of a set of trials."""

    mean: float
    std: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        values = list(values)
        if not values:
            raise ValueError("no values to summarize")
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            var = sum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(var)
        else:
            std = 0.0
        return cls(mean=mean, std=std, n=n)

    def format(self, digits: int = 2) -> str:
        """The paper's table style: ``161.47 (7.82)``."""
        return f"{self.mean:.{digits}f} ({self.std:.{digits}f})"

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` surface)."""
        return {"mean": self.mean, "std": self.std, "n": self.n}


def sigma_distance(real: Summary, modulated: Summary) -> float:
    """|mean difference| in units of the sum of standard deviations.

    Values below 1.0 meet the paper's accuracy criterion.  When both
    deviations are zero the distance is 0 for equal means, else inf.
    """
    denom = real.std + modulated.std
    diff = abs(real.mean - modulated.mean)
    if denom == 0.0:
        return 0.0 if diff == 0.0 else math.inf
    return diff / denom


def within_sigma_sum(real: Summary, modulated: Summary) -> bool:
    """The paper's criterion for 'accurate within experimental error'."""
    return sigma_distance(real, modulated) < 1.0


def histogram(values: Iterable[float], bins: int = 10) -> List[tuple]:
    """Equal-width histogram: list of (lo, hi, count)."""
    values = sorted(values)
    if not values:
        return []
    lo, hi = values[0], values[-1]
    if hi == lo:
        return [(lo, hi, len(values))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / width))
        counts[idx] += 1
    return [(lo + i * width, lo + (i + 1) * width, c)
            for i, c in enumerate(counts)]


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not values:
        raise ValueError("no values")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
