"""Plain-text table rendering in the paper's style."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "", caption: str = "") -> str:
    """Render an aligned monospace table.

    Every cell is a string; the first column is left-aligned, the rest
    right-aligned (numbers, in practice).
    """
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, "
                             f"expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            if i == 0:
                out.append(cell.ljust(widths[i]))
            else:
                out.append(cell.rjust(widths[i]))
        return "  ".join(out).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    for row in rows:
        lines.append(fmt(row))
    if caption:
        lines.append("")
        lines.append(caption)
    return "\n".join(lines)


def render_series(label: str, xs: Sequence[str],
                  lows: Sequence[float], highs: Sequence[float],
                  unit: str = "", width: int = 40,
                  log_scale: bool = False) -> str:
    """ASCII range-bar chart: one row per X label, a [low..high] bar.

    The textual analogue of the vertical range bars in Figures 2-5.
    """
    import math

    if not (len(xs) == len(lows) == len(highs)):
        raise ValueError("xs, lows, highs must align")
    vals = [v for v in list(lows) + list(highs) if v > 0 or not log_scale]
    if not vals:
        vals = [0.0, 1.0]
    vmin, vmax = min(vals), max(vals)
    if log_scale:
        vmin = max(vmin, 1e-9)
        vmax = max(vmax, vmin * 10)

    def pos(v: float) -> int:
        if log_scale:
            v = max(v, vmin)
            frac = (math.log10(v) - math.log10(vmin)) / \
                   (math.log10(vmax) - math.log10(vmin) or 1.0)
        else:
            frac = (v - vmin) / ((vmax - vmin) or 1.0)
        return int(round(frac * (width - 1)))

    lines = [f"{label} [{unit}]  range {vmin:.3g} .. {vmax:.3g}"
             + ("  (log scale)" if log_scale else "")]
    for x, lo, hi in zip(xs, lows, highs):
        a, b = pos(lo), pos(hi)
        if b < a:
            a, b = b, a
        bar = [" "] * width
        for i in range(a, b + 1):
            bar[i] = "="
        bar[a] = "|"
        bar[b] = "|"
        lines.append(f"  {x:>6} {''.join(bar)}  {lo:.3g}..{hi:.3g}")
    return "\n".join(lines)


def render_histogram(label: str, bins: Sequence[tuple], unit: str = "",
                     width: int = 40) -> str:
    """ASCII histogram from (lo, hi, count) bins (Figure 5 style)."""
    if not bins:
        return f"{label} [{unit}]  (no data)"
    peak = max(c for _, _, c in bins) or 1
    lines = [f"{label} [{unit}]"]
    for lo, hi, count in bins:
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {lo:>9.3g}-{hi:<9.3g} {bar} {count}")
    return "\n".join(lines)
