"""Applications and benchmarks running over the simulated stack."""
