"""The Andrew benchmark over NFS (§4.2, §5.4).

Five phases over a source tree stored on an NFS server:

* **MakeDir** — recreate the directory skeleton under the target;
* **Copy** — copy every source file into the target tree (NFS READs of
  the source, CREATEs + synchronous WRITEs of the copies);
* **ScanDir** — stat every entry in the copied tree (READDIR +
  GETATTR; with caches warm from Copy these are pure status checks);
* **ReadAll** — read every file (warm data caches mean GETATTR
  validations only — the other status-check phase);
* **Make** — compile each .c file (client CPU, the dominant cost on a
  75 MHz 486) writing object files, then link a binary (more
  synchronous WRITE traffic).

The client cache is flushed before each trial, as the paper is careful
to do.  CPU costs are charged on the client per operation; defaults are
calibrated so the Ethernet baseline lands near the paper's Figure 8
final row (124 s total: 2.25 / 12.5 / 7.75 / 17.5 / 84).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..hosts.host import Host
from ..sim import Timeout
from ..workloads.andrewtree import SourceFile, andrew_tree, tree_directories
from .filesystem import FileSystem
from .nfs import NfsClient

PHASES = ("MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "Total")


@dataclass
class AndrewCpuModel:
    """Client CPU charges (seconds) for a 75 MHz 486 laptop."""

    mkdir: float = 0.35
    copy_per_file: float = 0.13
    copy_per_byte: float = 12.0e-6
    scan_per_entry: float = 0.10
    read_per_file: float = 0.21
    read_per_byte: float = 15.0e-6
    compile_per_file: float = 1.75
    compile_per_byte: float = 60.0e-6
    link_fixed: float = 2.0
    link_per_byte: float = 4.0e-6


@dataclass
class AndrewResult:
    """Per-phase elapsed times for one trial."""

    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(v for k, v in self.phase_times.items() if k != "Total")


class AndrewBenchmark:
    """Runs the five phases from an NFS client host."""

    OBJECT_RATIO = 1.6       # object file size vs. source size
    BINARY_BYTES = 320 * 1024

    def __init__(self, client: NfsClient, tree: Optional[List[SourceFile]] = None,
                 source_root: str = "src", target_root: str = "work",
                 cpu: Optional[AndrewCpuModel] = None):
        self.client = client
        self.tree = tree if tree is not None else andrew_tree()
        self.source_root = source_root
        self.target_root = target_root
        self.cpu = cpu or AndrewCpuModel()

    # ------------------------------------------------------------------
    @classmethod
    def populate_server(cls, fs: FileSystem, tree: Optional[List[SourceFile]] = None,
                        source_root: str = "src") -> List[SourceFile]:
        """Install the source tree directly into the server filesystem."""
        tree = tree if tree is not None else andrew_tree()
        fs.makedirs(source_root)
        for f in tree:
            fs.create_file(f"{source_root}/{f.path}", f.size)
        return tree

    # ------------------------------------------------------------------
    def run(self) -> Generator[Any, Any, AndrewResult]:
        """Coroutine: one full trial (cold caches)."""
        self.client.flush_caches()
        result = AndrewResult()
        for phase, body in (("MakeDir", self._makedir),
                            ("Copy", self._copy),
                            ("ScanDir", self._scandir),
                            ("ReadAll", self._readall),
                            ("Make", self._make)):
            start = self.client.host.sim.now
            yield from body()
            result.phase_times[phase] = self.client.host.sim.now - start
        result.phase_times["Total"] = result.total
        return result

    # ------------------------------------------------------------------
    def _makedir(self) -> Generator[Any, Any, None]:
        root_dir = yield from self._ensure_root()
        self._target_ids: Dict[str, int] = {"": root_dir}
        for subdir in tree_directories(self.tree):
            yield Timeout(self.cpu.mkdir)
            dir_id = yield from self.client.mkdir(root_dir, subdir)
            self._target_ids[subdir] = dir_id

    def _ensure_root(self) -> Generator[Any, Any, int]:
        root = self.client.root_fh
        try:
            dir_id = yield from self.client.lookup(root, self.target_root)
        except Exception:
            dir_id = yield from self.client.mkdir(root, self.target_root)
        return dir_id

    def _copy(self) -> Generator[Any, Any, None]:
        src_root = yield from self.client.walk(self.source_root)
        self._src_ids: Dict[str, int] = {}
        self._file_ids: Dict[str, int] = {}
        for f in self.tree:
            yield Timeout(self.cpu.copy_per_file + f.size * self.cpu.copy_per_byte)
            src_id = yield from self._walk_from(src_root, f.path, self._src_ids)
            yield from self.client.read_file(src_id)
            subdir, _, name = f.path.rpartition("/")
            dir_id = self._target_ids[subdir]
            new_id = yield from self.client.create(dir_id, name)
            yield from self.client.write_file(new_id, f.size)
            self._file_ids[f.path] = new_id

    def _walk_from(self, base: int, path: str,
                   cache: Dict[str, int]) -> Generator[Any, Any, int]:
        if path in cache:
            return cache[path]
        fileid = base
        for part in path.split("/"):
            fileid = yield from self.client.lookup(fileid, part)
        cache[path] = fileid
        return fileid

    def _scandir(self) -> Generator[Any, Any, None]:
        root_dir = self._target_ids[""]
        stack = [root_dir]
        while stack:
            dir_id = stack.pop()
            entries = yield from self.client.readdir(dir_id)
            for _, fileid in entries:
                yield Timeout(self.cpu.scan_per_entry)
                attrs = yield from self.client.getattr(fileid)
                if attrs.kind == "dir":
                    stack.append(fileid)

    def _readall(self) -> Generator[Any, Any, None]:
        for f in self.tree:
            yield Timeout(self.cpu.read_per_file + f.size * self.cpu.read_per_byte)
            yield from self.client.read_file(self._file_ids[f.path])

    def _make(self) -> Generator[Any, Any, None]:
        object_bytes_total = 0
        for f in self.tree:
            if not f.compiles:
                continue
            # Re-read the source (warm cache: a GETATTR validation).
            yield from self.client.read_file(self._file_ids[f.path])
            yield Timeout(self.cpu.compile_per_file
                          + f.size * self.cpu.compile_per_byte)
            subdir, _, name = f.path.rpartition("/")
            obj_name = name.replace(".c", ".o")
            obj_size = int(f.size * self.OBJECT_RATIO)
            object_bytes_total += obj_size
            obj_id = yield from self.client.create(self._target_ids[subdir],
                                                   obj_name)
            yield from self.client.write_file(obj_id, obj_size)
        # Link step: objects are cache-fresh; write the binary.
        yield Timeout(self.cpu.link_fixed
                      + object_bytes_total * self.cpu.link_per_byte)
        bin_id = yield from self.client.create(self._target_ids[""], "a.out")
        yield from self.client.write_file(bin_id, self.BINARY_BYTES)

    # populated during run()
    _target_ids: Dict[str, int]
    _src_ids: Dict[str, int]
    _file_ids: Dict[str, int]
