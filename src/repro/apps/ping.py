"""The modified ping workload (§3.1.1, §3.2.2).

Each second the workload emits a group of three ICMP ECHO packets in
two stages:

1. one ECHO with a *small* payload (size ``s1``); when its ECHOREPLY
   arrives,
2. two ECHOs with a *large* payload (size ``s2``), sent back-to-back.

The small/large pair separates latency from per-byte cost (Eqs. 5–6);
the back-to-back pair exposes the bottleneck's per-byte cost through
queueing (Eqs. 7–8).  Sequence numbers are ``3g``, ``3g+1``, ``3g+2``
for group ``g`` so the distiller can regroup and count losses.

Payload timestamps come from the *host's* clock (which may drift), so
all round-trip times are single-clock measurements — the paper's
workaround for the absence of synchronized clocks.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..hosts.host import Host
from ..sim import Signal, Timeout, signal_or_timeout

DEFAULT_SMALL_PAYLOAD = 32     # bytes of ICMP payload (s1 = 28 + this)
DEFAULT_LARGE_PAYLOAD = 1400   # bytes of ICMP payload (s2 = 28 + this)
DEFAULT_IDENT = 4097           # "pid" of the ping process


class ModifiedPing:
    """Runs the two-stage ping workload from a host."""

    def __init__(self, host: Host, target: str,
                 ident: int = DEFAULT_IDENT,
                 interval: float = 1.0,
                 small_payload: int = DEFAULT_SMALL_PAYLOAD,
                 large_payload: int = DEFAULT_LARGE_PAYLOAD,
                 stage1_timeout: float = 0.8):
        self.host = host
        self.target = target
        self.ident = ident
        self.interval = interval
        self.small_payload = small_payload
        self.large_payload = large_payload
        self.stage1_timeout = stage1_timeout
        self.groups_sent = 0
        self.stage1_timeouts = 0
        self.echoes_sent = 0
        self.replies_seen = 0
        self._reply_signals: Dict[int, Signal] = {}
        host.icmp.on_echo_reply(ident, self._on_reply)

    # ------------------------------------------------------------------
    def _on_reply(self, packet, now: float) -> None:
        self.replies_seen += 1
        signal = self._reply_signals.pop(packet.icmp.seq, None)
        if signal is not None:
            signal.fire(now)

    def _send(self, seq: int, payload: int) -> None:
        self.host.icmp.send_echo(
            self.host.address, self.target, self.ident, seq, payload,
            meta={"echo_sent_at_host": self.host.kernel.timestamp()},
        )
        self.echoes_sent += 1

    # ------------------------------------------------------------------
    def run(self, duration: float) -> Generator[Any, Any, None]:
        """Process body: emit groups for ``duration`` seconds."""
        sim = self.host.sim
        start = sim.now
        group = 0
        while sim.now - start < duration:
            group_start = sim.now
            seq = 3 * group
            # Stage 1: small probe; wait for its reply (bounded).
            waiter = Signal(sim, f"ping:{seq}")
            self._reply_signals[seq] = waiter
            self._send(seq, self.small_payload)
            result = yield signal_or_timeout(sim, waiter, self.stage1_timeout)
            self._reply_signals.pop(seq, None)
            if result is not None:
                # Stage 2: two large probes back-to-back.
                self._send(seq + 1, self.large_payload)
                self._send(seq + 2, self.large_payload)
            else:
                self.stage1_timeouts += 1
            self.groups_sent += 1
            group += 1
            elapsed = sim.now - group_start
            if elapsed < self.interval:
                yield Timeout(self.interval - elapsed)

    def detach(self) -> None:
        """Remove the ICMP handler (after the run completes)."""
        self.host.icmp.on_echo_reply(self.ident, None)
