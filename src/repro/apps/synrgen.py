"""SynRGen-style synthetic file-reference users (§4.1.4).

The Chatterbox scenario surrounds the traced laptop with five other
laptops "continuously executing a workload produced by SynRGen, a
synthetic file reference generator ... a user in an edit-debug cycle on
files stored on a remote NFS file server".

Each user loops: pick a source file, *edit* it (interleaved reads and
small writes with think times), then *debug* (re-read several related
files, compile pause, write an object) — producing the bursty NFS/UDP
traffic that congests the shared wireless medium even though every
station's signal is strong.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from ..hosts.host import Host
from ..protocols.rpc import RpcTimeout
from ..sim import Timeout
from ..sim.rng import derive_seed
from .filesystem import FileSystem
from .nfs import NfsClient, NfsError


@dataclass
class SynRGenConfig:
    """Knobs for one synthetic user."""

    files: int = 12                   # files in the user's working set
    mean_file_bytes: int = 14 * 1024
    edit_reads: int = 4               # reads while editing
    edit_writes: int = 2              # saves per edit
    think_mean: float = 0.6           # seconds between actions
    compile_pause: float = 1.2        # "debugger/compiler running"
    burst_files: int = 6              # files re-read in a debug burst


class SynRGenUser:
    """One edit-debug-cycle user bound to an NFS client."""

    def __init__(self, host: Host, client: NfsClient, user_id: int,
                 seed: int = 0, config: Optional[SynRGenConfig] = None):
        self.host = host
        self.client = client
        self.user_id = user_id
        self.config = config or SynRGenConfig()
        self.rng = random.Random(derive_seed(seed, f"synrgen:{user_id}"))
        self.cycles = 0
        self.errors = 0
        self._file_ids: List[int] = []

    # ------------------------------------------------------------------
    @classmethod
    def populate_server(cls, fs: FileSystem, user_id: int,
                        config: Optional[SynRGenConfig] = None,
                        seed: int = 0) -> None:
        """Create the user's working set directly in the server fs."""
        config = config or SynRGenConfig()
        rng = random.Random(derive_seed(seed, f"synrgen-tree:{user_id}"))
        fs.makedirs(f"synrgen/u{user_id}")
        for i in range(config.files):
            size = max(512, int(rng.expovariate(1.0 / config.mean_file_bytes)))
            fs.create_file(f"synrgen/u{user_id}/f{i}.c", size)

    # ------------------------------------------------------------------
    def run(self, duration: float) -> Generator[Any, Any, None]:
        """Process body: edit-debug cycles for ``duration`` seconds."""
        sim = self.host.sim
        start = sim.now
        try:
            yield from self._open_working_set()
        except (NfsError, RpcTimeout):
            self.errors += 1
            return
        while sim.now - start < duration:
            try:
                yield from self._edit_cycle()
                yield from self._debug_cycle()
                self.cycles += 1
            except (NfsError, RpcTimeout):
                self.errors += 1
                yield Timeout(self._think())

    def _open_working_set(self) -> Generator[Any, Any, None]:
        base = yield from self.client.walk(f"synrgen/u{self.user_id}")
        entries = yield from self.client.readdir(base)
        self._file_ids = [fid for _, fid in entries]

    def _edit_cycle(self) -> Generator[Any, Any, None]:
        fid = self.rng.choice(self._file_ids)
        for _ in range(self.config.edit_reads):
            yield from self.client.read_file(fid)
            yield Timeout(self._think())
        for _ in range(self.config.edit_writes):
            attrs = yield from self.client.getattr(fid)
            delta = self.rng.randint(-256, 512)
            new_size = max(512, attrs.size + delta)
            # Editors save by truncating and rewriting the file.
            yield from self.client.setattr(fid, 0)
            yield from self.client.write_file(fid, new_size)
            yield Timeout(self._think())

    def _debug_cycle(self) -> Generator[Any, Any, None]:
        burst = self.rng.sample(self._file_ids,
                                min(self.config.burst_files,
                                    len(self._file_ids)))
        for fid in burst:
            yield from self.client.read_file(fid)
        yield Timeout(self.config.compile_pause)
        fid = self.rng.choice(self._file_ids)
        attrs = yield from self.client.getattr(fid)
        yield from self.client.write_file(fid, int(attrs.size * 1.5))

    def _think(self) -> float:
        return self.rng.expovariate(1.0 / self.config.think_mean)
