"""NFS over RPC/UDP (§4.2).

An NFSv2-shaped file service: stateless server procedures over UDP RPC
with client-side retransmission, an attribute cache and whole-file data
caching on the client.  The traffic mix this produces is what the
Andrew benchmark's phases exercise:

* **status checks** — GETATTR/LOOKUP, small messages both ways (the
  warm-cache ScanDir/ReadAll phases send almost nothing else — and
  these are the short messages the modulator under-delays, §5.4);
* **data exchanges** — READ replies and WRITE calls carrying up to 8 KB
  of data (NFSv2 transfer size).

Writes are synchronous (NFSv2 semantics): the client waits for each
WRITE reply, so write-heavy phases are round-trip-bound on slow links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..hosts.host import Host
from ..protocols.rpc import RpcClient, RpcServer
from ..sim import Timeout
from .disk import Disk
from .filesystem import FileAttributes, FileSystem, FsError

NFS_PORT = 2049
TRANSFER_SIZE = 8192          # NFSv2 rsize/wsize
FH_BYTES = 32
ATTR_BYTES = 68
NAME_BYTES = 16               # average encoded component name
DIRENT_BYTES = 24
ATTR_CACHE_TTL = 6.0          # seconds; classic acregmin..acregmax midpoint


@dataclass
class NfsStats:
    """Per-client operation counters."""

    getattr: int = 0
    lookup: int = 0
    read: int = 0
    write: int = 0
    create: int = 0
    mkdir: int = 0
    readdir: int = 0
    remove: int = 0
    setattr: int = 0
    rename: int = 0
    cache_hits: int = 0

    def total_calls(self) -> int:
        return (self.getattr + self.lookup + self.read + self.write
                + self.create + self.mkdir + self.readdir + self.remove
                + self.setattr + self.rename)


class NfsServer:
    """Stateless NFS procedures over an RPC server."""

    def __init__(self, host: Host, fs: Optional[FileSystem] = None,
                 disk: Optional[Disk] = None, cpu_per_call: float = 0.8e-3):
        self.host = host
        self.fs = fs or FileSystem()
        self.disk = disk or Disk(host.sim)
        self.rpc = RpcServer(host.sim, host.udp, host.address, NFS_PORT,
                             self._dispatch, service_time=cpu_per_call)

    def start(self) -> None:
        self.host.spawn(self.rpc.loop(), name="nfsd")

    # ------------------------------------------------------------------
    def _dispatch(self, proc: str, args: Any) -> Tuple[Any, int, float]:
        now = self.host.sim.now
        try:
            if proc == "getattr":
                attrs = self.fs.getattr(args)
                return ("ok", attrs), ATTR_BYTES, 0.0
            if proc == "lookup":
                dir_id, name = args
                fileid = self.fs.lookup(dir_id, name)
                return ("ok", fileid, self.fs.getattr(fileid)), \
                    FH_BYTES + ATTR_BYTES, 0.0
            if proc == "read":
                fileid, offset, count = args
                got = self.fs.read(fileid, offset, count)
                disk_time = got / self.disk.read_rate
                return ("ok", got, self.fs.getattr(fileid)), \
                    ATTR_BYTES + got, disk_time
            if proc == "write":
                fileid, offset, count = args
                self.fs.write(fileid, offset, count, now)
                disk_time = count / self.disk.write_rate
                return ("ok", self.fs.getattr(fileid)), ATTR_BYTES, disk_time
            if proc == "create":
                dir_id, name = args
                fileid = self.fs.create(dir_id, name, now)
                return ("ok", fileid, self.fs.getattr(fileid)), \
                    FH_BYTES + ATTR_BYTES, 0.0
            if proc == "mkdir":
                dir_id, name = args
                fileid = self.fs.mkdir(dir_id, name, now)
                return ("ok", fileid, self.fs.getattr(fileid)), \
                    FH_BYTES + ATTR_BYTES, 0.0
            if proc == "readdir":
                entries = self.fs.readdir(args)
                return ("ok", entries), 16 + DIRENT_BYTES * len(entries), 0.0
            if proc == "remove":
                dir_id, name = args
                self.fs.remove(dir_id, name, now)
                return ("ok",), 16, 0.0
            if proc == "setattr":
                fileid, size = args
                self.fs.truncate(fileid, size, now)
                return ("ok", self.fs.getattr(fileid)), ATTR_BYTES, 0.0
            if proc == "rename":
                from_dir, from_name, to_dir, to_name = args
                self.fs.rename(from_dir, from_name, to_dir, to_name, now)
                return ("ok",), 16, 0.0
            return ("error", f"bad procedure {proc}"), 16, 0.0
        except FsError as err:
            return ("error", str(err)), 16, 0.0


class NfsError(Exception):
    """The server returned an error status."""


class NfsClient:
    """NFS client with attribute, name and whole-file data caches."""

    def __init__(self, host: Host, server_addr: str,
                 attr_ttl: float = ATTR_CACHE_TTL):
        self.host = host
        self.rpc = RpcClient(host.sim, host.udp, host.address,
                             server_addr, NFS_PORT)
        host.spawn(self.rpc.dispatcher(), name="nfsiod")
        self.attr_ttl = attr_ttl
        self.stats = NfsStats()
        self.root_fh = 1
        self._attr_cache: Dict[int, Tuple[float, FileAttributes]] = {}
        self._name_cache: Dict[Tuple[int, str], int] = {}
        # fileid -> mtime at which the whole file was cached
        self._data_cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def flush_caches(self) -> None:
        """Cold-cache the client (done before each Andrew trial, §4.2)."""
        self._attr_cache.clear()
        self._name_cache.clear()
        self._data_cache.clear()

    # ------------------------------------------------------------------
    # Primitive procedures
    # ------------------------------------------------------------------
    def _call(self, proc: str, args: Any,
              arg_bytes: int) -> Generator[Any, Any, Any]:
        result = yield from self.rpc.call(proc, args, arg_bytes)
        if not isinstance(result, tuple) or result[0] != "ok":
            detail = result[1] if isinstance(result, tuple) and len(result) > 1 \
                else result
            raise NfsError(f"{proc}: {detail}")
        return result

    def getattr(self, fileid: int,
                force: bool = False) -> Generator[Any, Any, FileAttributes]:
        cached = self._attr_cache.get(fileid)
        now = self.host.sim.now
        if cached is not None and not force and now - cached[0] < self.attr_ttl:
            self.stats.cache_hits += 1
            return cached[1]
        self.stats.getattr += 1
        result = yield from self._call("getattr", fileid, FH_BYTES)
        attrs = result[1]
        self._attr_cache[fileid] = (now, attrs)
        return attrs

    def lookup(self, dir_id: int, name: str) -> Generator[Any, Any, int]:
        key = (dir_id, name)
        if key in self._name_cache:
            self.stats.cache_hits += 1
            return self._name_cache[key]
        self.stats.lookup += 1
        result = yield from self._call("lookup", (dir_id, name),
                                       FH_BYTES + NAME_BYTES)
        fileid, attrs = result[1], result[2]
        self._name_cache[key] = fileid
        self._attr_cache[fileid] = (self.host.sim.now, attrs)
        return fileid

    def readdir(self, dir_id: int) -> Generator[Any, Any, List[Tuple[str, int]]]:
        self.stats.readdir += 1
        result = yield from self._call("readdir", dir_id, FH_BYTES + 8)
        for name, fileid in result[1]:
            self._name_cache[(dir_id, name)] = fileid
        return result[1]

    def create(self, dir_id: int, name: str) -> Generator[Any, Any, int]:
        self.stats.create += 1
        result = yield from self._call("create", (dir_id, name),
                                       FH_BYTES + NAME_BYTES + ATTR_BYTES)
        fileid = result[1]
        self._name_cache[(dir_id, name)] = fileid
        self._attr_cache[fileid] = (self.host.sim.now, result[2])
        return fileid

    def mkdir(self, dir_id: int, name: str) -> Generator[Any, Any, int]:
        self.stats.mkdir += 1
        result = yield from self._call("mkdir", (dir_id, name),
                                       FH_BYTES + NAME_BYTES + ATTR_BYTES)
        fileid = result[1]
        self._name_cache[(dir_id, name)] = fileid
        self._attr_cache[fileid] = (self.host.sim.now, result[2])
        return fileid

    def remove(self, dir_id: int, name: str) -> Generator[Any, Any, None]:
        self.stats.remove += 1
        yield from self._call("remove", (dir_id, name),
                              FH_BYTES + NAME_BYTES)
        self._name_cache.pop((dir_id, name), None)

    def setattr(self, fileid: int,
                size: int) -> Generator[Any, Any, FileAttributes]:
        """Truncate/extend a file (the SETATTR size case)."""
        self.stats.setattr += 1
        result = yield from self._call("setattr", (fileid, size),
                                       FH_BYTES + ATTR_BYTES)
        attrs = result[1]
        self._attr_cache[fileid] = (self.host.sim.now, attrs)
        self._data_cache.pop(fileid, None)  # cached contents now stale
        return attrs

    def rename(self, from_dir: int, from_name: str, to_dir: int,
               to_name: str) -> Generator[Any, Any, None]:
        self.stats.rename += 1
        yield from self._call("rename",
                              (from_dir, from_name, to_dir, to_name),
                              2 * (FH_BYTES + NAME_BYTES))
        fileid = self._name_cache.pop((from_dir, from_name), None)
        if fileid is not None:
            self._name_cache[(to_dir, to_name)] = fileid

    # ------------------------------------------------------------------
    # File-level operations
    # ------------------------------------------------------------------
    def walk(self, path: str) -> Generator[Any, Any, int]:
        """Component-by-component lookup from the root."""
        fileid = self.root_fh
        for part in FileSystem.split(path):
            fileid = yield from self.lookup(fileid, part)
        return fileid

    def read_file(self, fileid: int) -> Generator[Any, Any, int]:
        """Read a whole file; warm cache turns this into a status check."""
        attrs = yield from self.getattr(fileid)
        cached_mtime = self._data_cache.get(fileid)
        if cached_mtime is not None and cached_mtime >= attrs.mtime:
            self.stats.cache_hits += 1
            return attrs.size
        offset = 0
        while offset < attrs.size:
            count = min(TRANSFER_SIZE, attrs.size - offset)
            self.stats.read += 1
            yield from self._call("read", (fileid, offset, count),
                                  FH_BYTES + 16)
            offset += count
        self._data_cache[fileid] = attrs.mtime
        return attrs.size

    def write_file(self, fileid: int, size: int) -> Generator[Any, Any, None]:
        """Synchronous whole-file write in 8 KB WRITEs."""
        offset = 0
        while offset < size:
            count = min(TRANSFER_SIZE, size - offset)
            self.stats.write += 1
            result = yield from self._call("write", (fileid, offset, count),
                                           FH_BYTES + 16 + count)
            attrs = result[1]
            self._attr_cache[fileid] = (self.host.sim.now, attrs)
            offset += count
        # We hold the freshest copy.
        self._data_cache[fileid] = self._attr_cache[fileid][1].mtime

    def close(self) -> None:
        self.rpc.close()
