"""FTP: single-file disk-to-disk transfer over TCP (§4.2).

The benchmark transfers a 10 MB file both to ("send"/STOR) and from
("recv"/RETR) the laptop.  It is the most network-limited benchmark and
— because send and receive are independent — the one that exposes the
distillation symmetry assumption (§5.3).

The model keeps the protocol shape that matters: a short control
exchange on port 21, then a bulk transfer on a separate data
connection, the sender paced by its disk and the socket buffer, the
receiver writing through its disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..hosts.host import Host
from ..protocols.tcp import MessageChannel, TCPConnection, TCPError
from .disk import Disk

# Disk calibration: the paper's Ethernet baseline (send 20.5 s, recv
# 18.8 s for 10 MB disk-to-disk) is host-limited, so the laptop's disk
# paces the transfer; the Pentium-90 server's disk is faster.
def laptop_disk(sim) -> Disk:
    """The ThinkPad 701c disk, calibrated to the paper's Ethernet row."""
    return Disk(sim, read_rate=565e3, write_rate=620e3, op_overhead=1.5e-3)


def server_disk(sim) -> Disk:
    """The Pentium-90 server disk (faster; never the bottleneck)."""
    return Disk(sim, read_rate=1.6e6, write_rate=1.4e6, op_overhead=1e-3)


FTP_CONTROL_PORT = 21
FTP_DATA_PORT = 20
CHUNK = 8192
CONTROL_MSG_BYTES = 48
DEFAULT_FILE_BYTES = 10 * 1024 * 1024


@dataclass
class FtpResult:
    """Outcome of one transfer."""

    direction: str          # "send" (laptop->server) or "recv"
    nbytes: int
    started: float
    finished: float
    retransmits: int

    @property
    def elapsed(self) -> float:
        return self.finished - self.started

    @property
    def throughput_bps(self) -> float:
        return self.nbytes * 8.0 / self.elapsed if self.elapsed > 0 else 0.0


class FtpServer:
    """Accepts one control session at a time and serves STOR/RETR."""

    def __init__(self, host: Host, disk: Optional[Disk] = None):
        self.host = host
        self.disk = disk or server_disk(host.sim)
        self.transfers = 0
        self._running = True

    def start(self) -> None:
        self.host.spawn(self._serve(), name="ftpd")

    def _serve(self) -> Generator[Any, Any, None]:
        control = self.host.tcp.listen(self.host.address, FTP_CONTROL_PORT)
        data_listener = self.host.tcp.listen(self.host.address, FTP_DATA_PORT)
        while self._running:
            conn = yield from control.accept()
            channel = MessageChannel(conn)
            try:
                yield from self._session(channel, data_listener)
            except TCPError:
                pass  # client died mid-session; await the next one
            yield from conn.close_and_wait()

    def _session(self, channel: MessageChannel,
                 data_listener) -> Generator[Any, Any, None]:
        while True:
            msg = yield from channel.recv_message()
            if msg is None:
                break
            command, _ = msg
            verb = command[0]
            if verb in ("USER", "TYPE"):
                channel.send_message(CONTROL_MSG_BYTES, ("OK",))
            elif verb == "STOR":
                channel.send_message(CONTROL_MSG_BYTES, ("READY",))
                data = yield from data_listener.accept()
                yield from self._receive_file(data)
                channel.send_message(CONTROL_MSG_BYTES, ("DONE",))
            elif verb == "RETR":
                nbytes = command[1]
                channel.send_message(CONTROL_MSG_BYTES, ("READY",))
                data = yield from data_listener.accept()
                yield from self._send_file(data, nbytes)
                channel.send_message(CONTROL_MSG_BYTES, ("DONE",))
            elif verb == "QUIT":
                channel.send_message(CONTROL_MSG_BYTES, ("BYE",))
                break

    def _receive_file(self, conn: TCPConnection) -> Generator[Any, Any, None]:
        while True:
            got = yield from conn.recv_some()
            if got == 0:
                break
            yield from self.disk.write(got)
        self.transfers += 1
        yield from conn.close_and_wait()

    def _send_file(self, conn: TCPConnection,
                   nbytes: int) -> Generator[Any, Any, None]:
        remaining = nbytes
        while remaining > 0:
            chunk = min(CHUNK, remaining)
            yield from self.disk.read(chunk)
            yield from conn.send_wait(chunk)
            remaining -= chunk
        yield from conn.drain()
        yield from conn.close_and_wait()
        self.transfers += 1

    def stop(self) -> None:
        self._running = False


class FtpClient:
    """Drives transfers from the laptop side."""

    def __init__(self, host: Host, server_addr: str,
                 disk: Optional[Disk] = None):
        self.host = host
        self.server_addr = server_addr
        self.disk = disk or laptop_disk(host.sim)

    def transfer(self, direction: str,
                 nbytes: int = DEFAULT_FILE_BYTES
                 ) -> Generator[Any, Any, FtpResult]:
        """Coroutine: run one full transfer; returns an :class:`FtpResult`."""
        if direction not in ("send", "recv"):
            raise ValueError(f"direction must be send/recv, got {direction!r}")
        started = self.host.sim.now
        control = yield from self.host.tcp.connect(
            self.host.address, self.server_addr, FTP_CONTROL_PORT)
        channel = MessageChannel(control)
        # Login preamble.
        for verb in ("USER", "TYPE"):
            channel.send_message(CONTROL_MSG_BYTES, (verb,))
            yield from channel.recv_message()
        if direction == "send":
            channel.send_message(CONTROL_MSG_BYTES, ("STOR", nbytes))
            yield from channel.recv_message()  # READY
            data = yield from self.host.tcp.connect(
                self.host.address, self.server_addr, FTP_DATA_PORT)
            remaining = nbytes
            while remaining > 0:
                chunk = min(CHUNK, remaining)
                yield from self.disk.read(chunk)
                yield from data.send_wait(chunk)
                remaining -= chunk
            yield from data.drain()
            yield from data.close_and_wait()
            yield from channel.recv_message()  # DONE
            retransmits = data.retransmits
        else:
            channel.send_message(CONTROL_MSG_BYTES, ("RETR", nbytes))
            yield from channel.recv_message()  # READY
            data = yield from self.host.tcp.connect(
                self.host.address, self.server_addr, FTP_DATA_PORT)
            while True:
                got = yield from data.recv_some()
                if got == 0:
                    break
                yield from self.disk.write(got)
            yield from data.close_and_wait()
            yield from channel.recv_message()  # DONE
            retransmits = data.retransmits
        channel.send_message(CONTROL_MSG_BYTES, ("QUIT",))
        yield from channel.recv_message()
        yield from control.close_and_wait()
        return FtpResult(direction=direction, nbytes=nbytes, started=started,
                         finished=self.host.sim.now, retransmits=retransmits)
