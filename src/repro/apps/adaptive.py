"""An adaptive application for synthetic-trace experiments (§6).

The paper's conclusion cites its companion work (Odyssey, SOSP '97):
*"a recent paper reports on the use of synthetic traces to explore the
behavior of an adaptive mobile system in response to step and impulse
variations in bandwidth."*  This module provides that adaptive system:

* a :class:`BandwidthEstimator` — EWMA over observed fetch throughput,
  the standard Odyssey-style resource monitor;
* an :class:`AdaptiveFetcher` — a client that fetches one data item per
  period at the highest *fidelity* (size tier) whose estimated fetch
  time fits the period's time budget, upgrading and downgrading as the
  modulated network's bandwidth moves.

The agility benchmark (``benchmarks/bench_extension_agility.py``)
subjects it to step and impulse traces and measures adaptation lag —
the experiment trace modulation was built to make repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..hosts.host import Host
from ..protocols.tcp import MessageChannel, TCPError
from ..sim import Timeout

FIDELITY_BYTES: Dict[str, int] = {
    "full": 96_000,
    "medium": 32_000,
    "low": 8_000,
}
FIDELITY_ORDER = ("full", "medium", "low")

FETCH_PORT = 8800
REQUEST_BYTES = 96


class BandwidthEstimator:
    """Asymmetric EWMA throughput estimator.

    Bad news is weighted heavily (``alpha_down``) so a bandwidth
    collapse is believed after a single slow fetch; good news is
    averaged in cautiously (``alpha``) so one lucky fetch does not
    trigger a doomed upgrade — the standard shape of adaptive-system
    resource monitors.
    """

    def __init__(self, alpha: float = 0.4, alpha_down: float = 0.8,
                 initial_bps: float = 1e6):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha out of range: {alpha}")
        if not 0.0 < alpha_down <= 1.0:
            raise ValueError(f"alpha_down out of range: {alpha_down}")
        self.alpha = alpha
        self.alpha_down = alpha_down
        self.estimate_bps = initial_bps
        self.samples = 0

    def observe(self, nbytes: int, elapsed: float) -> float:
        """Feed one fetch observation; returns the updated estimate."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        sample = nbytes * 8.0 / elapsed
        if self.samples == 0:
            self.estimate_bps = sample
        else:
            gain = self.alpha_down if sample < self.estimate_bps else self.alpha
            self.estimate_bps += gain * (sample - self.estimate_bps)
        self.samples += 1
        return self.estimate_bps

    def predicted_fetch_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / max(self.estimate_bps, 1.0)


@dataclass
class FetchRecord:
    """One period of the adaptive loop."""

    started: float
    fidelity: str
    nbytes: int
    elapsed: float
    estimate_bps: float
    missed_deadline: bool


@dataclass
class AdaptiveRun:
    """Everything the agility analysis needs."""

    records: List[FetchRecord] = field(default_factory=list)

    def fidelity_at(self, t: float) -> Optional[str]:
        """The fidelity chosen by the period covering time ``t``."""
        chosen = None
        for rec in self.records:
            if rec.started <= t:
                chosen = rec.fidelity
            else:
                break
        return chosen

    def transitions(self) -> List[Tuple[float, str, str]]:
        """(time, from, to) for every fidelity change."""
        out = []
        for prev, cur in zip(self.records, self.records[1:]):
            if prev.fidelity != cur.fidelity:
                out.append((cur.started, prev.fidelity, cur.fidelity))
        return out

    def adaptation_lag(self, event_time: float,
                       target: str) -> Optional[float]:
        """Seconds from ``event_time`` until ``target`` fidelity holds."""
        for rec in self.records:
            if rec.started >= event_time and rec.fidelity == target:
                return rec.started - event_time
        return None

    def deadline_miss_ratio(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.missed_deadline for r in self.records) / len(self.records)


class FidelityServer:
    """Serves data items at the requested fidelity over TCP."""

    def __init__(self, host: Host):
        self.host = host
        self.requests = 0

    def start(self) -> None:
        self.host.spawn(self._serve(), name="fidelityd")

    def _serve(self) -> Generator[Any, Any, None]:
        listener = self.host.tcp.listen(self.host.address, FETCH_PORT)
        while True:
            conn = yield from listener.accept()
            self.host.spawn(self._handle(conn), name="fidelity-conn")

    def _handle(self, conn) -> Generator[Any, Any, None]:
        channel = MessageChannel(conn)
        try:
            msg = yield from channel.recv_message()
            if msg is not None:
                (fidelity,), _ = msg
                nbytes = FIDELITY_BYTES[fidelity]
                self.requests += 1
                channel.send_message(nbytes, ("item", fidelity))
            yield from conn.close_and_wait()
        except TCPError:
            pass


class AdaptiveFetcher:
    """The Odyssey-style adaptive client loop.

    Every ``period`` seconds it picks the highest fidelity whose
    predicted fetch time fits ``budget`` seconds (with ``headroom``
    margin), fetches it, and feeds the estimator.
    """

    def __init__(self, host: Host, server_addr: str, period: float = 2.0,
                 budget: float = 1.5, headroom: float = 0.8,
                 estimator: Optional[BandwidthEstimator] = None):
        self.host = host
        self.server_addr = server_addr
        self.period = period
        self.budget = budget
        self.headroom = headroom
        self.estimator = estimator or BandwidthEstimator()
        self.run_log = AdaptiveRun()

    def choose_fidelity(self) -> str:
        for fidelity in FIDELITY_ORDER:
            predicted = self.estimator.predicted_fetch_time(
                FIDELITY_BYTES[fidelity])
            if predicted <= self.budget * self.headroom:
                return fidelity
        return FIDELITY_ORDER[-1]

    def run(self, duration: float) -> Generator[Any, Any, AdaptiveRun]:
        sim = self.host.sim
        start = sim.now
        while sim.now - start < duration:
            period_start = sim.now
            fidelity = self.choose_fidelity()
            nbytes = FIDELITY_BYTES[fidelity]
            try:
                elapsed = yield from self._fetch(fidelity)
            except TCPError:
                elapsed = None
            if elapsed is not None:
                self.estimator.observe(nbytes, elapsed)
                self.run_log.records.append(FetchRecord(
                    started=period_start, fidelity=fidelity, nbytes=nbytes,
                    elapsed=elapsed,
                    estimate_bps=self.estimator.estimate_bps,
                    missed_deadline=elapsed > self.budget))
            remaining = self.period - (sim.now - period_start)
            if remaining > 0:
                yield Timeout(remaining)
        return self.run_log

    def _fetch(self, fidelity: str) -> Generator[Any, Any, float]:
        t0 = self.host.sim.now
        conn = yield from self.host.tcp.connect(
            self.host.address, self.server_addr, FETCH_PORT)
        channel = MessageChannel(conn)
        channel.send_message(REQUEST_BYTES, (fidelity,))
        msg = yield from channel.recv_message()
        yield from conn.close_and_wait()
        if msg is None:
            raise TCPError("fetch aborted")
        return self.host.sim.now - t0
