"""A simple disk model.

The paper's FTP benchmark is *disk-to-disk* on an IBM ThinkPad 701c —
its Ethernet numbers (≈20 s for 10 MB, ≈4 Mb/s) are host-limited, not
network-limited.  A rate-plus-overhead disk model reproduces that: on
the fast Ethernet the disk dominates; on WaveLAN the network does.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import Simulator, Timeout


class Disk:
    """Sequential-transfer disk with per-operation overhead."""

    def __init__(self, sim: Simulator, read_rate: float = 1.4e6,
                 write_rate: float = 1.6e6, op_overhead: float = 2e-3):
        if read_rate <= 0 or write_rate <= 0:
            raise ValueError("disk rates must be positive")
        self.sim = sim
        self.read_rate = read_rate
        self.write_rate = write_rate
        self.op_overhead = op_overhead
        self.bytes_read = 0
        self.bytes_written = 0
        self.operations = 0

    def read(self, nbytes: int) -> Generator[Any, Any, int]:
        """Coroutine: read ``nbytes`` sequentially."""
        self.operations += 1
        self.bytes_read += nbytes
        yield Timeout(self.op_overhead + nbytes / self.read_rate)
        return nbytes

    def write(self, nbytes: int) -> Generator[Any, Any, int]:
        """Coroutine: write ``nbytes`` sequentially."""
        self.operations += 1
        self.bytes_written += nbytes
        yield Timeout(self.op_overhead + nbytes / self.write_rate)
        return nbytes
