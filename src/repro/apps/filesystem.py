"""An in-memory inode filesystem (the NFS server's backing store).

Only metadata and sizes are tracked — file *contents* never matter to
the benchmarks, but sizes, directory structure and modification times
drive exactly the NFS traffic mix the Andrew benchmark needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

FILE = "file"
DIRECTORY = "dir"


class FsError(Exception):
    """Filesystem operation failed (missing path, wrong kind, ...)."""


@dataclass
class Inode:
    fileid: int
    kind: str
    size: int = 0
    mtime: float = 0.0
    ctime: float = 0.0
    children: Dict[str, int] = field(default_factory=dict)  # dirs only

    def is_dir(self) -> bool:
        return self.kind == DIRECTORY


@dataclass(frozen=True)
class FileAttributes:
    """What GETATTR returns."""

    fileid: int
    kind: str
    size: int
    mtime: float
    ctime: float


class FileSystem:
    """Inode table + path helpers."""

    def __init__(self) -> None:
        self._ids = itertools.count(2)
        self._inodes: Dict[int, Inode] = {}
        self.root = Inode(fileid=1, kind=DIRECTORY)
        self._inodes[1] = self.root
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Handle-level operations (what NFS procedures call)
    # ------------------------------------------------------------------
    def inode(self, fileid: int) -> Inode:
        try:
            return self._inodes[fileid]
        except KeyError:
            raise FsError(f"stale file handle {fileid}") from None

    def getattr(self, fileid: int) -> FileAttributes:
        node = self.inode(fileid)
        return FileAttributes(fileid=node.fileid, kind=node.kind,
                              size=node.size, mtime=node.mtime,
                              ctime=node.ctime)

    def lookup(self, dir_id: int, name: str) -> int:
        node = self.inode(dir_id)
        if not node.is_dir():
            raise FsError(f"{dir_id} is not a directory")
        try:
            return node.children[name]
        except KeyError:
            raise FsError(f"no entry {name!r} in dir {dir_id}") from None

    def _new_child(self, dir_id: int, name: str, kind: str, now: float) -> int:
        parent = self.inode(dir_id)
        if not parent.is_dir():
            raise FsError(f"{dir_id} is not a directory")
        if name in parent.children:
            raise FsError(f"{name!r} already exists in dir {dir_id}")
        node = Inode(fileid=next(self._ids), kind=kind, mtime=now, ctime=now)
        self._inodes[node.fileid] = node
        parent.children[name] = node.fileid
        parent.mtime = now
        return node.fileid

    def create(self, dir_id: int, name: str, now: float = 0.0) -> int:
        return self._new_child(dir_id, name, FILE, now)

    def mkdir(self, dir_id: int, name: str, now: float = 0.0) -> int:
        return self._new_child(dir_id, name, DIRECTORY, now)

    def read(self, fileid: int, offset: int, count: int) -> int:
        """Returns the number of bytes actually available."""
        node = self.inode(fileid)
        if node.is_dir():
            raise FsError(f"{fileid} is a directory")
        self.reads += 1
        if offset >= node.size:
            return 0
        return min(count, node.size - offset)

    def write(self, fileid: int, offset: int, count: int,
              now: float = 0.0) -> int:
        node = self.inode(fileid)
        if node.is_dir():
            raise FsError(f"{fileid} is a directory")
        self.writes += 1
        node.size = max(node.size, offset + count)
        node.mtime = now
        return count

    def truncate(self, fileid: int, size: int, now: float = 0.0) -> None:
        node = self.inode(fileid)
        if node.is_dir():
            raise FsError(f"{fileid} is a directory")
        node.size = size
        node.mtime = now

    def readdir(self, dir_id: int) -> List[Tuple[str, int]]:
        node = self.inode(dir_id)
        if not node.is_dir():
            raise FsError(f"{dir_id} is not a directory")
        return sorted(node.children.items())

    def rename(self, from_dir: int, from_name: str, to_dir: int,
               to_name: str, now: float = 0.0) -> None:
        """Move an entry between directories (overwrite not allowed)."""
        src = self.inode(from_dir)
        dst = self.inode(to_dir)
        if not dst.is_dir():
            raise FsError(f"{to_dir} is not a directory")
        child_id = self.lookup(from_dir, from_name)
        if to_name in dst.children:
            raise FsError(f"{to_name!r} already exists in dir {to_dir}")
        del src.children[from_name]
        dst.children[to_name] = child_id
        src.mtime = dst.mtime = now
        self.inode(child_id).ctime = now

    def remove(self, dir_id: int, name: str, now: float = 0.0) -> None:
        parent = self.inode(dir_id)
        child_id = self.lookup(dir_id, name)
        child = self.inode(child_id)
        if child.is_dir() and child.children:
            raise FsError(f"directory {name!r} not empty")
        del parent.children[name]
        del self._inodes[child_id]
        parent.mtime = now

    # ------------------------------------------------------------------
    # Path helpers (local convenience; NFS clients do component walks)
    # ------------------------------------------------------------------
    @staticmethod
    def split(path: str) -> List[str]:
        return [part for part in path.split("/") if part]

    def resolve(self, path: str) -> int:
        fileid = self.root.fileid
        for part in self.split(path):
            fileid = self.lookup(fileid, part)
        return fileid

    def makedirs(self, path: str, now: float = 0.0) -> int:
        fileid = self.root.fileid
        for part in self.split(path):
            node = self.inode(fileid)
            if part in node.children:
                fileid = node.children[part]
            else:
                fileid = self.mkdir(fileid, part, now)
        return fileid

    def create_file(self, path: str, size: int, now: float = 0.0) -> int:
        parts = self.split(path)
        if not parts:
            raise FsError("empty path")
        dir_id = self.makedirs("/".join(parts[:-1]), now)
        fileid = self.create(dir_id, parts[-1], now)
        self.inode(fileid).size = size
        return fileid

    def total_bytes(self) -> int:
        return sum(n.size for n in self._inodes.values() if n.kind == FILE)

    def file_count(self) -> int:
        return sum(1 for n in self._inodes.values() if n.kind == FILE)
