"""HTTP/1.0-style web server and trace-replaying browser (§4.2).

The benchmark replays users' reference traces "as fast as possible" on
a modified Mosaic against a private server holding every referenced
object.  Protocol shape: one TCP connection per request (HTTP/1.0,
no keep-alive — 1996!), a small GET, a response header plus the object
body.  The browser charges itself a parse/render CPU cost per object,
which is what makes the Ethernet baseline minutes rather than seconds
on a 75 MHz 486 laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..hosts.host import Host
from ..protocols.tcp import MessageChannel, TCPError
from ..sim import Timeout
from ..workloads.webtraces import WebReference

HTTP_PORT = 80
REQUEST_BYTES = 220           # GET + headers
RESPONSE_HEADER_BYTES = 180   # status line + headers

# Browser CPU model (75 MHz 486): fixed parse cost plus per-byte render.
RENDER_FIXED = 0.355
RENDER_PER_BYTE = 1.9e-5
# Server CPU per request (file open + header formatting).
SERVER_CPU = 0.015


class WebServer:
    """A private HTTP server primed with an object catalog."""

    def __init__(self, host: Host, catalog: Dict[str, int]):
        self.host = host
        self.catalog = dict(catalog)
        self.requests_served = 0
        self.not_found = 0
        self._running = True

    def start(self) -> None:
        self.host.spawn(self._serve(), name="httpd")

    def _serve(self) -> Generator[Any, Any, None]:
        listener = self.host.tcp.listen(self.host.address, HTTP_PORT)
        while self._running:
            conn = yield from listener.accept()
            # One connection per request: handle inline (requests from a
            # single browser arrive sequentially anyway).
            self.host.spawn(self._handle(conn), name="http-conn")

    def _handle(self, conn) -> Generator[Any, Any, None]:
        channel = MessageChannel(conn)
        try:
            msg = yield from channel.recv_message()
            if msg is not None:
                (url,), _ = msg
                yield Timeout(SERVER_CPU)
                size = self.catalog.get(url)
                if size is None:
                    self.not_found += 1
                    channel.send_message(RESPONSE_HEADER_BYTES, ("404", 0))
                else:
                    self.requests_served += 1
                    channel.send_message(RESPONSE_HEADER_BYTES + size,
                                         ("200", size))
            yield from conn.close_and_wait()
        except TCPError:
            pass  # browser gave up; nothing to clean

    def stop(self) -> None:
        self._running = False


@dataclass
class WebBenchmarkResult:
    """Elapsed time and accounting for one replay run."""

    started: float
    finished: float
    requests: int
    bytes_fetched: int
    failures: int
    per_request_elapsed: List[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.finished - self.started


class WebBrowser:
    """Replays reference traces against the private server."""

    def __init__(self, host: Host, server_addr: str,
                 render_fixed: float = RENDER_FIXED,
                 render_per_byte: float = RENDER_PER_BYTE):
        self.host = host
        self.server_addr = server_addr
        self.render_fixed = render_fixed
        self.render_per_byte = render_per_byte

    def replay(self, traces: List[List[WebReference]]
               ) -> Generator[Any, Any, WebBenchmarkResult]:
        """Coroutine: replay every user's trace back-to-back."""
        started = self.host.sim.now
        requests = 0
        bytes_fetched = 0
        failures = 0
        per_request: List[float] = []
        for trace in traces:
            for ref in trace:
                t0 = self.host.sim.now
                size = yield from self._fetch(ref.url)
                if size is None:
                    failures += 1
                else:
                    bytes_fetched += size
                    # Parse/render before the next reference.
                    yield Timeout(self.render_fixed
                                  + size * self.render_per_byte)
                requests += 1
                per_request.append(self.host.sim.now - t0)
        return WebBenchmarkResult(started=started, finished=self.host.sim.now,
                                  requests=requests,
                                  bytes_fetched=bytes_fetched,
                                  failures=failures,
                                  per_request_elapsed=per_request)

    def _fetch(self, url: str) -> Generator[Any, Any, Optional[int]]:
        try:
            conn = yield from self.host.tcp.connect(
                self.host.address, self.server_addr, HTTP_PORT)
        except TCPError:
            return None
        channel = MessageChannel(conn)
        try:
            channel.send_message(REQUEST_BYTES, (url,))
            msg = yield from channel.recv_message()
            if msg is None:
                return None
            (status, size), _ = msg
            yield from conn.close_and_wait()
            return size if status == "200" else None
        except TCPError:
            return None
