"""``repro.runtime`` — the unified execution runtime.

One scheduler, pluggable backends, generic jobs: every bulk workload
in the repo (validation sweeps, invariant checks, golden regeneration,
scenario fuzzing) drives through this package, and all of them produce
byte-identical output on every backend.  See ``docs/RUNTIME.md`` for
the job lifecycle, the Backend protocol, and how to add a backend.

Layering (lowest first):

``job``
    :class:`Job` / :class:`JobResult` — the unit of work and its wire
    result; runner references; the job-kind registry.
``backends``
    The :class:`Backend` protocol and its implementations
    (:class:`SerialBackend`, :class:`PoolBackend`,
    :class:`LoopbackSocketBackend`), plus the worker-side chunk
    executor they share.
``scheduler``
    :class:`Scheduler` — chunking, ordering, caching, retry,
    rehydration, interrupt teardown.
``session``
    :class:`RuntimeSession` — per-invocation wiring of pipeline,
    scheduler, progress and run ledger for the CLI.
"""

from .backends import (
    Backend,
    BackendBroken,
    BackendUnavailable,
    LoopbackSocketBackend,
    PoolBackend,
    SerialBackend,
    execute_wire_chunk,
    worker_store,
)
from .job import (
    Job,
    JobResult,
    JobTransportError,
    ResultEnvelope,
    TransportFailure,
    register_job_kind,
    registered_job_kinds,
    resolve_runner,
    runner_ref,
)
from .scheduler import (
    CHUNK_THRESHOLD,
    TRANSPORTS,
    JobFuture,
    Scheduler,
    default_workers,
)
from .session import (
    ExecutionConfig,
    RuntimeSession,
    command_ledger_record,
    shared_pipeline,
)

__all__ = [
    "Backend",
    "BackendBroken",
    "BackendUnavailable",
    "CHUNK_THRESHOLD",
    "ExecutionConfig",
    "Job",
    "JobFuture",
    "JobResult",
    "JobTransportError",
    "LoopbackSocketBackend",
    "PoolBackend",
    "ResultEnvelope",
    "RuntimeSession",
    "Scheduler",
    "SerialBackend",
    "TRANSPORTS",
    "TransportFailure",
    "command_ledger_record",
    "default_workers",
    "execute_wire_chunk",
    "register_job_kind",
    "registered_job_kinds",
    "resolve_runner",
    "runner_ref",
    "shared_pipeline",
    "worker_store",
]
