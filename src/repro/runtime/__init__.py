"""``repro.runtime`` — the unified execution runtime.

One scheduler, pluggable backends, generic jobs: every bulk workload
in the repo (validation sweeps, invariant checks, golden regeneration,
scenario fuzzing) drives through this package, and all of them produce
byte-identical output on every backend.  See ``docs/RUNTIME.md`` for
the job lifecycle, the Backend protocol, and how to add a backend.

Layering (lowest first):

``job``
    :class:`Job` / :class:`JobResult` — the unit of work and its wire
    result; runner references; the job-kind registry.
``backends``
    The :class:`Backend` protocol and its in-machine implementations
    (:class:`SerialBackend`, :class:`PoolBackend`), plus the
    worker-side chunk executor every backend shares.
``sync`` / ``hosts``
    The multi-node substrate: FETCH/HAVE artifact-sync frames, and
    host inventory (``--hosts a:4,b:8`` / TOML) with the
    :class:`WorkerLauncher` bootstrap interface.
``remote``
    :class:`RemoteBackend` — the multi-node fleet (work-stealing
    dispatch, heartbeats, re-dispatch, fingerprint-keyed artifact
    sync) — and :class:`LoopbackSocketBackend`, its one-host
    shared-store configuration.
``scheduler``
    :class:`Scheduler` — work-stealing chunking, ordering, caching,
    retry, rehydration, interrupt teardown.
``session``
    :class:`RuntimeSession` — per-invocation wiring of pipeline,
    scheduler, progress and run ledger for the CLI.
"""

from .backends import (
    Backend,
    BackendBroken,
    BackendUnavailable,
    PoolBackend,
    SerialBackend,
    execute_wire_chunk,
    execute_wire_chunk_keys,
    worker_store,
)
from .hosts import (
    HostSpec,
    HostsError,
    LocalLauncher,
    SshLauncher,
    WorkerLauncher,
    launcher_for,
    load_hosts_file,
    parse_hosts,
)
from .job import (
    Job,
    JobResult,
    JobTransportError,
    ResultEnvelope,
    TransportFailure,
    register_job_kind,
    registered_job_kinds,
    resolve_runner,
    runner_ref,
)
from .remote import (
    LoopbackSocketBackend,
    RemoteBackend,
)
from .scheduler import (
    CHUNK_THRESHOLD,
    TRANSPORTS,
    JobFuture,
    Scheduler,
    default_workers,
    resolve_hosts,
)
from .session import (
    ExecutionConfig,
    RuntimeSession,
    command_ledger_record,
    shared_pipeline,
)
from .sync import (
    SyncError,
    decode_sync,
    encode_sync,
)

__all__ = [
    "Backend",
    "BackendBroken",
    "BackendUnavailable",
    "CHUNK_THRESHOLD",
    "ExecutionConfig",
    "HostSpec",
    "HostsError",
    "Job",
    "JobFuture",
    "JobResult",
    "JobTransportError",
    "LocalLauncher",
    "LoopbackSocketBackend",
    "PoolBackend",
    "RemoteBackend",
    "ResultEnvelope",
    "RuntimeSession",
    "Scheduler",
    "SerialBackend",
    "SshLauncher",
    "SyncError",
    "TRANSPORTS",
    "TransportFailure",
    "WorkerLauncher",
    "command_ledger_record",
    "decode_sync",
    "default_workers",
    "encode_sync",
    "execute_wire_chunk",
    "execute_wire_chunk_keys",
    "launcher_for",
    "load_hosts_file",
    "parse_hosts",
    "register_job_kind",
    "registered_job_kinds",
    "resolve_hosts",
    "resolve_runner",
    "runner_ref",
    "shared_pipeline",
    "worker_store",
]
