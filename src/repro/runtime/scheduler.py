"""The scheduler: deterministic, order-preserving job execution.

Everything backend-agnostic lives here — the logic that used to be
interleaved with trial code in ``validation/parallel.py``:

* **cache-first submission** — fingerprinted jobs are looked up in the
  attached :class:`~repro.pipeline.Pipeline` before they are submitted
  (a hit returns an already-resolved future without touching the
  backend), and computed results are stored as they land;
* **chunking** — cheap jobs travel together in one backend round-trip,
  expensive ones travel alone, longest first;
* **ordering guarantees** — futures align index-for-index with the
  submitted batch, and results are read in submission order, never in
  completion order;
* **retry on backend break** — a dead pool or socket drops the
  scheduler to in-process execution of the affected jobs (and every
  later submission) with the reason recorded, never a wrong result;
* **result rehydration** — envelopes coming back from workers are
  decoded from the shared store with digest verification, and any
  integrity problem falls back to recomputation;
* **interrupt teardown** — a ``KeyboardInterrupt`` while gathering
  results cancels outstanding chunks and shuts the backend down
  cleanly before propagating (the CLI turns it into exit 130).

The determinism contract is inherited from the jobs themselves: for
any worker count, any transport, any backend, and every fallback path,
results are byte-identical to serial execution because every job is
executed by the same pure runner with the same payload, the codec
round-trip is exact, and results are reassembled in submission order.
The only freedom a backend has is *wall-clock* completion order, which
is never observed.

:class:`Scheduler` exposes the generic surface (``submit_jobs`` /
``map_jobs``); workload-specific executors — e.g.
:class:`repro.validation.parallel.TrialExecutor` — subclass it and add
typed submission methods that build :class:`~repro.runtime.job.Job`
objects.
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.registry import MetricsRegistry
from ..obs.telemetry import SweepProgress, SweepTelemetry, unpack_spans
from ..pipeline import ArtifactStore, Pipeline, codec
from .backends import (
    Backend,
    BackendBroken,
    BackendUnavailable,
    LoopbackSocketBackend,
    PoolBackend,
)
from .job import Job, JobResult, ResultEnvelope, resolve_runner

__all__ = [
    "CHUNK_THRESHOLD",
    "TRANSPORTS",
    "JobFuture",
    "Scheduler",
    "default_workers",
]

# Jobs whose cost hint is below this travel together in one chunked
# backend submission; everything above it gets a worker to itself.
# Affects scheduling only, never results.
CHUNK_THRESHOLD = 100.0

# The recognised values of ``transport``: the first three select the
# data plane on the warm process pool ("auto" resolves to envelope);
# "socket" selects the loopback-socket backend (envelope data plane).
TRANSPORTS = ("auto", "envelope", "pickle", "socket")


def default_workers() -> int:
    """Worker count used when the caller does not pin one."""
    return os.cpu_count() or 1


def _stamp_sweep(payload: Any, sweep_id: str) -> Any:
    """Stamp a sweep id onto a wire payload that wants one (has a
    ``sweep_id`` field currently ``None``).  Generic so any job kind's
    worker-side spans can carry the sweep they belong to."""
    if getattr(payload, "sweep_id", False) is None:
        try:
            return replace(payload, sweep_id=sweep_id)
        except TypeError:
            return payload
    return payload


def run_job_inline(job: Job) -> Any:
    """Execute a job in the current process (the serial / fallback
    path): resolve its runner and apply it to the in-process payload."""
    return resolve_runner(job.runner)(job.payload)


class _ChunkHandle:
    """One in-flight chunk: the backend future plus a decode-once
    cache, shared by every :class:`JobFuture` whose job rode in it."""

    __slots__ = ("future", "_payload")

    def __init__(self, future):
        self.future = future
        self._payload = None

    def payload(self, scheduler: Optional["Scheduler"]) -> List[JobResult]:
        if self._payload is None:
            raw = self.future.result()
            if scheduler is not None:
                scheduler.metrics.counter(
                    "executor.ipc_bytes_recv").inc(len(raw))
            payloads, spans_blob = pickle.loads(raw)
            if spans_blob is not None and scheduler is not None \
                    and scheduler.telemetry is not None:
                try:
                    scheduler.telemetry.extend(
                        unpack_spans(codec.decode(spans_blob)))
                except codec.CodecError:
                    pass  # telemetry loss must never fail a job
            self._payload = payloads
        return self._payload


class JobFuture:
    """Result handle for one submitted job.

    In serial mode the job runs lazily on the first ``result()`` call;
    on a backend it indexes into its chunk's payload and, if the
    backend broke, the chunk would not pickle, or an envelope cannot
    be rehydrated, recomputes the job in-process (recording why on the
    scheduler).  Either way ``result()`` returns exactly what
    ``runner(payload)`` returns, so the fallback paths cannot change
    any result.

    A future may instead be born *resolved* with a cached artifact
    (``value=``), or carry a ``pipeline`` that accounts the computed
    result under the job's fingerprint the moment it lands — before
    the caller can mutate it.  ``store_key``, when set, names the
    shared-store artifact holding this result (callers use it to pass
    bulk inputs to downstream jobs by reference).
    """

    _UNSET = object()

    def __init__(self, job: Job, future: Optional[_ChunkHandle] = None,
                 scheduler: Optional["Scheduler"] = None,
                 value=_UNSET, pipeline: Optional[Pipeline] = None,
                 chunk_index: int = 0, store_key: Optional[str] = None):
        self.job = job
        self._future = future
        self._scheduler = scheduler
        self._result = value
        self._pipeline = pipeline
        self._chunk_index = chunk_index
        self.store_key = store_key

    def result(self):
        try:
            return self._resolve()
        except KeyboardInterrupt:
            # Ctrl-C while gathering: cancel outstanding chunks and
            # tear the backend down cleanly before propagating (the
            # CLI maps this to exit 130).
            if self._scheduler is not None:
                self._scheduler.cancel()
            raise

    def _resolve(self):
        if self._result is not self._UNSET:
            return self._result
        value = self._UNSET
        stored_remotely = False
        if self._future is not None:
            payload = None
            try:
                payload = self._future.payload(self._scheduler)
            except (BrokenProcessPool, BackendBroken, pickle.PickleError,
                    OSError) as exc:
                if self._scheduler is not None:
                    self._scheduler._mark_broken(exc)
            if payload is not None:
                item: JobResult = payload[self._chunk_index]
                if item.failure is not None:
                    if self._scheduler is not None:
                        self._scheduler._note_fallback(
                            f"worker transport: {item.failure.reason}")
                elif item.envelope is not None:
                    value = self._rehydrate(item.envelope)
                    if value is not self._UNSET:
                        self.store_key = item.envelope.key
                        stored_remotely = (
                            self._scheduler is not None
                            and self._scheduler._ipc_shared
                            and item.envelope.key == self.job.fingerprint)
                elif item.has_value:
                    value = item.value
        if value is self._UNSET:
            sched = self._scheduler
            telemetry = sched.telemetry if sched is not None else None
            if telemetry is not None:
                tok = telemetry.begin()
                value = run_job_inline(self.job)
                telemetry.end(tok, self.job.kind, self.job.span_label(),
                              fallback=self._future is not None)
            else:
                value = run_job_inline(self.job)
            if self._future is None and sched is not None \
                    and sched.progress is not None:
                sched.progress.completed()
        self._result = value
        if self._pipeline is not None and self.job.fingerprint is not None:
            if stored_remotely:
                # The worker already wrote the artifact into the
                # pipeline's own store; just account for the miss.
                self._pipeline.record_remote(self.job.fingerprint,
                                             stage=self.job.kind)
            else:
                self._pipeline.store_result(self.job.fingerprint, value,
                                            stage=self.job.kind)
        return self._result

    def _rehydrate(self, env: ResultEnvelope):
        """Decode an envelope's artifact from the shared store; on any
        integrity problem return ``_UNSET`` so the caller recomputes."""
        sched = self._scheduler
        store = sched._ipc_store if sched is not None else None
        if store is None:
            return self._UNSET
        t0 = time.perf_counter_ns()
        found, blob = store.raw_get(env.key)
        if not found or codec.content_digest(blob) != env.digest:
            sched._note_fallback(f"envelope {env.key[:12]}...: artifact "
                                 f"missing or digest mismatch")
            return self._UNSET
        try:
            value = codec.decode_gz(blob)
        except codec.CodecError as exc:
            sched._note_fallback(f"envelope {env.key[:12]}...: {exc}")
            return self._UNSET
        elapsed = time.perf_counter_ns() - t0
        metrics = sched.metrics
        metrics.counter("executor.rehydrate_ns").inc(elapsed)
        metrics.counter("executor.envelope_count").inc()
        metrics.counter("executor.artifact_bytes").inc(env.nbytes)
        metrics.counter("executor.encode_ns").inc(env.encode_ns)
        if sched.telemetry is not None:
            sched.telemetry.point("rehydrate", self.job.span_label(),
                                  dur=elapsed, nbytes=env.nbytes)
        return value


class Scheduler:
    """Order-preserving job execution with a pluggable backend under it.

    ``workers=None`` sizes the backend to the machine; ``workers=1``
    (or a backend that cannot start — restricted sandboxes, missing
    semaphores, no sockets) degrades to in-process serial execution of
    the very same runner calls.  ``submit_jobs`` returns futures
    aligned index-for-index with the batch; ``map_jobs`` reads them in
    submission order regardless of completion order — which is what
    makes parallel runs bit-identical to serial ones.

    ``transport`` selects the backend and its data plane:
    ``"envelope"`` (warm pool, store-mediated handoff), ``"pickle"``
    (warm pool, results through the pipe), ``"socket"`` (loopback
    worker subprocesses, envelope data plane), or ``"auto"`` (envelope
    whenever a backend is used).

    Usable as a context manager; the backend is created lazily on the
    first parallel submission and reused across phases and batches so
    worker startup is paid once per run, not once per phase.

    With a ``pipeline`` attached, fingerprinted jobs are looked up in
    its artifact store at submission time and computed results are
    stored as they land.  Caching cannot change results: artifacts are
    keyed by the same inputs that determine the job's output, and
    cached values round-trip through the binary codec so callers get
    fresh copies.

    Every degradation (broken backend, unpicklable job, unreadable
    envelope) is counted in :attr:`metrics` and the first reason kept
    in :attr:`fallback_reason` — the scheduler never falls back
    silently.
    """

    def __init__(self, workers: Optional[int] = None,
                 pipeline: Optional[Pipeline] = None,
                 transport: str = "auto"):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}")
        self.workers = (default_workers() if workers is None
                        else max(1, int(workers)))
        self.pipeline = pipeline
        self.transport = transport
        self.metrics = MetricsRegistry()
        self.fallback_reason: Optional[str] = None
        # Every distinct fallback reason, in first-seen order (capped);
        # `fallback_reason` keeps only the first for compatibility.
        self.fallback_reasons: List[str] = []
        self.pool_broken = False
        # Sweep-scope hooks: a SweepTelemetry makes workers ship stage
        # spans back with each chunk; a SweepProgress gets completion
        # events.  Both None by default — the zero-cost path.
        self.telemetry: Optional[SweepTelemetry] = None
        self.progress: Optional[SweepProgress] = None
        if pipeline is not None:
            self.metrics.add_collector(pipeline.collector(), key="pipeline")
        self._backend: Optional[Backend] = None
        # workers=1 runs serially — except on the socket backend,
        # where even one worker exercises the wire protocol.
        self._serial_fallback = self.workers <= 1 and transport != "socket"
        self._transport_used = "serial"
        self._ipc_store: Optional[ArtifactStore] = None
        self._ipc_root: Optional[str] = None
        self._ipc_tmp: Optional[str] = None
        self._ipc_shared = False
        self._seq = 0

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._close_backend()
        if self._ipc_tmp is not None:
            shutil.rmtree(self._ipc_tmp, ignore_errors=True)
            self._ipc_tmp = None
            self._ipc_store = None
            self._ipc_root = None

    def cancel(self) -> None:
        """Interrupt teardown: stop submitting, drop chunks that have
        not started, and shut the backend down cleanly.  Jobs already
        running in a worker finish (workers ignore SIGINT) but their
        results are never read."""
        self._serial_fallback = True
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.shutdown(cancel=True)

    def _close_backend(self) -> None:
        if self._backend is not None:
            self._backend.shutdown()
            self._backend = None

    def _mark_broken(self, exc: Optional[BaseException] = None) -> None:
        """Drop to serial for every later submission (backend died)."""
        reason = "process pool broke"
        if exc is not None:
            if isinstance(exc, BackendBroken):
                reason = str(exc)
            else:
                reason = f"process pool broke: {type(exc).__name__}: {exc}"
        self.pool_broken = True
        self._note_fallback(reason)
        self._serial_fallback = True
        self._close_backend()

    def _note_fallback(self, reason: str) -> None:
        """Count one in-process fallback; keep every distinct reason."""
        self.metrics.counter("executor.serial_fallbacks").inc()
        if self.fallback_reason is None:
            self.fallback_reason = reason
        if reason not in self.fallback_reasons \
                and len(self.fallback_reasons) < 16:
            self.fallback_reasons.append(reason)
        if self.telemetry is not None:
            self.telemetry.point("fallback", reason)

    @property
    def effective_workers(self) -> int:
        """1 when running serially, else the configured worker count."""
        return 1 if self._serial_fallback else self.workers

    @property
    def transport_used(self) -> str:
        """``"serial"`` until a backend carries work, then the resolved
        transport (``"envelope"``, ``"pickle"`` or ``"socket"``)."""
        return self._transport_used

    def transport_stats(self) -> Dict[str, Any]:
        """Snapshot of the scheduler's data-plane counters."""
        metrics = self.metrics
        return {
            "transport": self._transport_used,
            "workers": self.effective_workers,
            "envelope_count":
                metrics.counter("executor.envelope_count").value,
            "ipc_bytes_sent":
                metrics.counter("executor.ipc_bytes_sent").value,
            "ipc_bytes_recv":
                metrics.counter("executor.ipc_bytes_recv").value,
            "artifact_bytes":
                metrics.counter("executor.artifact_bytes").value,
            "encode_ns": metrics.counter("executor.encode_ns").value,
            "rehydrate_ns": metrics.counter("executor.rehydrate_ns").value,
            "dispatch_ns": metrics.counter("executor.dispatch_ns").value,
            "serial_fallbacks":
                metrics.counter("executor.serial_fallbacks").value,
            "fallback_reason": self.fallback_reason,
            "fallback_reasons": list(self.fallback_reasons),
            "pool_broken": self.pool_broken,
        }

    # -- execution ------------------------------------------------------
    def submit_job(self, job: Job) -> JobFuture:
        """Queue one job; its result is read with ``.result()``."""
        return self.submit_jobs([job])[0]

    def submit_jobs(self, jobs: Sequence[Job]) -> List[JobFuture]:
        """Submit a batch: cache lookups first, then longest jobs
        first, with cheap jobs chunked.

        Submission order and chunking affect only wall time (short
        tasks fill the tail of the schedule); the returned futures
        align index-for-index with ``jobs``.
        """
        t0 = time.perf_counter_ns()
        try:
            return self._submit_jobs(list(jobs))
        finally:
            self.metrics.counter("executor.dispatch_ns").inc(
                time.perf_counter_ns() - t0)

    def _submit_jobs(self, jobs: List[Job]) -> List[JobFuture]:
        if self.progress is not None:
            self.progress.add_total(len(jobs))
        futures: List[Optional[JobFuture]] = [None] * len(jobs)
        pending: List[Tuple[int, Job]] = []
        for i, job in enumerate(jobs):
            if self.pipeline is not None and job.fingerprint is not None:
                found, value = self.pipeline.lookup(job.fingerprint,
                                                    stage=job.kind)
                if found:
                    skey = (job.fingerprint
                            if self.pipeline.store.root is not None else None)
                    futures[i] = JobFuture(job, value=value, store_key=skey)
                    if self.telemetry is not None:
                        self.telemetry.point("cache_hit", job.span_label())
                    if self.progress is not None:
                        self.progress.cache_hit()
                    continue
            pending.append((i, job))
        if not pending:
            return futures
        backend = self._ensure_backend()
        if self.progress is not None:
            self.progress.set_workers(self.effective_workers)
        if backend is None:
            for i, job in pending:
                futures[i] = JobFuture(job, scheduler=self,
                                       pipeline=self.pipeline)
            return futures
        envelope = self._resolve_transport() == "envelope"
        pending.sort(key=lambda item: item[1].cost_hint, reverse=True)
        solo = [item for item in pending
                if item[1].cost_hint >= CHUNK_THRESHOLD]
        cheap = [item for item in pending
                 if item[1].cost_hint < CHUNK_THRESHOLD]
        chunks: List[List[Tuple[int, Job]]] = [[it] for it in solo]
        size = self._chunksize(len(cheap))
        chunks.extend(cheap[k:k + size] for k in range(0, len(cheap), size))
        for chunk in chunks:
            handle = self._submit_chunk(chunk, envelope)
            if handle is None:
                for i, job in chunk:
                    futures[i] = JobFuture(job, scheduler=self,
                                           pipeline=self.pipeline)
                continue
            for ci, (i, job) in enumerate(chunk):
                futures[i] = JobFuture(job, future=handle, scheduler=self,
                                       pipeline=self.pipeline,
                                       chunk_index=ci)
        return futures

    def map_jobs(self, jobs: Sequence[Job]) -> List:
        """Execute all jobs; results align index-for-index with jobs.

        Always routed through :meth:`submit_jobs` (even for one job or
        in serial mode, where futures resolve lazily in order) so cache
        lookups and stores apply uniformly.
        """
        return [f.result() for f in self.submit_jobs(list(jobs))]

    # -- plumbing -------------------------------------------------------
    def _chunksize(self, n_cheap: int) -> int:
        """Chunk size tuned to the batch: enough chunks to keep every
        worker busy twice over, capped so one chunk never serializes a
        long tail."""
        if n_cheap <= 0:
            return 1
        return max(1, min(8, math.ceil(n_cheap / (self._pool_size() * 2))))

    def _pool_size(self) -> int:
        """Actual backend width (see the backends' ``pool_size``)."""
        if self._backend is not None:
            return self._backend.pool_size()
        if self.transport == "socket":
            return self.workers
        cores = os.cpu_count() or self.workers
        return max(1, min(self.workers, cores + 1))

    def _submit_chunk(self, chunk: List[Tuple[int, Job]],
                      envelope: bool) -> Optional[_ChunkHandle]:
        if self._serial_fallback or self._backend is None:
            return None
        telemetry = self.telemetry
        items: List[Tuple[str, str, str, Any, str]] = []
        for _, job in chunk:
            payload = job.for_wire(envelope)
            key = ""
            if envelope:
                key = job.fingerprint
                if key is None or not self._ipc_shared:
                    key = f"ipc:{self._seq:08d}"
                    self._seq += 1
            if telemetry is not None:
                payload = _stamp_sweep(payload, telemetry.sweep_id)
            items.append((job.runner, job.kind, job.span_label(),
                          payload, key))
        try:
            blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError) as exc:
            self._note_fallback(
                f"spec not picklable: {type(exc).__name__}: {exc}")
            return None
        telemetry_ctx = None
        if telemetry is not None:
            telemetry_ctx = (telemetry.sweep_id, time.time_ns())
        try:
            future = self._backend.submit(blob, envelope, telemetry_ctx)
        except (BackendBroken, BrokenProcessPool, OSError,
                RuntimeError) as exc:
            self._mark_broken(exc)
            return None
        self.metrics.counter("executor.ipc_bytes_sent").inc(len(blob))
        self._transport_used = (
            "socket" if self._backend.name == "socket"
            else ("envelope" if envelope else "pickle"))
        if self.progress is not None:
            progress, count = self.progress, len(chunk)
            future.add_done_callback(
                lambda _f: progress.completed(count))
        return _ChunkHandle(future)

    def _resolve_transport(self) -> str:
        """The data plane: pickle only when asked for; envelope
        everywhere else (including the socket backend)."""
        return "pickle" if self.transport == "pickle" else "envelope"

    def _ensure_ipc_store(self) -> ArtifactStore:
        """The shared store envelopes travel through: the pipeline's
        own disk store when there is one (workers then write artifacts
        straight into the cache), else a scheduler-owned tempdir."""
        if self._ipc_store is not None:
            return self._ipc_store
        pipe_store = self.pipeline.store if self.pipeline is not None else None
        if pipe_store is not None and pipe_store.root is not None:
            self._ipc_store = pipe_store
            self._ipc_root = str(pipe_store.root)
            self._ipc_shared = True
        else:
            self._ipc_tmp = tempfile.mkdtemp(prefix="repro-ipc-")
            self._ipc_store = ArtifactStore(self._ipc_tmp)
            self._ipc_root = self._ipc_tmp
            self._ipc_shared = False
        return self._ipc_store

    def _make_backend(self) -> Backend:
        if self.transport == "socket":
            return LoopbackSocketBackend(self.workers)
        return PoolBackend(self.workers)

    def _ensure_backend(self) -> Optional[Backend]:
        if self._serial_fallback:
            return None
        if self._backend is None:
            store_root = None
            if self._resolve_transport() == "envelope":
                self._ensure_ipc_store()
                store_root = self._ipc_root
            backend = self._make_backend()
            try:
                backend.start(store_root)
            except BackendUnavailable as exc:
                self._note_fallback(str(exc))
                self._serial_fallback = True
                return None
            self._backend = backend
        return self._backend
