"""The scheduler: deterministic, order-preserving job execution.

Everything backend-agnostic lives here — the logic that used to be
interleaved with trial code in ``validation/parallel.py``:

* **cache-first submission** — fingerprinted jobs are looked up in the
  attached :class:`~repro.pipeline.Pipeline` before they are submitted
  (a hit returns an already-resolved future without touching the
  backend), and computed results are stored as they land;
* **work-stealing dispatch** — chunks are not assigned up front: a
  cost-ordered heap holds pending work and a bounded number of chunks
  is kept in flight; each completion pulls the next chunk off the
  heap, with the chunk size re-derived from what is *left* (adaptive:
  a draining sweep sends smaller chunks so the tail stays parallel).
  Cheap jobs travel together in one backend round-trip, expensive ones
  travel alone, longest first;
* **ordering guarantees** — futures align index-for-index with the
  submitted batch, and results are read in submission order, never in
  completion order;
* **retry on backend break** — a dead pool or socket drops the
  scheduler to in-process execution of the affected jobs (and every
  later submission) with the reason recorded, never a wrong result;
* **result rehydration** — envelopes coming back from workers are
  decoded from the shared store with digest verification, and any
  integrity problem falls back to recomputation;
* **interrupt teardown** — a ``KeyboardInterrupt`` while gathering
  results cancels outstanding chunks and shuts the backend down
  cleanly before propagating (the CLI turns it into exit 130).

The determinism contract is inherited from the jobs themselves: for
any worker count, any transport, any backend, and every fallback path,
results are byte-identical to serial execution because every job is
executed by the same pure runner with the same payload, the codec
round-trip is exact, and results are reassembled in submission order.
The only freedom a backend has is *wall-clock* completion order, which
is never observed.

:class:`Scheduler` exposes the generic surface (``submit_jobs`` /
``map_jobs``); workload-specific executors — e.g.
:class:`repro.validation.parallel.TrialExecutor` — subclass it and add
typed submission methods that build :class:`~repro.runtime.job.Job`
objects.
"""

from __future__ import annotations

import heapq
import math
import os
import pickle
import shutil
import tempfile
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.registry import MetricsRegistry
from ..obs.telemetry import SweepProgress, SweepTelemetry, unpack_spans
from ..pipeline import ArtifactStore, Pipeline, codec
from .backends import (
    Backend,
    BackendBroken,
    BackendUnavailable,
    PoolBackend,
)
from .hosts import HostSpec, load_hosts_file, parse_hosts
from .job import Job, JobResult, ResultEnvelope, resolve_runner
from .remote import LoopbackSocketBackend, RemoteBackend

__all__ = [
    "CHUNK_THRESHOLD",
    "TRANSPORTS",
    "JobFuture",
    "Scheduler",
    "default_workers",
    "resolve_hosts",
]

# Jobs whose cost hint is below this travel together in one chunked
# backend submission; everything above it gets a worker to itself.
# Affects scheduling only, never results.
CHUNK_THRESHOLD = 100.0

# The recognised values of ``transport``: "auto"/"envelope"/"pickle"
# select the data plane on the warm process pool ("auto" resolves to
# envelope); "socket" selects the loopback-socket backend; "remote"
# selects the multi-node fleet backend (both envelope data plane).
TRANSPORTS = ("auto", "envelope", "pickle", "socket", "remote")


def default_workers() -> int:
    """Worker count used when the caller does not pin one."""
    return os.cpu_count() or 1


def resolve_hosts(hosts: Union[str, Sequence[HostSpec], None]
                  ) -> Optional[List[HostSpec]]:
    """Normalize a ``hosts`` argument: ``None`` stays ``None``, a list
    of specs passes through, a string is either a TOML hosts-file path
    (ends in ``.toml`` or starts with ``@``) or an inline ``a:4,b:8``
    expression."""
    if hosts is None:
        return None
    if isinstance(hosts, str):
        text = hosts.strip()
        if text.startswith("@"):
            return load_hosts_file(Path(text[1:]))
        if text.endswith(".toml"):
            return load_hosts_file(Path(text))
        return parse_hosts(text)
    return list(hosts)


def _stamp_sweep(payload: Any, sweep_id: str) -> Any:
    """Stamp a sweep id onto a wire payload that wants one (has a
    ``sweep_id`` field currently ``None``).  Generic so any job kind's
    worker-side spans can carry the sweep they belong to."""
    if getattr(payload, "sweep_id", False) is None:
        try:
            return replace(payload, sweep_id=sweep_id)
        except TypeError:
            return payload
    return payload


def run_job_inline(job: Job) -> Any:
    """Execute a job in the current process (the serial / fallback
    path): resolve its runner and apply it to the in-process payload."""
    return resolve_runner(job.runner)(job.payload)


class _ChunkHandle:
    """One in-flight chunk: the backend future plus a decode-once
    cache, shared by every :class:`JobFuture` whose job rode in it."""

    __slots__ = ("future", "_payload")

    def __init__(self, future):
        self.future = future
        self._payload = None

    def payload(self, scheduler: Optional["Scheduler"]) -> List[JobResult]:
        if self._payload is None:
            raw = self.future.result()
            if scheduler is not None:
                scheduler.metrics.counter(
                    "executor.ipc_bytes_recv").inc(len(raw))
            payloads, spans_blob = pickle.loads(raw)
            if spans_blob is not None and scheduler is not None \
                    and scheduler.telemetry is not None:
                try:
                    scheduler.telemetry.extend(
                        unpack_spans(codec.decode(spans_blob)))
                except codec.CodecError:
                    pass  # telemetry loss must never fail a job
            self._payload = payloads
        return self._payload


class _Slot:
    """One pending job's place in the work-stealing dispatch.

    A slot is created at submission time, *before* the job is assigned
    to any chunk; the pump binds it to a :class:`_ChunkHandle` (plus
    the job's index inside that chunk) when a worker actually pulls
    the chunk — or marks it ``inline`` when the job must run in the
    parent instead (unpicklable chunk, broken backend, cancel).  The
    ``event`` is set exactly once, at binding, so a reader blocked in
    :meth:`JobFuture.result` wakes the moment the job's fate is known.
    """

    __slots__ = ("job", "event", "handle", "chunk_index", "inline")

    def __init__(self, job: Job):
        self.job = job
        self.event = threading.Event()
        self.handle: Optional[_ChunkHandle] = None
        self.chunk_index = 0
        self.inline = False

    def bind(self, handle: _ChunkHandle, chunk_index: int) -> None:
        self.handle = handle
        self.chunk_index = chunk_index
        self.event.set()

    def release_inline(self) -> None:
        self.inline = True
        self.event.set()


class JobFuture:
    """Result handle for one submitted job.

    In serial mode the job runs lazily on the first ``result()`` call;
    on a backend it indexes into its chunk's payload and, if the
    backend broke, the chunk would not pickle, or an envelope cannot
    be rehydrated, recomputes the job in-process (recording why on the
    scheduler).  Either way ``result()`` returns exactly what
    ``runner(payload)`` returns, so the fallback paths cannot change
    any result.

    A future may instead be born *resolved* with a cached artifact
    (``value=``), or carry a ``pipeline`` that accounts the computed
    result under the job's fingerprint the moment it lands — before
    the caller can mutate it.  ``store_key``, when set, names the
    shared-store artifact holding this result (callers use it to pass
    bulk inputs to downstream jobs by reference).

    Under work-stealing dispatch a future starts with a ``slot``
    instead of a chunk handle; reading it waits for the pump to bind
    the slot (workers pull chunks as they free up), then proceeds
    exactly as before.
    """

    _UNSET = object()

    def __init__(self, job: Job, future: Optional[_ChunkHandle] = None,
                 scheduler: Optional["Scheduler"] = None,
                 value=_UNSET, pipeline: Optional[Pipeline] = None,
                 chunk_index: int = 0, store_key: Optional[str] = None,
                 slot: Optional[_Slot] = None):
        self.job = job
        self._future = future
        self._scheduler = scheduler
        self._result = value
        self._pipeline = pipeline
        self._chunk_index = chunk_index
        self.store_key = store_key
        self._slot = slot

    def result(self):
        try:
            return self._resolve()
        except KeyboardInterrupt:
            # Ctrl-C while gathering: cancel outstanding chunks and
            # tear the backend down cleanly before propagating (the
            # CLI maps this to exit 130).
            if self._scheduler is not None:
                self._scheduler.cancel()
            raise

    def _resolve(self):
        if self._result is not self._UNSET:
            return self._result
        if self._slot is not None:
            slot = self._slot
            if not slot.event.is_set() and self._scheduler is not None:
                # Make sure dispatch is progressing (a no-op when the
                # in-flight window is already full), then wait for a
                # worker to pull this job's chunk.
                self._scheduler._pump()
            slot.event.wait()
            if slot.handle is not None:
                self._future = slot.handle
                self._chunk_index = slot.chunk_index
            self._slot = None
        value = self._UNSET
        stored_remotely = False
        if self._future is not None:
            payload = None
            try:
                payload = self._future.payload(self._scheduler)
            except (BrokenProcessPool, BackendBroken, pickle.PickleError,
                    OSError) as exc:
                if self._scheduler is not None:
                    self._scheduler._mark_broken(exc)
            if payload is not None:
                item: JobResult = payload[self._chunk_index]
                if item.failure is not None:
                    if self._scheduler is not None:
                        self._scheduler._note_fallback(
                            f"worker transport: {item.failure.reason}")
                elif item.envelope is not None:
                    value = self._rehydrate(item.envelope)
                    if value is not self._UNSET:
                        self.store_key = item.envelope.key
                        stored_remotely = (
                            self._scheduler is not None
                            and self._scheduler._ipc_shared
                            and item.envelope.key == self.job.fingerprint)
                elif item.has_value:
                    value = item.value
        if value is self._UNSET:
            sched = self._scheduler
            telemetry = sched.telemetry if sched is not None else None
            if telemetry is not None:
                tok = telemetry.begin()
                value = run_job_inline(self.job)
                telemetry.end(tok, self.job.kind, self.job.span_label(),
                              fallback=self._future is not None)
            else:
                value = run_job_inline(self.job)
            if self._future is None and sched is not None \
                    and sched.progress is not None:
                sched.progress.completed()
        self._result = value
        if self._pipeline is not None and self.job.fingerprint is not None:
            if stored_remotely:
                # The worker already wrote the artifact into the
                # pipeline's own store; just account for the miss.
                self._pipeline.record_remote(self.job.fingerprint,
                                             stage=self.job.kind)
            else:
                self._pipeline.store_result(self.job.fingerprint, value,
                                            stage=self.job.kind)
        return self._result

    def _rehydrate(self, env: ResultEnvelope):
        """Decode an envelope's artifact from the shared store; on any
        integrity problem return ``_UNSET`` so the caller recomputes.

        On a multi-node backend the parent store starts *empty* — the
        artifact was sealed into the executing node's private store —
        so a miss first goes through the backend's fingerprint-keyed
        ``fetch_artifact`` (FETCH frames, parent-store dedup) before
        falling back to recomputation."""
        sched = self._scheduler
        store = sched._ipc_store if sched is not None else None
        if store is None:
            return self._UNSET
        t0 = time.perf_counter_ns()
        found, blob = store.raw_get(env.key)
        if not found:
            backend = sched._backend
            fetch = getattr(backend, "fetch_artifact", None)
            if fetch is not None:
                fetched = fetch(env.key, env.digest)
                if fetched is not None:
                    found, blob = True, fetched
        if not found or codec.content_digest(blob) != env.digest:
            sched._note_fallback(f"envelope {env.key[:12]}...: artifact "
                                 f"missing or digest mismatch")
            return self._UNSET
        try:
            value = codec.decode_gz(blob)
        except codec.CodecError as exc:
            sched._note_fallback(f"envelope {env.key[:12]}...: {exc}")
            return self._UNSET
        elapsed = time.perf_counter_ns() - t0
        metrics = sched.metrics
        metrics.counter("executor.rehydrate_ns").inc(elapsed)
        metrics.counter("executor.envelope_count").inc()
        metrics.counter("executor.artifact_bytes").inc(env.nbytes)
        metrics.counter("executor.encode_ns").inc(env.encode_ns)
        if sched.telemetry is not None:
            sched.telemetry.point("rehydrate", self.job.span_label(),
                                  dur=elapsed, nbytes=env.nbytes)
        return value


class Scheduler:
    """Order-preserving job execution with a pluggable backend under it.

    ``workers=None`` sizes the backend to the machine; ``workers=1``
    (or a backend that cannot start — restricted sandboxes, missing
    semaphores, no sockets) degrades to in-process serial execution of
    the very same runner calls.  ``submit_jobs`` returns futures
    aligned index-for-index with the batch; ``map_jobs`` reads them in
    submission order regardless of completion order — which is what
    makes parallel runs bit-identical to serial ones.

    ``transport`` selects the backend and its data plane:
    ``"envelope"`` (warm pool, store-mediated handoff), ``"pickle"``
    (warm pool, results through the pipe), ``"socket"`` (loopback
    worker subprocesses, envelope data plane), ``"remote"`` (the
    multi-node fleet of :mod:`repro.runtime.remote`, envelope data
    plane plus FETCH/HAVE artifact sync), or ``"auto"`` (envelope
    whenever a backend is used — unless ``hosts`` is given, which
    resolves "auto" to "remote").  ``hosts`` takes an ``"a:4,b:8"``
    expression, a TOML hosts-file path, or a prepared
    :class:`~repro.runtime.hosts.HostSpec` list; ``"remote"`` without
    hosts means ``local:<workers>`` — one pseudo-host.

    Usable as a context manager; the backend is created lazily on the
    first parallel submission and reused across phases and batches so
    worker startup is paid once per run, not once per phase.

    With a ``pipeline`` attached, fingerprinted jobs are looked up in
    its artifact store at submission time and computed results are
    stored as they land.  Caching cannot change results: artifacts are
    keyed by the same inputs that determine the job's output, and
    cached values round-trip through the binary codec so callers get
    fresh copies.

    Every degradation (broken backend, unpicklable job, unreadable
    envelope) is counted in :attr:`metrics` and the first reason kept
    in :attr:`fallback_reason` — the scheduler never falls back
    silently.
    """

    def __init__(self, workers: Optional[int] = None,
                 pipeline: Optional[Pipeline] = None,
                 transport: str = "auto",
                 hosts: Union[str, Sequence[HostSpec], None] = None):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}")
        self.workers = (default_workers() if workers is None
                        else max(1, int(workers)))
        self.hosts = resolve_hosts(hosts)
        if self.hosts is not None and transport == "auto":
            transport = "remote"
        if transport == "remote":
            if self.hosts is None:
                self.hosts = parse_hosts(f"local:{self.workers}")
            # The fleet defines the width; ``workers`` is per-host
            # only insofar as the hosts expression says so.
            self.workers = sum(h.workers for h in self.hosts)
        self.pipeline = pipeline
        self.transport = transport
        self.metrics = MetricsRegistry()
        self.fallback_reason: Optional[str] = None
        # Every distinct fallback reason, in first-seen order (capped);
        # `fallback_reason` keeps only the first for compatibility.
        self.fallback_reasons: List[str] = []
        self.pool_broken = False
        # Sweep-scope hooks: a SweepTelemetry makes workers ship stage
        # spans back with each chunk; a SweepProgress gets completion
        # events.  Both None by default — the zero-cost path.
        self.telemetry: Optional[SweepTelemetry] = None
        self.progress: Optional[SweepProgress] = None
        if pipeline is not None:
            self.metrics.add_collector(pipeline.collector(), key="pipeline")
        self._backend: Optional[Backend] = None
        # workers=1 runs serially — except on the socket-reached
        # backends, where even one worker exercises the wire protocol.
        self._serial_fallback = (self.workers <= 1
                                 and transport not in ("socket", "remote"))
        self._transport_used = "serial"
        self._ipc_store: Optional[ArtifactStore] = None
        self._ipc_root: Optional[str] = None
        self._ipc_tmp: Optional[str] = None
        self._ipc_shared = False
        self._seq = 0
        # Work-stealing dispatch state: a cost-ordered heap of pending
        # (job, slot) entries, pumped into the backend with a bounded
        # in-flight window.  The pump lock serializes dispatch; the
        # repump flag lets a contending thread hand its pump request to
        # the current holder instead of blocking (completion callbacks
        # run on backend threads and must never block here).
        self._pending: List[Tuple[float, int, Job, _Slot]] = []
        self._pump_lock = threading.Lock()
        self._inflight_lock = threading.Lock()
        self._repump = False
        self._inflight = 0
        self._heap_seq = 0
        self._backend_stats: Optional[Dict[str, Any]] = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._close_backend()
        if self._ipc_tmp is not None:
            shutil.rmtree(self._ipc_tmp, ignore_errors=True)
            self._ipc_tmp = None
            self._ipc_store = None
            self._ipc_root = None

    def cancel(self) -> None:
        """Interrupt teardown: stop submitting, drop chunks that have
        not started, and shut the backend down cleanly.  Jobs already
        running in a worker finish (workers ignore SIGINT) but their
        results are never read."""
        self._serial_fallback = True
        self._flush_pending_inline()
        backend, self._backend = self._backend, None
        if backend is not None:
            self._capture_backend_stats(backend)
            backend.shutdown(cancel=True)

    def _close_backend(self) -> None:
        self._flush_pending_inline()
        if self._backend is not None:
            self._capture_backend_stats(self._backend)
            self._backend.shutdown()
            self._backend = None

    def _capture_backend_stats(self, backend: Backend) -> None:
        stats = getattr(backend, "stats", None)
        if stats is not None:
            self._backend_stats = stats()

    def _flush_pending_inline(self) -> None:
        """Release every not-yet-dispatched slot to the in-process
        path, so no reader can block on a chunk that will never be
        pulled."""
        with self._pump_lock:
            pending, self._pending = self._pending, []
        for _cost, _seq, _job, slot in pending:
            slot.release_inline()

    def _mark_broken(self, exc: Optional[BaseException] = None) -> None:
        """Drop to serial for every later submission (backend died)."""
        reason = "process pool broke"
        if exc is not None:
            if isinstance(exc, BackendBroken):
                reason = str(exc)
            else:
                reason = f"process pool broke: {type(exc).__name__}: {exc}"
        self.pool_broken = True
        self._note_fallback(reason)
        self._serial_fallback = True
        self._close_backend()

    def _note_fallback(self, reason: str) -> None:
        """Count one in-process fallback; keep every distinct reason."""
        self.metrics.counter("executor.serial_fallbacks").inc()
        if self.fallback_reason is None:
            self.fallback_reason = reason
        if reason not in self.fallback_reasons \
                and len(self.fallback_reasons) < 16:
            self.fallback_reasons.append(reason)
        if self.telemetry is not None:
            self.telemetry.point("fallback", reason)

    @property
    def effective_workers(self) -> int:
        """1 when running serially, else the configured worker count."""
        return 1 if self._serial_fallback else self.workers

    @property
    def transport_used(self) -> str:
        """``"serial"`` until a backend carries work, then the resolved
        transport (``"envelope"``, ``"pickle"`` or ``"socket"``)."""
        return self._transport_used

    def transport_stats(self) -> Dict[str, Any]:
        """Snapshot of the scheduler's data-plane counters.  A backend
        with its own accounting (the multi-node fleet: per-node
        contribution, redispatches, artifact-sync volume) appears under
        ``"backend"``; the snapshot survives backend shutdown."""
        metrics = self.metrics
        backend_stats = self._backend_stats
        if self._backend is not None:
            stats = getattr(self._backend, "stats", None)
            if stats is not None:
                backend_stats = stats()
        stats_dict = {
            "transport": self._transport_used,
            "workers": self.effective_workers,
            "envelope_count":
                metrics.counter("executor.envelope_count").value,
            "ipc_bytes_sent":
                metrics.counter("executor.ipc_bytes_sent").value,
            "ipc_bytes_recv":
                metrics.counter("executor.ipc_bytes_recv").value,
            "artifact_bytes":
                metrics.counter("executor.artifact_bytes").value,
            "encode_ns": metrics.counter("executor.encode_ns").value,
            "rehydrate_ns": metrics.counter("executor.rehydrate_ns").value,
            "dispatch_ns": metrics.counter("executor.dispatch_ns").value,
            "serial_fallbacks":
                metrics.counter("executor.serial_fallbacks").value,
            "fallback_reason": self.fallback_reason,
            "fallback_reasons": list(self.fallback_reasons),
            "pool_broken": self.pool_broken,
        }
        if backend_stats is not None:
            stats_dict["backend"] = backend_stats
        return stats_dict

    # -- execution ------------------------------------------------------
    def submit_job(self, job: Job) -> JobFuture:
        """Queue one job; its result is read with ``.result()``."""
        return self.submit_jobs([job])[0]

    def submit_jobs(self, jobs: Sequence[Job]) -> List[JobFuture]:
        """Submit a batch: cache lookups first, then longest jobs
        first, with cheap jobs chunked.

        Submission order and chunking affect only wall time (short
        tasks fill the tail of the schedule); the returned futures
        align index-for-index with ``jobs``.
        """
        return self._submit_jobs(list(jobs))

    def _submit_jobs(self, jobs: List[Job]) -> List[JobFuture]:
        if self.progress is not None:
            self.progress.add_total(len(jobs))
        futures: List[Optional[JobFuture]] = [None] * len(jobs)
        pending: List[Tuple[int, Job]] = []
        for i, job in enumerate(jobs):
            if self.pipeline is not None and job.fingerprint is not None:
                found, value = self.pipeline.lookup(job.fingerprint,
                                                    stage=job.kind)
                if found:
                    skey = (job.fingerprint
                            if self.pipeline.store.root is not None else None)
                    futures[i] = JobFuture(job, value=value, store_key=skey)
                    if self.telemetry is not None:
                        self.telemetry.point("cache_hit", job.span_label())
                    if self.progress is not None:
                        self.progress.cache_hit()
                    continue
            pending.append((i, job))
        if not pending:
            return futures
        backend = self._ensure_backend()
        if self.progress is not None:
            self.progress.set_workers(self.effective_workers)
        if backend is None:
            for i, job in pending:
                futures[i] = JobFuture(job, scheduler=self,
                                       pipeline=self.pipeline)
            return futures
        # Work-stealing dispatch: every pending job gets a slot on the
        # cost-ordered heap; the pump decides chunk membership only
        # when a worker is actually about to pull the chunk.
        with self._pump_lock:
            for i, job in pending:
                slot = _Slot(job)
                futures[i] = JobFuture(job, scheduler=self,
                                       pipeline=self.pipeline, slot=slot)
                heapq.heappush(self._pending,
                               (-job.cost_hint, self._heap_seq, job, slot))
                self._heap_seq += 1
        self._pump()
        return futures

    def map_jobs(self, jobs: Sequence[Job]) -> List:
        """Execute all jobs; results align index-for-index with jobs.

        Always routed through :meth:`submit_jobs` (even for one job or
        in serial mode, where futures resolve lazily in order) so cache
        lookups and stores apply uniformly.
        """
        return [f.result() for f in self.submit_jobs(list(jobs))]

    # -- work-stealing pump ---------------------------------------------
    def _chunksize(self, n_cheap: int) -> int:
        """Chunk size tuned to what *remains*: enough chunks to keep
        every worker busy twice over, capped so one chunk never
        serializes a long tail.  Re-derived on every pull, so chunks
        shrink as the sweep drains and the tail stays parallel."""
        if n_cheap <= 0:
            return 1
        return max(1, min(8, math.ceil(n_cheap / (self._pool_size() * 2))))

    def _pool_size(self) -> int:
        """Actual backend width (see the backends' ``pool_size``)."""
        if self._backend is not None:
            return self._backend.pool_size()
        if self.transport in ("socket", "remote"):
            return self.workers
        cores = os.cpu_count() or self.workers
        return max(1, min(self.workers, cores + 1))

    def _inflight_limit(self) -> int:
        """How many chunks may be dispatched at once: the backend's
        width plus a small buffer, so a worker finishing always finds
        the next chunk staged but chunk composition is decided as late
        as possible."""
        pool = self._pool_size()
        return pool + max(2, pool // 2)

    def _pump(self) -> None:
        """Dispatch pending chunks up to the in-flight window.

        Callable from any thread (completion callbacks run on backend
        threads): the lock is taken non-blocking, and a contender hands
        its request to the current holder via the repump flag instead
        of waiting — the holder re-runs until no request is pending, so
        no dispatch opportunity is ever lost and no backend thread ever
        blocks here.
        """
        while True:
            if not self._pump_lock.acquire(blocking=False):
                self._repump = True
                return
            try:
                self._repump = False
                broken = self._dispatch_ready()
            finally:
                self._pump_lock.release()
            if broken is not None:
                self._mark_broken(broken)
                return
            if not self._repump:
                return

    def _dispatch_ready(self) -> Optional[BaseException]:
        """Pull cost-ordered chunks off the heap and hand them to the
        backend while the in-flight window has room.  Runs with the
        pump lock held; returns the exception when the backend broke
        (handled by the caller outside the lock)."""
        if self._serial_fallback or self._backend is None:
            self._release_heap_inline()
            return None
        if not self._pending:
            return None
        t0 = time.perf_counter_ns()
        envelope = self._resolve_transport() == "envelope"
        broken: Optional[BaseException] = None
        while self._pending and self._inflight < self._inflight_limit():
            chunk = self._next_chunk()
            broken = self._dispatch_chunk(chunk, envelope)
            if broken is not None:
                self._release_heap_inline()
                break
        self.metrics.counter("executor.dispatch_ns").inc(
            time.perf_counter_ns() - t0)
        return broken

    def _release_heap_inline(self) -> None:
        pending, self._pending = self._pending, []
        for _cost, _seq, _job, slot in pending:
            slot.release_inline()

    def _next_chunk(self) -> List[Tuple[Job, _Slot]]:
        """The next cost-ordered chunk: an expensive job travels alone;
        a cheap one takes companions sized to the remaining heap."""
        neg_cost, _seq, job, slot = heapq.heappop(self._pending)
        chunk = [(job, slot)]
        if -neg_cost >= CHUNK_THRESHOLD:
            return chunk
        size = self._chunksize(len(self._pending) + 1)
        while len(chunk) < size and self._pending:
            _c, _s, j, s = heapq.heappop(self._pending)
            chunk.append((j, s))
        return chunk

    def _dispatch_chunk(self, chunk: List[Tuple[Job, _Slot]],
                        envelope: bool) -> Optional[BaseException]:
        """Frame one chunk and submit it.  An unpicklable chunk falls
        its slots to the inline path (not fatal); a backend submission
        failure releases the slots and reports the exception so the
        pump can mark the whole backend broken."""
        telemetry = self.telemetry
        items: List[Tuple[str, str, str, Any, str]] = []
        refs: List[str] = []
        for job, _slot in chunk:
            payload = job.for_wire(envelope)
            key = ""
            if envelope:
                key = job.fingerprint
                if key is None or not self._ipc_shared:
                    key = f"ipc:{self._seq:08d}"
                    self._seq += 1
                refs.extend(r for r in job.input_refs if r)
            if telemetry is not None:
                payload = _stamp_sweep(payload, telemetry.sweep_id)
            items.append((job.runner, job.kind, job.span_label(),
                          payload, key))
        try:
            blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError) as exc:
            self._note_fallback(
                f"spec not picklable: {type(exc).__name__}: {exc}")
            for _job, slot in chunk:
                slot.release_inline()
            return None
        telemetry_ctx = None
        if telemetry is not None:
            telemetry_ctx = (telemetry.sweep_id, time.time_ns())
        backend = self._backend
        try:
            submit_chunk = getattr(backend, "submit_chunk", None)
            if submit_chunk is not None:
                future = submit_chunk(blob, envelope, telemetry_ctx,
                                      tuple(dict.fromkeys(refs)))
            else:
                future = backend.submit(blob, envelope, telemetry_ctx)
        except (BackendBroken, BrokenProcessPool, OSError,
                RuntimeError) as exc:
            for _job, slot in chunk:
                slot.release_inline()
            return exc
        self.metrics.counter("executor.ipc_bytes_sent").inc(len(blob))
        if backend.name in ("socket", "remote"):
            self._transport_used = backend.name
        else:
            self._transport_used = "envelope" if envelope else "pickle"
        handle = _ChunkHandle(future)
        for ci, (_job, slot) in enumerate(chunk):
            slot.bind(handle, ci)
        with self._inflight_lock:
            self._inflight += 1
        count = len(chunk)
        future.add_done_callback(lambda _f: self._on_chunk_done(count))
        return None

    def _on_chunk_done(self, count: int) -> None:
        """Completion callback (runs on a backend thread): free one
        in-flight slot and pump the next chunk to the idle worker."""
        with self._inflight_lock:
            self._inflight -= 1
        if self.progress is not None:
            self.progress.completed(count)
        self._pump()

    def _resolve_transport(self) -> str:
        """The data plane: pickle only when asked for; envelope
        everywhere else (including the socket backend)."""
        return "pickle" if self.transport == "pickle" else "envelope"

    def _ensure_ipc_store(self) -> ArtifactStore:
        """The shared store envelopes travel through: the pipeline's
        own disk store when there is one (workers then write artifacts
        straight into the cache), else a scheduler-owned tempdir."""
        if self._ipc_store is not None:
            return self._ipc_store
        pipe_store = self.pipeline.store if self.pipeline is not None else None
        if pipe_store is not None and pipe_store.root is not None:
            self._ipc_store = pipe_store
            self._ipc_root = str(pipe_store.root)
            self._ipc_shared = True
        else:
            self._ipc_tmp = tempfile.mkdtemp(prefix="repro-ipc-")
            self._ipc_store = ArtifactStore(self._ipc_tmp)
            self._ipc_root = self._ipc_tmp
            self._ipc_shared = False
        return self._ipc_store

    def _make_backend(self) -> Backend:
        if self.transport == "socket":
            return LoopbackSocketBackend(self.workers)
        if self.transport == "remote":
            return RemoteBackend(self.hosts)
        return PoolBackend(self.workers)

    def _ensure_backend(self) -> Optional[Backend]:
        if self._serial_fallback:
            return None
        if self._backend is None:
            store_root = None
            if self._resolve_transport() == "envelope":
                self._ensure_ipc_store()
                store_root = self._ipc_root
            backend = self._make_backend()
            try:
                backend.start(store_root)
            except BackendUnavailable as exc:
                self._note_fallback(str(exc))
                self._serial_fallback = True
                return None
            self._backend = backend
        return self._backend
