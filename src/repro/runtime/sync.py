"""Fingerprint-keyed artifact sync: the FETCH/HAVE wire plane.

A multi-node sweep leaves bulk results where they were computed: each
node's workers seal artifacts into that node's *private*
:class:`~repro.pipeline.ArtifactStore` and ship back only envelopes
(key + digest + size).  The parent then moves artifacts — not results
— and only the content hashes one side is missing:

``HAVE``
    Availability query: "which of these fingerprints do you hold?"
    The parent asks before pushing a chunk's input artifacts to a node
    (a node that computed a replay itself is never sent it again), and
    a node's reply is the subset of keys it holds.
``PUT``
    Parent → node artifact push: the encoded blobs a dispatched chunk
    needs and the node reported missing.
``FETCH``
    Parent → node artifact pull: "send me these blobs" — issued
    lazily, only for envelope keys the parent's own store cannot
    supply, so an artifact present on two nodes crosses the wire once.
``ARTIFACTS``
    A node's reply to ``FETCH``/``PUT``: the requested ``{key: blob}``
    map (``PUT`` replies with an empty map as the acknowledgement).

Frames are codec-framed (:mod:`repro.pipeline.codec`) under their own
magic/version header, so they inherit the codec's strictness: any
truncation, trailing bytes, wrong magic or malformed body raises
:class:`SyncError` — a sync frame is either exactly right or rejected.
The artifact blobs they carry are themselves already-encoded store
objects whose content digests the receiver verifies before use.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Sequence, Tuple

from ..pipeline import codec

__all__ = [
    "SYNC_MAGIC",
    "SYNC_VERSION",
    "SYNC_OPS",
    "SyncError",
    "encode_sync",
    "decode_sync",
    "have_frame",
    "put_frame",
    "fetch_frame",
    "artifacts_frame",
]

SYNC_MAGIC = b"RBSY"   # Repro Binary SYnc
SYNC_VERSION = 1
_HEADER = struct.Struct("<4sH")

# op -> payload shape: a key list (HAVE / FETCH) or a key->blob map
# (PUT / ARTIFACTS).
SYNC_OPS = {
    "HAVE": "keys",
    "FETCH": "keys",
    "PUT": "blobs",
    "ARTIFACTS": "blobs",
}


class SyncError(ValueError):
    """A malformed sync frame (truncated, bad magic, unknown op,
    payload of the wrong shape).  Receivers treat it as a transport
    problem — degrade, never guess."""


def _check_keys(keys: Any) -> List[str]:
    if not isinstance(keys, list) \
            or not all(isinstance(k, str) and k for k in keys):
        raise SyncError("sync payload must be a list of non-empty keys")
    return keys


def _check_blobs(blobs: Any) -> Dict[str, bytes]:
    if not isinstance(blobs, dict) \
            or not all(isinstance(k, str) and k and isinstance(v, bytes)
                       for k, v in blobs.items()):
        raise SyncError("sync payload must map keys to encoded blobs")
    return blobs


def encode_sync(op: str, payload: Any) -> bytes:
    """One sync frame: header + codec body ``{"op": ..., "p": ...}``."""
    shape = SYNC_OPS.get(op)
    if shape is None:
        raise SyncError(f"unknown sync op {op!r}")
    if shape == "keys":
        payload = list(_check_keys(list(payload)))
    else:
        payload = dict(_check_blobs(dict(payload)))
    return _HEADER.pack(SYNC_MAGIC, SYNC_VERSION) \
        + codec.encode({"op": op, "p": payload})


def decode_sync(blob: bytes) -> Tuple[str, Any]:
    """Parse a sync frame; raises :class:`SyncError` on anything that
    is not byte-exactly a frame :func:`encode_sync` produced."""
    if len(blob) < _HEADER.size:
        raise SyncError("truncated sync frame: no header")
    magic, version = _HEADER.unpack_from(blob)
    if magic != SYNC_MAGIC:
        raise SyncError(f"bad sync magic {magic!r}")
    if version != SYNC_VERSION:
        raise SyncError(f"unsupported sync frame version {version}")
    try:
        doc = codec.decode(blob[_HEADER.size:])
    except codec.CodecError as exc:
        raise SyncError(f"corrupt sync body: {exc}")
    if not isinstance(doc, dict) or set(doc) != {"op", "p"}:
        raise SyncError("sync body must be {'op', 'p'}")
    op = doc["op"]
    shape = SYNC_OPS.get(op)
    if shape is None:
        raise SyncError(f"unknown sync op {op!r}")
    payload = doc["p"]
    if shape == "keys":
        return op, _check_keys(payload)
    return op, _check_blobs(payload)


def have_frame(keys: Sequence[str]) -> bytes:
    """Availability query (parent → node) or reply (node → parent)."""
    return encode_sync("HAVE", list(keys))


def fetch_frame(keys: Sequence[str]) -> bytes:
    """Artifact pull request (parent → node)."""
    return encode_sync("FETCH", list(keys))


def put_frame(blobs: Dict[str, bytes]) -> bytes:
    """Artifact push (parent → node)."""
    return encode_sync("PUT", blobs)


def artifacts_frame(blobs: Dict[str, bytes]) -> bytes:
    """Artifact delivery (node → parent, replying to FETCH/PUT)."""
    return encode_sync("ARTIFACTS", blobs)
