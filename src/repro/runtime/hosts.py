"""Host inventory and worker bootstrap for multi-node sweeps.

A distributed sweep is described by a list of :class:`HostSpec`
entries — host name plus worker count — parsed from the CLI
(``--hosts a:4,b:8``) or a TOML hosts file.  Two launchers turn a spec
into running ``python -m repro.runtime.worker`` processes behind one
:class:`WorkerLauncher` interface:

:class:`LocalLauncher`
    Plain ``subprocess.Popen`` on this machine.  The host names
    ``local`` / ``localhost`` / ``127.0.0.1`` select it, and each such
    entry becomes an independent *pseudo-host* — its own private store
    root, its own sync channel, its own worker fleet — so CI exercises
    the entire multi-node path (launch, artifact sync, re-dispatch,
    merge) on one box.
:class:`SshLauncher`
    The same command line wrapped in ``ssh`` for anything else.
    Workers connect *back* to the parent over TCP, so the only remote
    requirements are a reachable python and the package on
    ``PYTHONPATH`` (``remote_python`` / ``remote_pythonpath`` in the
    hosts file override both).

Launchers only start processes; the protocol the workers then speak —
frames, heartbeats, artifact sync — lives in
:mod:`repro.runtime.remote` and :mod:`repro.runtime.worker`.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence

__all__ = [
    "HostSpec",
    "HostsError",
    "LocalLauncher",
    "SshLauncher",
    "WorkerLauncher",
    "launcher_for",
    "load_hosts_file",
    "parse_hosts",
]

# Host names that mean "spawn on this machine" (a pseudo-host).
_LOCAL_NAMES = frozenset({"local", "localhost", "127.0.0.1"})
_MAX_WORKERS_PER_HOST = 64


class HostsError(ValueError):
    """A malformed ``--hosts`` value or hosts file."""


@dataclass(frozen=True)
class HostSpec:
    """One node of the fleet: where to launch and how many workers."""

    name: str
    workers: int
    # SSH-only knobs (ignored for pseudo-hosts).
    ssh_user: Optional[str] = None
    remote_python: Optional[str] = None
    remote_pythonpath: Optional[str] = None

    @property
    def is_local(self) -> bool:
        # Pseudo-host names carry a disambiguating suffix ("local#0");
        # strip it before the membership test.
        return self.name.split("#", 1)[0] in _LOCAL_NAMES

    def __post_init__(self) -> None:
        if not self.name:
            raise HostsError("host name must be non-empty")
        if not 1 <= self.workers <= _MAX_WORKERS_PER_HOST:
            raise HostsError(
                f"host {self.name!r}: workers must be in "
                f"1..{_MAX_WORKERS_PER_HOST}, got {self.workers}")


def parse_hosts(text: str) -> List[HostSpec]:
    """Parse ``"a:4,b:8"`` into host specs.

    Each ``local`` entry becomes a distinct pseudo-host (``local#0``,
    ``local#1``, ...); repeating a *remote* name is an error.
    """
    specs: List[HostSpec] = []
    seen: Dict[str, int] = {}
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        name, sep, count = part.rpartition(":")
        if not sep or not name:
            raise HostsError(
                f"host entry {part!r} must be 'name:workers'")
        try:
            workers = int(count)
        except ValueError:
            raise HostsError(
                f"host entry {part!r}: worker count {count!r} "
                "is not an integer")
        if name in _LOCAL_NAMES:
            idx = seen.get("local", 0)
            seen["local"] = idx + 1
            name = f"local#{idx}"
        elif name in seen:
            raise HostsError(f"duplicate host {name!r}")
        else:
            seen[name] = 1
        specs.append(HostSpec(name=name, workers=workers))
    if not specs:
        raise HostsError("no hosts given")
    return specs


def load_hosts_file(path: Path) -> List[HostSpec]:
    """Load a TOML hosts file::

        [[hosts]]
        name = "a"
        workers = 4
        ssh_user = "repro"          # optional
        remote_python = "python3"   # optional
        remote_pythonpath = "/opt/repro/src"  # optional
    """
    import tomllib

    try:
        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise HostsError(f"cannot read hosts file {path}: {exc}")
    entries = doc.get("hosts")
    if not isinstance(entries, list) or not entries:
        raise HostsError(
            f"hosts file {path} must define at least one [[hosts]] table")
    specs: List[HostSpec] = []
    seen: Dict[str, int] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise HostsError(f"hosts file {path}: [[hosts]] must be tables")
        unknown = set(entry) - {"name", "workers", "ssh_user",
                                "remote_python", "remote_pythonpath"}
        if unknown:
            raise HostsError(
                f"hosts file {path}: unknown keys {sorted(unknown)}")
        name = entry.get("name")
        workers = entry.get("workers")
        if not isinstance(name, str) or not isinstance(workers, int):
            raise HostsError(
                f"hosts file {path}: each host needs a string 'name' "
                "and integer 'workers'")
        if name in _LOCAL_NAMES:
            idx = seen.get("local", 0)
            seen["local"] = idx + 1
            name = f"local#{idx}"
        elif name in seen:
            raise HostsError(f"hosts file {path}: duplicate host {name!r}")
        else:
            seen[name] = 1
        specs.append(HostSpec(
            name=name,
            workers=workers,
            ssh_user=entry.get("ssh_user"),
            remote_python=entry.get("remote_python"),
            remote_pythonpath=entry.get("remote_pythonpath"),
        ))
    return specs


# ======================================================================
# Launchers
# ======================================================================
class WorkerLauncher(Protocol):
    """Starts one worker process for a host and hands back its
    :class:`subprocess.Popen`.  The returned process must run
    ``python -m repro.runtime.worker`` with ``argv`` appended; the
    worker dials the parent back over TCP, so launchers never need a
    return channel of their own."""

    def launch(self, argv: Sequence[str]) -> subprocess.Popen: ...


def _pkg_root() -> str:
    """The directory that must be on a worker's ``sys.path`` for
    ``import repro`` to resolve to this checkout."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


@dataclass
class LocalLauncher:
    """Spawn a worker on this machine (pseudo-host path)."""

    env_extra: Dict[str, str] = field(default_factory=dict)

    def launch(self, argv: Sequence[str]) -> subprocess.Popen:
        import os

        env = dict(os.environ)
        root = _pkg_root()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (f"{root}{os.pathsep}{existing}"
                             if existing else root)
        env.update(self.env_extra)
        return subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.worker", *argv],
            env=env,
            stdin=subprocess.DEVNULL,
        )

@dataclass
class SshLauncher:
    """Spawn a worker on a remote host over ``ssh``.

    BatchMode forbids interactive prompts — an unreachable or
    unauthenticated host fails fast and the backend degrades instead
    of hanging on a password prompt.
    """

    spec: HostSpec
    connect_timeout_s: int = 10

    def launch(self, argv: Sequence[str]) -> subprocess.Popen:
        python = self.spec.remote_python or "python3"
        target = self.spec.name.split("#", 1)[0]
        if self.spec.ssh_user:
            target = f"{self.spec.ssh_user}@{target}"
        remote_cmd = [python, "-m", "repro.runtime.worker", *argv]
        if self.spec.remote_pythonpath:
            remote_cmd = [
                "env", f"PYTHONPATH={self.spec.remote_pythonpath}",
                *remote_cmd,
            ]
        return subprocess.Popen(
            ["ssh", "-o", "BatchMode=yes",
             "-o", f"ConnectTimeout={self.connect_timeout_s}",
             target, *remote_cmd],
            stdin=subprocess.DEVNULL,
        )


def launcher_for(spec: HostSpec) -> WorkerLauncher:
    """The launcher a host spec selects: subprocess for pseudo-hosts,
    SSH for everything else."""
    if spec.is_local:
        return LocalLauncher()
    return SshLauncher(spec=spec)
