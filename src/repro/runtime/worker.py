"""Fleet worker: ``python -m repro.runtime.worker``.

Spawned by :class:`~repro.runtime.remote.RemoteBackend` (one process
per worker slot, locally or over SSH), this entry point dials the
parent's listener back and speaks protocol v2.  The hello frame is
``{"pid", "proto": 2, "node", "role"}``; what follows depends on the
role:

``worker`` (default)
    The execution loop.  The bootstrap mirrors a pool worker exactly —
    :func:`~repro.runtime.backends._worker_init` opens the node's
    artifact store, warms the scenario registry, freezes the GC,
    ignores SIGINT — then each ``("chunk", id, wire, envelope,
    telemetry_ctx)`` frame runs through
    :func:`~repro.runtime.backends.execute_wire_chunk_keys` and is
    answered with ``("done", id, ok, payload, sealed_keys, njobs)``.
    While a chunk executes, a heartbeat thread sends ``("hb", id)``
    about once a second so the parent can tell *slow* from *dead*.
``sync``
    The artifact plane.  One per node: serves the HAVE/PUT/FETCH
    frames of :mod:`repro.runtime.sync` against the node's store, and
    skips the scenario warm-up (it never executes jobs).

Shutdown semantics (the part chaos recovery leans on): EOF on the
socket is the parent's clean shutdown signal — exit 0.  SIGTERM means
the *node* is being taken down: an idle worker exits immediately, a
busy one finishes the chunk in hand, flushes its done frame, and only
then exits — either way with status 143 (128+SIGTERM), so a killed
node is distinguishable from a crashed job.  A job that raises is not
a worker death at all: the reply carries ``ok=False`` with the
traceback and the worker lives on.

Runner code is resolved by reference inside the chunk executor, so
this module stays ignorant of what the jobs *are* — the property that
lets the identical entry point run on a different machine.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import traceback

from .backends import (
    BackendBroken,
    _worker_init,
    execute_wire_chunk_keys,
    recv_frame,
    send_frame,
)
from .sync import (
    SyncError,
    artifacts_frame,
    decode_sync,
    have_frame,
)

PROTOCOL_VERSION = 2
EXIT_SIGTERM = 143  # 128 + SIGTERM: "node taken down", not "job crashed"

# While executing a chunk, heartbeat this often.  Far below the
# parent's silence timeout, so a healthy-but-slow chunk never looks
# like a dead worker.
_HEARTBEAT_INTERVAL_S = 1.0


class _Terminated(Exception):
    """SIGTERM arrived while the worker was idle."""


class _TermState:
    """SIGTERM bookkeeping: raise immediately when idle, defer to the
    end of the in-flight chunk (after its done frame is flushed) when
    busy."""

    def __init__(self) -> None:
        self.busy = False
        self.pending = False

    def handler(self, signum, frame) -> None:  # noqa: ARG002
        self.pending = True
        if not self.busy:
            raise _Terminated


class _Heartbeat:
    """Sends ``("hb", chunk_id)`` once a second while a chunk is in
    flight.  Sharing the connection's send lock with the main loop
    keeps heartbeat and done frames from interleaving mid-frame."""

    def __init__(self, conn: socket.socket, send_lock: threading.Lock):
        self._conn = conn
        self._send_lock = send_lock
        self._cond = threading.Condition()
        self._chunk: int | None = None
        self._stop = False
        self._thread = threading.Thread(
            target=self._run, name="repro-worker-hb", daemon=True)
        self._thread.start()

    def begin(self, chunk_id: int) -> None:
        with self._cond:
            self._chunk = chunk_id
            self._cond.notify()

    def end(self) -> None:
        with self._cond:
            self._chunk = None

    def stop(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify()

    def _run(self) -> None:
        while True:
            with self._cond:
                while self._chunk is None and not self._stop:
                    self._cond.wait()
                if self._stop:
                    return
                self._cond.wait(timeout=_HEARTBEAT_INTERVAL_S)
                if self._stop:
                    return
                chunk = self._chunk
                if chunk is None:
                    continue
            try:
                with self._send_lock:
                    send_frame(self._conn, ("hb", chunk))
            except OSError:
                return  # connection gone; the main loop notices too


def _connect(host: str, port: int, node: str, role: str) -> socket.socket:
    conn = socket.create_connection((host, port))
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform quirk, latency only
        pass
    send_frame(conn, {"pid": os.getpid(), "proto": PROTOCOL_VERSION,
                      "node": node, "role": role})
    return conn


def serve(host: str, port: int, store_root: str | None,
          node: str = "", role: str = "worker") -> int:
    if role == "sync":
        return serve_sync(host, port, store_root, node)
    # Install the SIGTERM handler before anything observable happens
    # (the hello frame in particular): from the parent's point of view
    # a connected worker is *always* one that exits 143 on SIGTERM.
    term = _TermState()
    try:
        signal.signal(signal.SIGTERM, term.handler)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    conn = None
    heartbeat = None
    try:
        _worker_init(store_root or None)
        conn = _connect(host, port, node, "worker")
        send_lock = threading.Lock()
        heartbeat = _Heartbeat(conn, send_lock)
        while True:
            try:
                frame = recv_frame(conn)
            except (BackendBroken, OSError):
                return 0  # parent closed the connection: clean shutdown
            if not (isinstance(frame, tuple) and frame
                    and frame[0] == "chunk"):
                return 0
            _tag, chunk_id, wire, envelope, telemetry_ctx = frame
            term.busy = True
            heartbeat.begin(chunk_id)
            try:
                try:
                    payload, keys, njobs = execute_wire_chunk_keys(
                        wire, envelope, telemetry_ctx)
                    reply = ("done", chunk_id, True, payload, keys, njobs)
                except _Terminated:  # pragma: no cover - tiny race
                    return EXIT_SIGTERM
                except Exception:  # noqa: BLE001 - report, don't die
                    reply = ("done", chunk_id, False,
                             traceback.format_exc(), [], 0)
                heartbeat.end()
                try:
                    with send_lock:
                        send_frame(conn, reply)
                except (OSError, BackendBroken):
                    return 0
            finally:
                heartbeat.end()
                term.busy = False
            if term.pending:
                return EXIT_SIGTERM
    except _Terminated:
        return EXIT_SIGTERM
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if conn is not None:
            conn.close()


def serve_sync(host: str, port: int, store_root: str | None,
               node: str = "") -> int:
    """The node's artifact-plane endpoint: HAVE/PUT/FETCH against the
    node store.  Every reply op is fixed by the request op, and any
    malformed frame ends the process — the parent treats a broken sync
    channel as a transport failure and re-routes, never guesses."""
    from ..pipeline import ArtifactStore

    term = _TermState()
    try:
        signal.signal(signal.SIGTERM, term.handler)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    conn = None
    try:
        store = ArtifactStore(store_root or None)
        conn = _connect(host, port, node, "sync")
        while True:
            try:
                frame = recv_frame(conn)
            except (BackendBroken, OSError):
                return 0
            if not (isinstance(frame, tuple) and len(frame) == 2
                    and frame[0] == "sync"):
                return 0
            try:
                op, payload = decode_sync(frame[1])
                if op == "HAVE":
                    held = [k for k in payload if store.raw_get(k)[0]]
                    reply = have_frame(held)
                elif op == "PUT":
                    for key, blob in payload.items():
                        store.put_encoded(key, blob,
                                          meta={"stage": "sync"})
                    reply = artifacts_frame({})
                elif op == "FETCH":
                    blobs = {}
                    for key in payload:
                        found, blob = store.raw_get(key)
                        if found:
                            blobs[key] = blob
                    reply = artifacts_frame(blobs)
                else:
                    return 1
            except (SyncError, OSError):
                return 1
            try:
                send_frame(conn, ("sync", reply))
            except (OSError, BackendBroken):
                return 0
    except _Terminated:
        return EXIT_SIGTERM
    finally:
        if conn is not None:
            conn.close()


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.runtime.worker")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--store-root", default=None)
    parser.add_argument("--node", default="")
    parser.add_argument("--role", choices=("worker", "sync"),
                        default="worker")
    args = parser.parse_args(argv)
    return serve(args.host, args.port, args.store_root,
                 node=args.node, role=args.role)


if __name__ == "__main__":
    sys.exit(main())
