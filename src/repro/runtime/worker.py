"""Socket-backend worker: ``python -m repro.runtime.worker``.

Spawned by :class:`~repro.runtime.backends.LoopbackSocketBackend`, one
process per worker.  The bootstrap mirrors a pool worker exactly —
:func:`~repro.runtime.backends._worker_init` opens the shared store,
warms the scenario registry, freezes the GC, ignores SIGINT — then the
process connects back to the parent's listener, announces itself, and
serves a strict one-request-one-reply loop: each request frame is
``(wire, envelope, telemetry_ctx)``, each reply frame is ``(ok,
payload)`` where ``payload`` is the chunk's result bytes from
:func:`~repro.runtime.backends.execute_wire_chunk` (or the error text
when ``ok`` is false).  EOF on the socket is the shutdown signal.

Runner code is resolved by reference inside ``execute_wire_chunk``, so
this module stays ignorant of what the jobs *are* — the property that
makes the wire protocol reusable for ROADMAP item 2's multi-node
scheduler, where this same entry point runs on a different machine.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import traceback

from .backends import (
    BackendBroken,
    _worker_init,
    execute_wire_chunk,
    recv_frame,
    send_frame,
)


def serve(host: str, port: int, store_root: str | None) -> int:
    _worker_init(store_root or None)
    conn = socket.create_connection((host, port))
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform quirk, latency only
        pass
    send_frame(conn, {"pid": os.getpid()})
    try:
        while True:
            try:
                request = recv_frame(conn)
            except (BackendBroken, OSError):
                return 0  # parent closed the connection: clean shutdown
            wire, envelope, telemetry_ctx = request
            try:
                reply = execute_wire_chunk(wire, envelope, telemetry_ctx)
                send_frame(conn, (True, reply))
            except (OSError, BackendBroken):
                return 0
            except Exception:  # noqa: BLE001 - report, don't die silently
                try:
                    send_frame(conn, (False, traceback.format_exc()))
                except (OSError, BackendBroken):
                    return 0
    finally:
        conn.close()


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.runtime.worker")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--store-root", default=None)
    args = parser.parse_args(argv)
    return serve(args.host, args.port, args.store_root)


if __name__ == "__main__":
    sys.exit(main())
