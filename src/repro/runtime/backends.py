"""Execution backends: where chunks of jobs actually run.

A backend is the *mechanism* under the scheduler: it owns worker
lifecycle (spawn, warm-up, teardown) and moves opaque chunk frames to
workers and back.  Everything above it — chunking, ordering, caching,
retry, result rehydration — lives in :mod:`repro.runtime.scheduler`
and is backend-agnostic, which is what makes every backend produce
byte-identical results.

Three implementations:

:class:`SerialBackend`
    No workers at all.  The scheduler executes jobs lazily in the
    parent process; this class exists so "serial" is a first-class
    member of the backend matrix rather than a missing pool.
:class:`PoolBackend`
    A warm ``ProcessPoolExecutor``: workers are initialized once per
    process (scenario registry resolved, shared artifact store opened,
    garbage collection frozen and moved to chunk boundaries) and
    reused across phases and subcommands.
:class:`LoopbackSocketBackend`
    Worker subprocesses reached over a length-prefixed TCP protocol on
    localhost — the seed of a multi-node scheduler.  The wire protocol
    carries only opaque chunk frames (the same bytes the pool pipes
    carry), workers bootstrap themselves from a ``repro.runtime.worker``
    entry point, and bulk results still travel through the shared
    artifact store; only the machine boundary is simulated.  Exercised
    on localhost so it is CI-testable.

The worker-side entry point :func:`execute_wire_chunk` is shared by
every remote backend: it decodes a chunk frame, resolves each job's
runner by reference, executes, seals bulk results into the shared
store (envelope data plane), and ships back per-job
:class:`~repro.runtime.job.JobResult` frames plus the chunk's
telemetry spans.
"""

from __future__ import annotations

import gc
import os
import pickle
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from queue import Empty, SimpleQueue
from typing import Any, List, Optional, Tuple

from ..obs.telemetry import (
    capture_begin,
    capture_end,
    pack_spans,
    record_point,
    span_begin,
    span_end,
)
from ..pipeline import ArtifactStore, codec
from .job import JobResult, JobTransportError, resolve_runner

__all__ = [
    "Backend",
    "BackendBroken",
    "BackendUnavailable",
    "LoopbackSocketBackend",
    "PoolBackend",
    "SerialBackend",
    "execute_wire_chunk",
    "worker_store",
]


class BackendUnavailable(RuntimeError):
    """The backend cannot start in this environment (restricted
    sandbox, missing semaphores, no sockets).  The scheduler degrades
    to serial execution and records why."""


class BackendBroken(RuntimeError):
    """The backend died mid-flight (worker crash, closed socket).  The
    scheduler re-executes affected jobs in the parent process."""


# ======================================================================
# Worker-process state
# ======================================================================
# The shared artifact store envelopes travel through, opened once per
# worker process by the backend's initializer.
_WORKER_STORE: Optional[ArtifactStore] = None

# A worker runs gc.collect() between chunks instead of letting the
# cyclic collector interrupt jobs; past this many chunk executions
# without a sweep it collects unconditionally.
_GC_CHUNKS_PER_SWEEP = 4
_worker_chunks_since_gc = 0


def worker_store() -> Optional[ArtifactStore]:
    """This worker process's shared artifact store (``None`` in the
    parent, or when the backend runs without a store)."""
    return _WORKER_STORE


def _worker_init(store_root: Optional[str]) -> None:
    """Warm one worker process: open the shared artifact store and
    resolve the scenario registry once, so individual jobs pay
    neither.

    Also moves garbage collection to chunk boundaries: the parent's
    heap (modules, scenario registry, codec tables) is frozen out of
    the collector's reach — it is effectively immortal in a forked
    worker, and scanning it on every generation-2 pass is the single
    largest fixed tax on job execution — and the automatic collector
    is disabled.  Jobs allocate in bursts; :func:`execute_wire_chunk`
    sweeps cycles explicitly between chunks, where a pause costs
    nothing.

    SIGINT is ignored: a Ctrl-C at the terminal belongs to the parent,
    which cancels outstanding chunks and shuts the backend down
    cleanly — workers must not die mid-chunk with tracebacks.
    """
    global _WORKER_STORE, _worker_chunks_since_gc
    _worker_chunks_since_gc = 0
    _WORKER_STORE = ArtifactStore(store_root) if store_root else None
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from ..scenarios import registry

    registry.registered_scenarios()
    gc.freeze()
    gc.disable()


# Results whose encoded artifact is smaller than this ride the backend
# pipe/socket inline: below it, a store write + parent read + digest
# check costs more than just shipping the bytes.  Bulk artifacts
# (trace record lists, distillation results) sit far above it.
_ENVELOPE_MIN_BYTES = 4096


def _seal(result: Any, key: str, kind: str) -> JobResult:
    """Encode a result, park it in the worker's shared store, and
    return the envelope.  Small results, results the codec cannot
    frame, and results the store cannot take are returned raw instead
    (the pipe path for this item)."""
    tok = span_begin()
    t0 = time.perf_counter_ns()
    try:
        blob = codec.encode_gz(result)
    except codec.CodecError:
        return JobResult.of(result)
    encode_ns = time.perf_counter_ns() - t0
    span_end(tok, "encode", kind, nbytes=len(blob))
    if len(blob) < _ENVELOPE_MIN_BYTES:
        return JobResult.of(result)
    tok = span_begin()
    try:
        _WORKER_STORE.put_encoded(key, blob, meta={"stage": kind})
    except OSError:
        return JobResult.of(result)
    span_end(tok, "store_write", kind, nbytes=len(blob))
    from .job import ResultEnvelope

    return JobResult.enveloped(ResultEnvelope(
        key=key, digest=codec.content_digest(blob),
        nbytes=len(blob), encode_ns=encode_ns))


def execute_wire_chunk(wire: bytes, envelope: bool,
                       telemetry_ctx: Optional[Tuple[str, int]] = None
                       ) -> bytes:
    """Run a chunk of jobs in one backend round-trip.

    ``wire`` is a pickled list of ``(runner_ref, kind, label, payload,
    key)`` tuples; the return is a pickled ``(results, spans_blob)``
    pair — per-item :class:`~repro.runtime.job.JobResult` frames
    aligned with the input, plus the chunk's stage spans as one codec
    frame (or ``None`` when telemetry is off).  Pickling is done here,
    not by the backend, so the parent can count the exact bytes that
    crossed the process boundary.

    ``telemetry_ctx`` is ``(sweep_id, submit_ns)``: its presence turns
    span capture on for this chunk, and ``submit_ns`` (the parent's
    wall clock at submission) yields the queue-wait span — clamped at
    zero, since wall clocks across processes may disagree by more than
    a short queue wait.
    """
    chunk_tok = None
    if telemetry_ctx is not None:
        sweep_id, submit_ns = telemetry_ctx
        capture_begin(sweep_id)
        now = time.time_ns()
        record_point("queue", ts=submit_ns, dur=now - submit_ns)
        chunk_tok = span_begin()
    items: List[Tuple[str, str, str, Any, str]] = pickle.loads(wire)
    out: List[JobResult] = []
    for runner_ref, kind, label, payload, key in items:
        tok = span_begin()
        try:
            runner = resolve_runner(runner_ref)
            result = runner(payload)
        except JobTransportError as exc:
            span_end(tok, kind, label, failed=True)
            out.append(JobResult.failed(str(exc)))
            continue
        span_end(tok, kind, label)
        if envelope and _WORKER_STORE is not None:
            out.append(_seal(result, key, kind))
        else:
            out.append(JobResult.of(result))
    spans_blob = None
    if telemetry_ctx is not None:
        span_end(chunk_tok, "chunk", f"{len(items)} job(s)")
        spans_blob = codec.encode(pack_spans(capture_end()))
    wire_out = pickle.dumps((out, spans_blob),
                            protocol=pickle.HIGHEST_PROTOCOL)
    global _worker_chunks_since_gc
    if not gc.isenabled():
        _worker_chunks_since_gc += 1
        if _worker_chunks_since_gc >= _GC_CHUNKS_PER_SWEEP:
            _worker_chunks_since_gc = 0
            gc.collect()
    return wire_out


# ======================================================================
# Wire framing (shared with repro.runtime.worker)
# ======================================================================
_FRAME_HEADER = struct.Struct("<Q")


def send_frame(sock: socket.socket, obj: Any) -> int:
    """Pickle ``obj`` and send it length-prefixed; returns frame size."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_FRAME_HEADER.pack(len(blob)) + blob)
    return len(blob)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one length-prefixed pickled frame (raises
    :class:`BackendBroken` on a short read — the peer went away)."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    (length,) = _FRAME_HEADER.unpack(header)
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise BackendBroken("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ======================================================================
# Backends
# ======================================================================
class Backend:
    """The protocol a scheduler backend implements.

    ``remote`` says whether chunks cross a process boundary (``False``
    only for :class:`SerialBackend`, which the scheduler special-cases
    into lazy in-parent execution).  ``start`` receives the shared
    store root (or ``None`` on the pickle data plane) and must raise
    :class:`BackendUnavailable` if this environment cannot host the
    backend.  ``submit`` takes the opaque chunk frame produced by the
    scheduler and returns a future resolving to the worker's reply
    frame; a dead backend surfaces as :class:`BackendBroken` (or
    ``BrokenProcessPool``) either from ``submit`` or from the future.
    ``shutdown(cancel=True)`` additionally drops chunks that have not
    started (the Ctrl-C path).
    """

    name = "backend"
    remote = True

    def start(self, store_root: Optional[str]) -> None:
        raise NotImplementedError

    def pool_size(self) -> int:
        raise NotImplementedError

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        raise NotImplementedError

    def shutdown(self, cancel: bool = False) -> None:
        raise NotImplementedError


class SerialBackend(Backend):
    """In-parent execution: no workers, no transport, no pickling.

    The scheduler never calls ``submit`` on it — jobs run lazily on
    first result access via the very same runner functions a worker
    would call, which is what makes serial the reference point of the
    equivalence matrix."""

    name = "serial"
    remote = False

    def start(self, store_root: Optional[str]) -> None:
        pass

    def pool_size(self) -> int:
        return 1

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        raise BackendUnavailable("serial backend takes no submissions")

    def shutdown(self, cancel: bool = False) -> None:
        pass


class PoolBackend(Backend):
    """The warm GC-frozen ``ProcessPoolExecutor`` (PR-5 lineage).

    ``workers`` is capped at core count + 1: heavy oversubscription
    cannot finish CPU-bound jobs sooner — it only time-slices them,
    which *stretches the longest job* (the sweep's critical path)
    while cheap work drains around it.  One extra worker beyond the
    core count soaks up the slack whenever a sibling blocks on store
    I/O (the ``make -j N+1`` rule).
    """

    name = "pool"
    remote = True

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None

    def pool_size(self) -> int:
        cores = os.cpu_count() or self.workers
        return max(1, min(self.workers, cores + 1))

    def start(self, store_root: Optional[str]) -> None:
        if self._pool is not None:
            return
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.pool_size(),
                initializer=_worker_init, initargs=(store_root,))
        except (OSError, ValueError, NotImplementedError,
                ImportError) as exc:
            raise BackendUnavailable(
                f"pool unavailable: {type(exc).__name__}: {exc}")

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        if self._pool is None:
            raise BackendBroken("pool backend not started")
        try:
            return self._pool.submit(execute_wire_chunk, wire, envelope,
                                     telemetry_ctx)
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            raise BackendBroken(
                f"process pool broke: {type(exc).__name__}: {exc}")

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None


class LoopbackSocketBackend(Backend):
    """Worker subprocesses reached over length-prefixed TCP frames.

    The parent binds an ephemeral localhost listener, spawns
    ``workers`` interpreter subprocesses running
    ``python -m repro.runtime.worker --port <p>``, and hands each
    accepted connection to a dispatcher thread that feeds it chunks
    from a shared queue — work-conserving scheduling with zero
    protocol beyond "one request frame, one reply frame".  Workers
    initialize exactly like pool workers (:func:`_worker_init` via the
    entry point), so results are byte-identical to every other
    backend.

    Unlike the pool, worker count is *not* capped at core count: the
    backend exists to exercise the multi-node wire protocol, and a
    4-worker matrix row must mean 4 real worker processes even on a
    small CI box.
    """

    name = "socket"
    remote = True

    # How long to wait for a spawned worker to connect back before
    # declaring the backend unavailable (imports on a cold FS can be
    # slow; a worker that crashes on startup fails much faster).
    ACCEPT_TIMEOUT_S = 60.0

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._listener: Optional[socket.socket] = None
        self._procs: List[subprocess.Popen] = []
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._queue: "SimpleQueue" = SimpleQueue()
        self._lock = threading.Lock()
        self._closed = False
        self.worker_pids: List[int] = []

    def pool_size(self) -> int:
        return self.workers

    # -- lifecycle ------------------------------------------------------
    def start(self, store_root: Optional[str]) -> None:
        if self._conns:
            return
        try:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            listener.listen(self.workers)
        except OSError as exc:
            raise BackendUnavailable(f"cannot bind loopback socket: {exc}")
        self._listener = listener
        port = listener.getsockname()[1]
        env = dict(os.environ)
        # Make the repro package importable in the fresh interpreter
        # regardless of how the parent found it (installed, src tree,
        # pytest pythonpath).
        pkg_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        parts = [pkg_root] + [p for p in sys.path if p]
        if env.get("PYTHONPATH"):
            parts.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        cmd = [sys.executable, "-m", "repro.runtime.worker",
               "--port", str(port)]
        if store_root:
            cmd.extend(["--store-root", store_root])
        try:
            for _ in range(self.workers):
                self._procs.append(subprocess.Popen(
                    cmd, env=env, stdin=subprocess.DEVNULL))
        except OSError as exc:
            self.shutdown()
            raise BackendUnavailable(f"cannot spawn socket worker: {exc}")
        listener.settimeout(self.ACCEPT_TIMEOUT_S)
        try:
            for _ in range(self.workers):
                conn, _addr = listener.accept()
                conn.settimeout(None)
                hello = recv_frame(conn)
                self.worker_pids.append(int(hello.get("pid", 0)))
                self._conns.append(conn)
        except (socket.timeout, OSError, BackendBroken) as exc:
            self.shutdown()
            raise BackendUnavailable(
                f"socket worker failed to connect: {exc}")
        for i, conn in enumerate(self._conns):
            thread = threading.Thread(target=self._dispatch, args=(conn,),
                                      name=f"repro-socket-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        if self._closed or not self._conns:
            raise BackendBroken("socket backend is closed")
        future: Future = Future()
        self._queue.put((wire, envelope, telemetry_ctx, future))
        return future

    def _dispatch(self, conn: socket.socket) -> None:
        """One dispatcher thread per worker connection: pull a chunk,
        round-trip it, resolve its future.  A dead connection fails the
        in-flight future; queued chunks stay available to the
        surviving workers."""
        while True:
            item = self._queue.get()
            if item is None:
                return
            wire, envelope, telemetry_ctx, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                send_frame(conn, (wire, envelope, telemetry_ctx))
                ok, reply = recv_frame(conn)
            except (OSError, BackendBroken, pickle.PickleError) as exc:
                future.set_exception(BackendBroken(
                    f"socket worker died: {exc}"))
                return
            if ok:
                future.set_result(reply)
            else:
                future.set_exception(BackendBroken(
                    f"socket worker error: {reply}"))

    def shutdown(self, cancel: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if cancel:
            # Drop chunks that have not started; their futures cancel
            # and the scheduler never reads them again.
            while True:
                try:
                    item = self._queue.get_nowait()
                except Empty:
                    break
                if item is not None:
                    item[3].cancel()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)
        for conn in self._conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
        self._conns = []
        self._threads = []
        self._procs = []
