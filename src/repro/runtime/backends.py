"""Execution backends: where chunks of jobs actually run.

A backend is the *mechanism* under the scheduler: it owns worker
lifecycle (spawn, warm-up, teardown) and moves opaque chunk frames to
workers and back.  Everything above it — chunking, ordering, caching,
retry, result rehydration — lives in :mod:`repro.runtime.scheduler`
and is backend-agnostic, which is what makes every backend produce
byte-identical results.

This module holds the in-machine implementations:

:class:`SerialBackend`
    No workers at all.  The scheduler executes jobs lazily in the
    parent process; this class exists so "serial" is a first-class
    member of the backend matrix rather than a missing pool.
:class:`PoolBackend`
    A warm ``ProcessPoolExecutor``: workers are initialized once per
    process (scenario registry resolved, shared artifact store opened,
    garbage collection frozen and moved to chunk boundaries) and
    reused across phases and subcommands.

The socket-reached backends — the multi-node
:class:`~repro.runtime.remote.RemoteBackend` fabric and its one-host
:class:`~repro.runtime.remote.LoopbackSocketBackend` configuration —
live in :mod:`repro.runtime.remote` and build on the wire framing
(:func:`send_frame` / :func:`recv_frame`) and error taxonomy defined
here.

The worker-side entry point :func:`execute_wire_chunk` is shared by
every remote backend: it decodes a chunk frame, resolves each job's
runner by reference, executes, seals bulk results into the shared
store (envelope data plane), and ships back per-job
:class:`~repro.runtime.job.JobResult` frames plus the chunk's
telemetry spans.  :func:`execute_wire_chunk_keys` is the multi-node
variant that additionally reports which store keys the chunk sealed,
so the parent learns where each artifact lives without opening the
reply payload.
"""

from __future__ import annotations

import gc
import os
import pickle
import signal
import socket
import struct
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, List, Optional, Tuple

from ..obs.telemetry import (
    capture_begin,
    capture_end,
    pack_spans,
    record_point,
    span_begin,
    span_end,
)
from ..pipeline import ArtifactStore, codec
from .job import JobResult, JobTransportError, resolve_runner

__all__ = [
    "Backend",
    "BackendBroken",
    "BackendUnavailable",
    "PoolBackend",
    "SerialBackend",
    "execute_wire_chunk",
    "execute_wire_chunk_keys",
    "worker_store",
]


class BackendUnavailable(RuntimeError):
    """The backend cannot start in this environment (restricted
    sandbox, missing semaphores, no sockets).  The scheduler degrades
    to serial execution and records why."""


class BackendBroken(RuntimeError):
    """The backend died mid-flight (worker crash, closed socket).  The
    scheduler re-executes affected jobs in the parent process."""


# ======================================================================
# Worker-process state
# ======================================================================
# The shared artifact store envelopes travel through, opened once per
# worker process by the backend's initializer.
_WORKER_STORE: Optional[ArtifactStore] = None

# A worker runs gc.collect() between chunks instead of letting the
# cyclic collector interrupt jobs; past this many chunk executions
# without a sweep it collects unconditionally.
_GC_CHUNKS_PER_SWEEP = 4
_worker_chunks_since_gc = 0


def worker_store() -> Optional[ArtifactStore]:
    """This worker process's shared artifact store (``None`` in the
    parent, or when the backend runs without a store)."""
    return _WORKER_STORE


def _worker_init(store_root: Optional[str]) -> None:
    """Warm one worker process: open the shared artifact store and
    resolve the scenario registry once, so individual jobs pay
    neither.

    Also moves garbage collection to chunk boundaries: the parent's
    heap (modules, scenario registry, codec tables) is frozen out of
    the collector's reach — it is effectively immortal in a forked
    worker, and scanning it on every generation-2 pass is the single
    largest fixed tax on job execution — and the automatic collector
    is disabled.  Jobs allocate in bursts; :func:`execute_wire_chunk`
    sweeps cycles explicitly between chunks, where a pause costs
    nothing.

    SIGINT is ignored: a Ctrl-C at the terminal belongs to the parent,
    which cancels outstanding chunks and shuts the backend down
    cleanly — workers must not die mid-chunk with tracebacks.
    """
    global _WORKER_STORE, _worker_chunks_since_gc
    _worker_chunks_since_gc = 0
    _WORKER_STORE = ArtifactStore(store_root) if store_root else None
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from ..scenarios import registry

    registry.registered_scenarios()
    gc.freeze()
    gc.disable()


# Results whose encoded artifact is smaller than this ride the backend
# pipe/socket inline: below it, a store write + parent read + digest
# check costs more than just shipping the bytes.  Bulk artifacts
# (trace record lists, distillation results) sit far above it.
_ENVELOPE_MIN_BYTES = 4096


def _seal(result: Any, key: str, kind: str) -> JobResult:
    """Encode a result, park it in the worker's shared store, and
    return the envelope.  Small results, results the codec cannot
    frame, and results the store cannot take are returned raw instead
    (the pipe path for this item)."""
    tok = span_begin()
    t0 = time.perf_counter_ns()
    try:
        blob = codec.encode_gz(result)
    except codec.CodecError:
        return JobResult.of(result)
    encode_ns = time.perf_counter_ns() - t0
    span_end(tok, "encode", kind, nbytes=len(blob))
    if len(blob) < _ENVELOPE_MIN_BYTES:
        return JobResult.of(result)
    tok = span_begin()
    try:
        _WORKER_STORE.put_encoded(key, blob, meta={"stage": kind})
    except OSError:
        return JobResult.of(result)
    span_end(tok, "store_write", kind, nbytes=len(blob))
    from .job import ResultEnvelope

    return JobResult.enveloped(ResultEnvelope(
        key=key, digest=codec.content_digest(blob),
        nbytes=len(blob), encode_ns=encode_ns))


def execute_wire_chunk(wire: bytes, envelope: bool,
                       telemetry_ctx: Optional[Tuple[str, int]] = None
                       ) -> bytes:
    """Run a chunk of jobs in one backend round-trip.

    ``wire`` is a pickled list of ``(runner_ref, kind, label, payload,
    key)`` tuples; the return is a pickled ``(results, spans_blob)``
    pair — per-item :class:`~repro.runtime.job.JobResult` frames
    aligned with the input, plus the chunk's stage spans as one codec
    frame (or ``None`` when telemetry is off).  Pickling is done here,
    not by the backend, so the parent can count the exact bytes that
    crossed the process boundary.

    ``telemetry_ctx`` is ``(sweep_id, submit_ns)``: its presence turns
    span capture on for this chunk, and ``submit_ns`` (the parent's
    wall clock at submission) yields the queue-wait span — clamped at
    zero, since wall clocks across processes may disagree by more than
    a short queue wait.
    """
    wire_out, _keys, _njobs = execute_wire_chunk_keys(
        wire, envelope, telemetry_ctx)
    return wire_out


def execute_wire_chunk_keys(wire: bytes, envelope: bool,
                            telemetry_ctx: Optional[Tuple[str, int]] = None
                            ) -> Tuple[bytes, List[str], int]:
    """:func:`execute_wire_chunk` plus provenance: returns ``(wire_out,
    sealed_keys, njobs)`` where ``sealed_keys`` names every store
    artifact this chunk parked in the worker's store.  The multi-node
    done frame carries the extras so the parent learns which node
    holds each artifact — the index behind lazy ``FETCH`` — without
    unpickling the reply payload."""
    chunk_tok = None
    if telemetry_ctx is not None:
        sweep_id, submit_ns = telemetry_ctx
        capture_begin(sweep_id)
        now = time.time_ns()
        record_point("queue", ts=submit_ns, dur=now - submit_ns)
        chunk_tok = span_begin()
    items: List[Tuple[str, str, str, Any, str]] = pickle.loads(wire)
    out: List[JobResult] = []
    sealed: List[str] = []
    for runner_ref, kind, label, payload, key in items:
        tok = span_begin()
        try:
            runner = resolve_runner(runner_ref)
            result = runner(payload)
        except JobTransportError as exc:
            span_end(tok, kind, label, failed=True)
            out.append(JobResult.failed(str(exc)))
            continue
        span_end(tok, kind, label)
        if envelope and _WORKER_STORE is not None:
            job_result = _seal(result, key, kind)
            if job_result.envelope is not None:
                sealed.append(job_result.envelope.key)
            out.append(job_result)
        else:
            out.append(JobResult.of(result))
    spans_blob = None
    if telemetry_ctx is not None:
        span_end(chunk_tok, "chunk", f"{len(items)} job(s)")
        spans_blob = codec.encode(pack_spans(capture_end()))
    wire_out = pickle.dumps((out, spans_blob),
                            protocol=pickle.HIGHEST_PROTOCOL)
    global _worker_chunks_since_gc
    if not gc.isenabled():
        _worker_chunks_since_gc += 1
        if _worker_chunks_since_gc >= _GC_CHUNKS_PER_SWEEP:
            _worker_chunks_since_gc = 0
            gc.collect()
    return wire_out, sealed, len(items)


# ======================================================================
# Wire framing (shared with repro.runtime.worker)
# ======================================================================
_FRAME_HEADER = struct.Struct("<Q")


def send_frame(sock: socket.socket, obj: Any) -> int:
    """Pickle ``obj`` and send it length-prefixed; returns frame size."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_FRAME_HEADER.pack(len(blob)) + blob)
    return len(blob)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one length-prefixed pickled frame (raises
    :class:`BackendBroken` on a short read — the peer went away)."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    (length,) = _FRAME_HEADER.unpack(header)
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise BackendBroken("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ======================================================================
# Backends
# ======================================================================
class Backend:
    """The protocol a scheduler backend implements.

    ``remote`` says whether chunks cross a process boundary (``False``
    only for :class:`SerialBackend`, which the scheduler special-cases
    into lazy in-parent execution).  ``start`` receives the shared
    store root (or ``None`` on the pickle data plane) and must raise
    :class:`BackendUnavailable` if this environment cannot host the
    backend.  ``submit`` takes the opaque chunk frame produced by the
    scheduler and returns a future resolving to the worker's reply
    frame; a dead backend surfaces as :class:`BackendBroken` (or
    ``BrokenProcessPool``) either from ``submit`` or from the future.
    ``shutdown(cancel=True)`` additionally drops chunks that have not
    started (the Ctrl-C path).
    """

    name = "backend"
    remote = True

    def start(self, store_root: Optional[str]) -> None:
        raise NotImplementedError

    def pool_size(self) -> int:
        raise NotImplementedError

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        raise NotImplementedError

    def shutdown(self, cancel: bool = False) -> None:
        raise NotImplementedError


class SerialBackend(Backend):
    """In-parent execution: no workers, no transport, no pickling.

    The scheduler never calls ``submit`` on it — jobs run lazily on
    first result access via the very same runner functions a worker
    would call, which is what makes serial the reference point of the
    equivalence matrix."""

    name = "serial"
    remote = False

    def start(self, store_root: Optional[str]) -> None:
        pass

    def pool_size(self) -> int:
        return 1

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        raise BackendUnavailable("serial backend takes no submissions")

    def shutdown(self, cancel: bool = False) -> None:
        pass


class PoolBackend(Backend):
    """The warm GC-frozen ``ProcessPoolExecutor`` (PR-5 lineage).

    ``workers`` is capped at core count + 1: heavy oversubscription
    cannot finish CPU-bound jobs sooner — it only time-slices them,
    which *stretches the longest job* (the sweep's critical path)
    while cheap work drains around it.  One extra worker beyond the
    core count soaks up the slack whenever a sibling blocks on store
    I/O (the ``make -j N+1`` rule).
    """

    name = "pool"
    remote = True

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None

    def pool_size(self) -> int:
        cores = os.cpu_count() or self.workers
        return max(1, min(self.workers, cores + 1))

    def start(self, store_root: Optional[str]) -> None:
        if self._pool is not None:
            return
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.pool_size(),
                initializer=_worker_init, initargs=(store_root,))
        except (OSError, ValueError, NotImplementedError,
                ImportError) as exc:
            raise BackendUnavailable(
                f"pool unavailable: {type(exc).__name__}: {exc}")

    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        if self._pool is None:
            raise BackendBroken("pool backend not started")
        try:
            return self._pool.submit(execute_wire_chunk, wire, envelope,
                                     telemetry_ctx)
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            raise BackendBroken(
                f"process pool broke: {type(exc).__name__}: {exc}")

    def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None
