"""The multi-node execution fabric: :class:`RemoteBackend`.

One backend generalizes every socket-reached worker fleet:

* ``repro validate --hosts a:4,b:8`` — real hosts, bootstrapped over
  SSH (:mod:`repro.runtime.hosts`), each node owning a *private*
  :class:`~repro.pipeline.ArtifactStore`;
* ``--hosts local:2,local:2`` — N pseudo-hosts on this machine, same
  private stores, same sync plane, so CI exercises the entire
  multi-node path on one box;
* ``--transport socket`` — :class:`LoopbackSocketBackend`, now a
  one-pseudo-host :class:`RemoteBackend` whose node store *is* the
  parent's shared store (no sync plane needed on one machine).

Workers are ``python -m repro.runtime.worker`` processes that dial the
parent's listener back and speak protocol v2 (see
:mod:`repro.runtime.worker`): the parent sends ``("chunk", id, wire,
envelope, telemetry_ctx)``, the worker streams ``("hb", id)``
heartbeats while executing and finishes with ``("done", id, ok,
payload, sealed_keys, njobs)``.

Dispatch is **pull-based**: chunks go into one shared queue and each
worker's dispatcher thread takes the next one as its worker frees up —
no static assignment, so a slow node simply takes fewer chunks.  A
connection that EOFs or goes silent past the heartbeat timeout marks
that worker dead; its in-flight chunk is re-queued onto the survivors
(chunks are pure functions of their wire bytes, so re-execution cannot
change results) up to :data:`MAX_DISPATCH_ATTEMPTS`, after which — or
when no workers survive — the chunk's future fails with
:class:`~repro.runtime.backends.BackendBroken` and the scheduler
re-executes in-process.  Either way the output is byte-identical;
redispatches are surfaced in :meth:`RemoteBackend.stats`, never on
stdout.

The artifact plane (private stores only): each node gets one extra
*sync* connection serving the FETCH/HAVE/PUT frames of
:mod:`repro.runtime.sync`.  Before a chunk is dispatched, its jobs'
``input_refs`` are synced to the target node (HAVE first, so a node
that computed an artifact itself is never sent it again); after a
chunk completes, the parent knows which node holds each sealed key and
:meth:`fetch_artifact` pulls a missing artifact on demand, writing it
into the parent store so every key crosses the wire at most once no
matter how many nodes hold it.
"""

from __future__ import annotations

import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import Future
from queue import Empty, SimpleQueue
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..pipeline import ArtifactStore, codec
from .backends import (
    Backend,
    BackendBroken,
    BackendUnavailable,
    recv_frame,
    send_frame,
)
from .hosts import HostSpec, launcher_for
from .sync import (
    SyncError,
    decode_sync,
    fetch_frame,
    have_frame,
    put_frame,
)

__all__ = [
    "MAX_DISPATCH_ATTEMPTS",
    "LoopbackSocketBackend",
    "RemoteBackend",
]

# A chunk lost to a dead worker is re-queued at most this many times
# before its future fails over to in-process execution.
MAX_DISPATCH_ATTEMPTS = 3

PROTOCOL_VERSION = 2


class _Chunk:
    """One submitted chunk riding the shared dispatch queue."""

    __slots__ = ("chunk_id", "wire", "envelope", "telemetry_ctx",
                 "input_refs", "future", "attempts")

    def __init__(self, chunk_id: int, wire: bytes, envelope: bool,
                 telemetry_ctx: Optional[Tuple[str, int]],
                 input_refs: Sequence[str]):
        self.chunk_id = chunk_id
        self.wire = wire
        self.envelope = envelope
        self.telemetry_ctx = telemetry_ctx
        self.input_refs = tuple(input_refs)
        self.future: Future = Future()
        self.attempts = 0


class _SyncChannel:
    """One node's artifact-sync connection (strictly request/reply,
    serialized by a lock so any thread can use it)."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._lock = threading.Lock()

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def _roundtrip(self, frame: bytes) -> Tuple[str, Any]:
        with self._lock:
            send_frame(self._sock, ("sync", frame))
            reply = recv_frame(self._sock)
        if not (isinstance(reply, tuple) and len(reply) == 2
                and reply[0] == "sync"):
            raise SyncError(f"unexpected sync reply frame: {reply!r}")
        return decode_sync(reply[1])

    def have(self, keys: Sequence[str]) -> List[str]:
        op, payload = self._roundtrip(have_frame(keys))
        if op != "HAVE":
            raise SyncError(f"HAVE answered with {op}")
        return payload

    def put(self, blobs: Dict[str, bytes]) -> None:
        op, _ = self._roundtrip(put_frame(blobs))
        if op != "ARTIFACTS":
            raise SyncError(f"PUT answered with {op}")

    def fetch(self, keys: Sequence[str]) -> Dict[str, bytes]:
        op, payload = self._roundtrip(fetch_frame(keys))
        if op != "ARTIFACTS":
            raise SyncError(f"FETCH answered with {op}")
        return payload


class _Node:
    """Parent-side state of one fleet node."""

    def __init__(self, spec: HostSpec, store_root: Optional[str]):
        self.spec = spec
        self.store_root = store_root
        self.procs: List[subprocess.Popen] = []
        self.sync: Optional[_SyncChannel] = None
        # Keys known to be in the node's store (sealed there or pushed
        # there), so input sync never repeats a transfer.  Guarded by
        # ``lock`` — several dispatcher threads serve one node.
        self.synced_keys: set = set()
        self.lock = threading.Lock()
        # Contribution counters for the run ledger.
        self.chunks = 0
        self.jobs = 0
        self.bytes_pushed = 0
        self.bytes_fetched = 0
        self.busy_ns = 0

    def stats(self) -> Dict[str, Any]:
        return {
            "host": self.spec.name,
            "workers": self.spec.workers,
            "chunks": self.chunks,
            "jobs": self.jobs,
            "bytes_pushed": self.bytes_pushed,
            "bytes_fetched": self.bytes_fetched,
            "wall_s": round(self.busy_ns / 1e9, 6),
        }


class _Conn:
    """One worker connection plus its dispatcher-thread state."""

    __slots__ = ("sock", "node", "pid", "thread", "busy_chunk", "dead")

    def __init__(self, sock: socket.socket, node: _Node, pid: int):
        self.sock = sock
        self.node = node
        self.pid = pid
        self.thread: Optional[threading.Thread] = None
        self.busy_chunk: Optional[int] = None
        self.dead = False


class RemoteBackend(Backend):
    """Work-stealing execution across a fleet of worker nodes.

    ``hosts`` describes the fleet (see :mod:`repro.runtime.hosts`).
    With ``shared_store=True`` every node opens the parent's own
    artifact store (single-machine loopback mode — no sync plane);
    otherwise each node gets a private store root and one sync
    connection, and artifacts move only by content key.
    """

    name = "remote"
    remote = True

    # A spawned worker must connect back within this long (cold-FS
    # imports are slow; a worker that crashes on startup fails faster).
    ACCEPT_TIMEOUT_S = 60.0
    # No frame (heartbeat or reply) from a busy worker for this long
    # means it is hung or dead: its chunk is re-dispatched.  Workers
    # heartbeat every second while executing.
    HEARTBEAT_TIMEOUT_S = 30.0

    def __init__(self, hosts: Sequence[HostSpec],
                 shared_store: bool = False):
        self.hosts = list(hosts)
        if not self.hosts:
            raise ValueError("RemoteBackend needs at least one host")
        self.shared_store = shared_store
        self.workers = sum(h.workers for h in self.hosts)
        self._nodes: List[_Node] = []
        self._conns: List[_Conn] = []
        self._listener: Optional[socket.socket] = None
        self._queue: "SimpleQueue[Optional[_Chunk]]" = SimpleQueue()
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._tmp: Optional[str] = None
        self._parent_store: Optional[ArtifactStore] = None
        self._chunk_seq = 0
        # Which node sealed each artifact key (from done frames).
        self._key_origin: Dict[str, _Node] = {}
        # Resilience and sync accounting (see stats()).
        self._redispatches = 0
        self._workers_lost = 0
        self._fetch_requests = 0
        self._fetch_keys: set = set()

    def pool_size(self) -> int:
        return self.workers

    # -- lifecycle ------------------------------------------------------
    def start(self, store_root: Optional[str]) -> None:
        if self._started:
            return
        all_local = all(h.is_local for h in self.hosts)
        bind_host = "127.0.0.1" if all_local else ""
        try:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind((bind_host, 0))
            total = self.workers + (0 if self._store_is_shared(store_root)
                                    else len(self.hosts))
            listener.listen(total)
        except OSError as exc:
            raise BackendUnavailable(f"cannot bind fleet listener: {exc}")
        self._listener = listener
        port = listener.getsockname()[1]
        private = not self._store_is_shared(store_root)
        if private:
            self._tmp = tempfile.mkdtemp(prefix="repro-fleet-")
            if store_root:
                self._parent_store = ArtifactStore(store_root)
        expected: Dict[Tuple[str, str], int] = {}
        try:
            for spec in self.hosts:
                if private:
                    node_root = (os.path.join(self._tmp, spec.name
                                              .replace("#", "_"))
                                 if spec.is_local else
                                 f"/tmp/repro-node-{os.getpid()}-"
                                 f"{spec.name.split('#')[0]}")
                else:
                    node_root = store_root
                node = _Node(spec, node_root)
                self._nodes.append(node)
                launcher = launcher_for(spec)
                connect_host = ("127.0.0.1" if spec.is_local
                                else socket.gethostname())
                base = ["--host", connect_host, "--port", str(port),
                        "--node", spec.name]
                if node_root:
                    base += ["--store-root", node_root]
                for _ in range(spec.workers):
                    node.procs.append(launcher.launch(base))
                expected[(spec.name, "worker")] = spec.workers
                if private:
                    node.procs.append(
                        launcher.launch(base + ["--role", "sync"]))
                    expected[(spec.name, "sync")] = 1
        except OSError as exc:
            self.shutdown()
            raise BackendUnavailable(f"cannot launch fleet worker: {exc}")
        self._accept_fleet(expected)
        for i, conn in enumerate(self._conns):
            thread = threading.Thread(
                target=self._dispatch, args=(conn,),
                name=f"repro-fleet-{conn.node.spec.name}-{i}", daemon=True)
            conn.thread = thread
            thread.start()
        self._started = True

    def _store_is_shared(self, store_root: Optional[str]) -> bool:
        # Without any store there is nothing to sync either way.
        return self.shared_store or not store_root

    def _accept_fleet(self, expected: Dict[Tuple[str, str], int]) -> None:
        """Collect every expected (node, role) connection, in whatever
        order the worker processes come up."""
        by_name = {node.spec.name: node for node in self._nodes}
        remaining = dict(expected)
        self._listener.settimeout(self.ACCEPT_TIMEOUT_S)
        try:
            while any(count > 0 for count in remaining.values()):
                sock, _addr = self._listener.accept()
                sock.settimeout(None)
                try:
                    sock.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - platform quirk
                    pass
                hello = recv_frame(sock)
                name = hello.get("node", "")
                role = hello.get("role", "worker")
                proto = hello.get("proto", 1)
                node = by_name.get(name)
                if node is None or proto != PROTOCOL_VERSION \
                        or remaining.get((name, role), 0) <= 0:
                    sock.close()
                    raise BackendUnavailable(
                        f"unexpected fleet hello {hello!r}")
                remaining[(name, role)] -= 1
                if role == "sync":
                    node.sync = _SyncChannel(sock)
                else:
                    self._conns.append(
                        _Conn(sock, node, int(hello.get("pid", 0))))
        except (socket.timeout, OSError, BackendBroken) as exc:
            self.shutdown()
            raise BackendUnavailable(
                f"fleet worker failed to connect: {exc}")
        finally:
            if self._listener is not None:
                self._listener.settimeout(None)

    def shutdown(self, cancel: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if cancel:
            self._drain_queue(lambda chunk: chunk.future.cancel())
        for conn in self._conns:
            if conn.thread is not None:
                self._queue.put(None)
        for conn in self._conns:
            if conn.thread is not None:
                conn.thread.join(timeout=10.0)
        for conn in self._conns:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.sock.close()
        for node in self._nodes:
            if node.sync is not None:
                node.sync.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for node in self._nodes:
            for proc in node.procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:  # pragma: no cover
                        proc.kill()
                        proc.wait()
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None
        self._conns = []
        self._nodes = []

    def _drain_queue(self, action) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except Empty:
                return
            if item is not None:
                action(item)

    # -- submission -----------------------------------------------------
    def submit(self, wire: bytes, envelope: bool,
               telemetry_ctx: Optional[Tuple[str, int]]) -> Future:
        return self.submit_chunk(wire, envelope, telemetry_ctx)

    def submit_chunk(self, wire: bytes, envelope: bool,
                     telemetry_ctx: Optional[Tuple[str, int]],
                     input_refs: Sequence[str] = ()) -> Future:
        with self._lock:
            if self._closed or not self._started:
                raise BackendBroken("remote backend is closed")
            if not any(not c.dead for c in self._conns):
                raise BackendBroken("no live fleet workers")
            self._chunk_seq += 1
            chunk = _Chunk(self._chunk_seq, wire, envelope, telemetry_ctx,
                           input_refs)
        self._queue.put(chunk)
        return chunk.future

    # -- the dispatcher (one thread per worker connection) --------------
    def _dispatch(self, conn: _Conn) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            if conn.dead:
                # This worker died earlier; hand the chunk to a
                # survivor's dispatcher instead of swallowing it.
                self._requeue_or_fail(item, "worker already dead")
                return
            if not item.future.set_running_or_notify_cancel():
                continue
            if not self._sync_inputs(conn.node, item.input_refs):
                self._worker_lost(conn, item, "input sync failed")
                return
            t0 = time.perf_counter_ns()
            conn.busy_chunk = item.chunk_id
            try:
                send_frame(conn.sock, ("chunk", item.chunk_id, item.wire,
                                       item.envelope, item.telemetry_ctx))
                reply = self._await_done(conn, item.chunk_id)
            except (OSError, BackendBroken, socket.timeout) as exc:
                conn.busy_chunk = None
                self._worker_lost(conn, item, f"fleet worker died: {exc}")
                return
            conn.busy_chunk = None
            ok, payload, keys, njobs = reply
            node = conn.node
            with node.lock:
                node.chunks += 1
                node.jobs += njobs
                node.busy_ns += time.perf_counter_ns() - t0
                node.synced_keys.update(keys)
            for key in keys:
                self._key_origin[key] = node
            if ok:
                item.future.set_result(payload)
            else:
                item.future.set_exception(BackendBroken(
                    f"fleet worker error: {payload}"))

    def _await_done(self, conn: _Conn, chunk_id: int) -> tuple:
        """Read frames until this chunk's done frame; heartbeats only
        reset the silence clock."""
        conn.sock.settimeout(self.HEARTBEAT_TIMEOUT_S)
        try:
            while True:
                frame = recv_frame(conn.sock)
                tag = frame[0]
                if tag == "hb":
                    continue
                if tag == "done" and frame[1] == chunk_id:
                    return frame[2:]
                raise BackendBroken(f"unexpected worker frame {tag!r}")
        finally:
            try:
                conn.sock.settimeout(None)
            except OSError:
                pass

    def _worker_lost(self, conn: _Conn, chunk: Optional[_Chunk],
                     reason: str) -> None:
        """A connection died or went silent: re-queue its chunk onto
        the survivors, and if none remain fail everything pending."""
        with self._lock:
            conn.dead = True
            self._workers_lost += 1
            live = sum(1 for c in self._conns if not c.dead)
        try:
            conn.sock.close()
        except OSError:
            pass
        if chunk is not None:
            self._requeue_or_fail(chunk, reason)
        if live == 0:
            self._drain_queue(lambda c: c.future.set_exception(
                BackendBroken(f"all fleet workers lost ({reason})")))

    def _requeue_or_fail(self, chunk: _Chunk, reason: str) -> None:
        chunk.attempts += 1
        with self._lock:
            live = sum(1 for c in self._conns if not c.dead)
            closed = self._closed
        if closed or live == 0 or chunk.attempts >= MAX_DISPATCH_ATTEMPTS:
            chunk.future.set_exception(BackendBroken(
                f"chunk lost after {chunk.attempts} attempt(s): {reason}"))
            return
        with self._lock:
            self._redispatches += 1
        # A consumed future cannot be re-awaited, so the re-queued
        # chunk carries a fresh one chained to the original.
        original = chunk.future
        chunk.future = Future()

        def _chain(f: Future) -> None:
            if f.cancelled():
                original.cancel()
            elif f.exception() is not None:
                original.set_exception(f.exception())
            else:
                original.set_result(f.result())

        chunk.future.add_done_callback(_chain)
        self._queue.put(chunk)

    # -- artifact plane -------------------------------------------------
    def _sync_inputs(self, node: _Node, refs: Sequence[str]) -> bool:
        """Make every input artifact available in ``node``'s store.
        HAVE first (a node that computed an artifact is never re-sent
        it), then PUT only what is missing.  Returns False on a sync
        transport failure — the chunk is then re-dispatched elsewhere
        rather than executed against an incomplete store."""
        if not refs or node.sync is None:
            return True
        with node.lock:
            missing = [r for r in refs if r not in node.synced_keys]
            if not missing:
                return True
            try:
                held = set(node.sync.have(missing))
                node.synced_keys.update(held)
                to_push = [r for r in missing if r not in held]
                blobs: Dict[str, bytes] = {}
                for ref in to_push:
                    if self._parent_store is None:
                        return False
                    found, blob = self._parent_store.raw_get(ref)
                    if not found:
                        return False
                    blobs[ref] = blob
                if blobs:
                    node.sync.put(blobs)
                    node.bytes_pushed += sum(len(b) for b in blobs.values())
                    node.synced_keys.update(blobs)
            except (SyncError, OSError, BackendBroken):
                return False
        return True

    def fetch_artifact(self, key: str,
                       digest: Optional[str] = None) -> Optional[bytes]:
        """Pull one sealed artifact from whichever node holds it.

        The parent store is the merge point: a key already fetched (or
        computed locally) is served from it without touching the wire,
        which is what makes an artifact present on N nodes cross the
        network exactly once.  A ``digest`` mismatch returns ``None``
        (the scheduler recomputes) without poisoning the parent store.
        """
        if self._parent_store is not None:
            found, blob = self._parent_store.raw_get(key)
            if found:
                return blob
        origin = self._key_origin.get(key)
        nodes = [origin] if origin is not None else [
            n for n in self._nodes if n.sync is not None]
        for node in nodes:
            if node.sync is None:
                continue
            try:
                with self._lock:
                    self._fetch_requests += 1
                    self._fetch_keys.add(key)
                blobs = node.sync.fetch([key])
            except (SyncError, OSError, BackendBroken):
                continue
            blob = blobs.get(key)
            if blob is None:
                continue
            if digest is not None and codec.content_digest(blob) != digest:
                return None
            with node.lock:
                node.bytes_fetched += len(blob)
            if self._parent_store is not None:
                try:
                    self._parent_store.put_encoded(key, blob,
                                                   meta={"stage": "sync"})
                except OSError:
                    pass  # fetch still succeeded; only the memo is lost
            return blob
        return None

    # -- introspection --------------------------------------------------
    def active_workers(self) -> List[Tuple[str, int]]:
        """(node, pid) of every worker currently executing a chunk —
        the chaos tests aim their SIGKILL with this."""
        return [(c.node.spec.name, c.pid) for c in self._conns
                if not c.dead and c.busy_chunk is not None]

    def stats(self) -> Dict[str, Any]:
        """Fleet accounting for transport stats and the run ledger."""
        return {
            "nodes": [node.stats() for node in self._nodes],
            "redispatches": self._redispatches,
            "workers_lost": self._workers_lost,
            "sync": {
                "fetch_requests": self._fetch_requests,
                "unique_keys_fetched": len(self._fetch_keys),
                "bytes_fetched": sum(n.bytes_fetched for n in self._nodes),
                "bytes_pushed": sum(n.bytes_pushed for n in self._nodes),
            },
        }


class LoopbackSocketBackend(RemoteBackend):
    """The ``--transport socket`` backend: one local pseudo-host whose
    workers share the parent's artifact store.

    Since PR 10 this is a :class:`RemoteBackend` configuration, so the
    loopback transport exercises — and is protected by — the same
    pull-based dispatch, heartbeat and re-dispatch machinery as a real
    fleet.  Worker count is *not* capped at core count: a 4-worker
    matrix row must mean 4 real worker processes even on a small CI
    box.
    """

    name = "socket"

    def __init__(self, workers: int):
        super().__init__([HostSpec(name="local#0",
                                   workers=max(1, int(workers)))],
                         shared_store=True)

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of the connected workers (kept for parity with the
        pre-PR-10 loopback backend's attribute)."""
        return [c.pid for c in self._conns]
