"""Shared execution wiring for one CLI invocation.

Every bulk subcommand (``validate``, ``check``, ``fuzz``, golden
regeneration) needs the same four pieces of plumbing: an artifact
pipeline over ``--cache-dir``, a scheduler over ``--workers`` /
``--transport``, a progress meter over ``--progress``, and a run
ledger over ``--run-dir``.  :class:`RuntimeSession` owns all four so
subcommands stop hand-rolling them — and so one warm backend is
reused when a single invocation runs several phases (``repro check
--golden`` runs invariant checks *and* golden comparison through the
same pool).

:func:`shared_pipeline` is the per-process pipeline memo used by
worker-side job runners: a worker process opens one
:class:`~repro.pipeline.Pipeline` per cache root and reuses it across
every chunk it executes, mirroring how the parent holds one pipeline
per invocation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..obs.telemetry import RunLedger, SweepProgress, table_digest
from ..pipeline import Pipeline, as_pipeline

__all__ = [
    "ExecutionConfig",
    "RuntimeSession",
    "command_ledger_record",
    "shared_pipeline",
]


# ----------------------------------------------------------------------
# Per-process pipeline memo (worker side)
# ----------------------------------------------------------------------
_PIPELINES: Dict[str, Pipeline] = {}


def shared_pipeline(cache_root: Optional[str]) -> Optional[Pipeline]:
    """One :class:`~repro.pipeline.Pipeline` per cache root per
    process, opened on first use.  Worker-side runners resolve their
    wire payload's ``cache_root`` through this so a warm worker pays
    the store-open cost once, not once per job."""
    if not cache_root:
        return None
    root = os.path.abspath(str(cache_root))
    pipe = _PIPELINES.get(root)
    if pipe is None:
        pipe = as_pipeline(root)
        _PIPELINES[root] = pipe
    return pipe


# ----------------------------------------------------------------------
# Execution configuration (the shared CLI flags, as a value)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionConfig:
    """The shared execution flags of every bulk subcommand."""

    workers: Optional[int] = None
    transport: str = "auto"
    cache_dir: Optional[str] = None
    progress: bool = False
    run_dir: Optional[str] = None
    hosts: Optional[str] = None

    @classmethod
    def from_args(cls, args: Any) -> "ExecutionConfig":
        """Read the shared flags off an argparse namespace (missing
        attributes fall back to the defaults, so subcommands that do
        not take a flag still get a valid config)."""
        return cls(
            workers=getattr(args, "workers", None),
            transport=getattr(args, "transport", "auto"),
            cache_dir=getattr(args, "cache_dir", None),
            progress=bool(getattr(args, "progress", False)),
            run_dir=getattr(args, "run_dir", None),
            hosts=getattr(args, "hosts", None),
        )


class RuntimeSession:
    """One invocation's execution state: pipeline + scheduler +
    progress + ledger, created lazily and torn down once.

    The scheduler is a
    :class:`~repro.validation.parallel.TrialExecutor` (the
    :class:`~repro.runtime.scheduler.Scheduler` subclass that also
    accepts trial specs), so one warm backend serves generic jobs and
    validation sweeps alike across every phase of the invocation.
    """

    def __init__(self, config: Optional[ExecutionConfig] = None, **kwargs):
        self.config = config if config is not None \
            else ExecutionConfig(**kwargs)
        self.pipeline: Optional[Pipeline] = as_pipeline(self.config.cache_dir)
        self.started = time.perf_counter()
        self._scheduler = None
        self._ledger: Optional[RunLedger] = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "RuntimeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._scheduler is not None:
            self._scheduler.shutdown()
            self._scheduler = None

    # -- pieces ---------------------------------------------------------
    def scheduler(self):
        """The invocation's (lazily created, reused) executor."""
        if self._scheduler is None:
            from ..validation.parallel import TrialExecutor

            self._scheduler = TrialExecutor(
                workers=self.config.workers, pipeline=self.pipeline,
                transport=self.config.transport,
                hosts=self.config.hosts)
        return self._scheduler

    def progress(self, label: str) -> Optional[SweepProgress]:
        """A fresh progress meter when ``--progress`` is on."""
        if not self.config.progress:
            return None
        return SweepProgress(label=label)

    def ledger(self) -> Optional[RunLedger]:
        if self.config.run_dir is None:
            return None
        if self._ledger is None:
            self._ledger = RunLedger(self.config.run_dir)
        return self._ledger

    def record(self, record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Append one manifest record to the run ledger (no-op without
        ``--run-dir``)."""
        ledger = self.ledger()
        if ledger is None:
            return None
        return ledger.append(record)

    def wall_s(self) -> float:
        return time.perf_counter() - self.started


def command_ledger_record(*, command: str, scenarios: Sequence[str],
                          seed: int, wall_s: float,
                          scheduler=None,
                          cache: Optional[Dict[str, int]] = None,
                          output: Optional[str] = None,
                          status: Optional[str] = None,
                          extra: Optional[Dict[str, Any]] = None
                          ) -> Dict[str, Any]:
    """The ledger manifest of one non-sweep bulk command (``check``,
    ``fuzz``, golden regeneration) — same shape as validation's
    :func:`~repro.obs.telemetry.sweep_ledger_record` so ledger readers
    need one parser: kind, scenarios, workers/transport accounting,
    cache accounting, wall clock, and the SHA-256 of the rendered
    output that pins byte-identity across backends."""
    record: Dict[str, Any] = {
        "kind": command,
        "scenarios": list(scenarios),
        "seed": seed,
        "workers": scheduler.effective_workers if scheduler is not None else 1,
        "transport": scheduler.transport_stats() if scheduler is not None
        else {},
        "cache": dict(cache) if cache else {"hits": 0, "misses": 0},
        "wall_s": round(wall_s, 6),
        "table_sha256": table_digest(output) if output else None,
        "status": status,
    }
    if extra:
        record.update(extra)
    return record
