"""Generic jobs: the unit of work every bulk workload schedules.

A :class:`Job` is a picklable description of one independent piece of
work — a validation trial, an invariant check, a golden-corpus
regeneration, one fuzzed spec — reduced to what the execution layer
actually needs to know:

``runner``
    A ``"module:qualname"`` reference to a module-level function
    ``fn(payload) -> result``.  Shipping the *reference* (not the
    function) keeps jobs picklable by value and lets freshly spawned
    worker processes (the loopback-socket backend) resolve the same
    function by import.  Resolution is memoized per process.
``payload``
    The runner's argument.  Three variants cover the transport
    spectrum: ``payload`` is what in-process execution uses (it may
    hold live handles like an open :class:`~repro.pipeline.Pipeline`);
    ``wire_payload``, when set, is the picklable stand-in shipped to
    remote workers; ``slim_payload``, when set, additionally replaces
    the wire copy while the envelope (store-mediated) data plane is
    active — the variant that strips bulk inputs down to shared-store
    references a worker can resolve locally.
``fingerprint``
    The content-addressed identity of the job's result, when it has
    one.  The scheduler uses it for artifact-cache lookups before
    submission and stores computed results under it; ``None`` means
    "always execute".
``kind`` / ``label`` / ``cost_hint``
    Telemetry stage name, span label, and a rough relative wall-clock
    cost (longest-first submission and chunking use it; it can never
    affect results).

:class:`JobResult` is the codec-framed unit a worker sends back per
job: exactly one of a raw value (rode the pipe), a
:class:`ResultEnvelope` naming the shared-store artifact holding the
encoded result, or a :class:`TransportFailure` that tells the parent
to re-execute the job in process.  The scheduler unwraps these; the
contract that makes every backend interchangeable is that unwrapping a
:class:`JobResult` always yields exactly what ``runner(payload)``
returns.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = [
    "Job",
    "JobResult",
    "JobTransportError",
    "ResultEnvelope",
    "TransportFailure",
    "echo",
    "register_job_kind",
    "registered_job_kinds",
    "resolve_runner",
    "runner_ref",
]


class JobTransportError(RuntimeError):
    """A worker-side *transport* problem (an input reference the worker
    cannot resolve, a store it cannot reach).  Runners raise this —
    instead of failing the job — when the work itself is fine but this
    process cannot supply its inputs; the scheduler then re-executes
    the job in the parent, where the inputs are materialized.  A
    transport hiccup must never surface as a wrong result."""


@dataclass(frozen=True)
class Job:
    """A picklable description of one independent piece of work."""

    kind: str
    runner: str
    payload: Any
    label: str = ""
    fingerprint: Optional[str] = None
    cost_hint: float = 1.0
    # Remote-execution payload variants (see module docstring).
    wire_payload: Any = None
    slim_payload: Any = None
    # Shared-store keys the slim payload references (e.g. a modulated
    # trial's ``replay_ref``).  Multi-node backends sync these to a
    # node's private store — deduplicated with HAVE frames — before
    # dispatching the chunk there; single-machine backends, whose
    # workers share the parent's store, ignore them.
    input_refs: tuple = ()

    def span_label(self) -> str:
        """How this job appears in the sweep timeline."""
        return self.label or self.kind

    def for_wire(self, envelope: bool) -> Any:
        """The payload variant to ship to a remote worker."""
        if envelope and self.slim_payload is not None:
            return self.slim_payload
        if self.wire_payload is not None:
            return self.wire_payload
        return self.payload


@dataclass(frozen=True)
class ResultEnvelope:
    """What a worker returns instead of a bulk result: the shared-store
    key holding the encoded artifact, its content digest (verified by
    the parent before use), and the worker-side cost counters."""

    key: str
    digest: str
    nbytes: int
    encode_ns: int


@dataclass(frozen=True)
class TransportFailure:
    """Worker-side transport problem (see :class:`JobTransportError`).
    The parent recomputes the job in-process and records the reason."""

    reason: str


@dataclass(frozen=True)
class JobResult:
    """One executed job's wire representation: exactly one of ``value``
    (small result, rode the pipe), ``envelope`` (store-mediated
    handoff) or ``failure`` (re-execute in the parent).

    ``value`` uses a sentinel-free encoding: ``has_value`` disambiguates
    a job that legitimately returned ``None`` from an envelope result.
    """

    has_value: bool = False
    value: Any = None
    envelope: Optional[ResultEnvelope] = None
    failure: Optional[TransportFailure] = None

    @classmethod
    def of(cls, value: Any) -> "JobResult":
        return cls(has_value=True, value=value)

    @classmethod
    def enveloped(cls, env: ResultEnvelope) -> "JobResult":
        return cls(envelope=env)

    @classmethod
    def failed(cls, reason: str) -> "JobResult":
        return cls(failure=TransportFailure(reason=reason))


# ======================================================================
# Runner resolution
# ======================================================================
_RUNNERS: Dict[str, Callable[[Any], Any]] = {}


def runner_ref(fn: Callable[[Any], Any]) -> str:
    """The ``"module:qualname"`` reference of a module-level function."""
    return f"{fn.__module__}:{fn.__qualname__}"


def resolve_runner(ref: str) -> Callable[[Any], Any]:
    """Import (and memoize) the runner behind a ``module:qualname``
    reference.  Raises :class:`JobTransportError` when this process
    cannot import it — the parent then runs the job itself."""
    fn = _RUNNERS.get(ref)
    if fn is not None:
        return fn
    try:
        module_name, _, qualname = ref.partition(":")
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError, ValueError) as exc:
        raise JobTransportError(f"cannot resolve runner {ref!r}: {exc}")
    if not callable(obj):
        raise JobTransportError(f"runner {ref!r} is not callable")
    _RUNNERS[ref] = obj
    return obj


# ======================================================================
# Job kinds
# ======================================================================
@dataclass(frozen=True)
class _JobKind:
    kind: str
    runner: str
    cost_hint: float = 1.0


_JOB_KINDS: Dict[str, _JobKind] = {}


def register_job_kind(kind: str, runner: str,
                      cost_hint: float = 1.0) -> None:
    """Register a named job kind (its runner reference and default cost
    hint).  Purely declarative — consumers may also build :class:`Job`
    objects directly — but the registry is what ``repro.runtime``
    surfaces for introspection, and registering keeps kind names
    unique across workloads."""
    existing = _JOB_KINDS.get(kind)
    entry = _JobKind(kind=kind, runner=runner, cost_hint=cost_hint)
    if existing is not None and existing != entry:
        raise ValueError(f"job kind {kind!r} already registered "
                         f"with runner {existing.runner!r}")
    _JOB_KINDS[kind] = entry


def registered_job_kinds() -> Dict[str, str]:
    """``{kind: runner_ref}`` for every registered job kind."""
    return {kind: entry.runner for kind, entry in sorted(_JOB_KINDS.items())}


def echo(payload: Any) -> Any:
    """The identity runner — a zero-work job kind for backend smoke
    tests and dispatch-overhead benchmarks."""
    return payload


register_job_kind("echo", runner_ref(echo), cost_hint=0.1)
