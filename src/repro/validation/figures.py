"""Regenerating the paper's figures and tables.

* Figure 1  — effect of delay compensation on FTP fetch vs. store;
* Figures 2–4 — per-checkpoint ranges of signal / latency / bandwidth /
  loss for the motion scenarios, from four distilled traces;
* Figure 5  — the same quantities as histograms (Chatterbox, no motion);
* Figures 6–8 — the real-vs-modulated benchmark tables.

Everything renders to plain text; the bench harness prints these so the
"same rows/series the paper reports" come out of a pytest run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..analysis.stats import Summary, histogram
from ..analysis.tables import render_histogram, render_series, render_table
from ..apps.ftp import FtpClient, FtpServer
from ..core.distill import DistillationResult
from ..core.modulator import install_modulation
from ..core.replay import ReplayTrace
from ..core.synthetic import slow_network_trace, wavelan_like_trace
from ..hosts.worlds import ModulationWorld, SERVER_ADDR
from ..scenarios.base import Scenario
from ..sim.rng import derive_seed
from .harness import (
    BenchmarkRunner,
    ScenarioValidation,
    collect_trace,
    compensation_vb,
    distill_scenario_trace,
)

MB = 1024 * 1024


# ======================================================================
# Figure 1 — delay compensation
# ======================================================================
@dataclass
class CompensationPoint:
    """One FTP transfer under a synthetic modulated network."""

    size_bytes: int
    direction: str          # "store" (outbound) or "fetch" (inbound)
    compensated: bool
    elapsed: float

    @property
    def throughput_bps(self) -> float:
        return self.size_bytes * 8.0 / self.elapsed


@dataclass
class Figure1Result:
    """All curves of Figure 1 plus the slow-network independence check."""

    points: List[CompensationPoint] = field(default_factory=list)

    def curve(self, direction: str,
              compensated: bool) -> List[Tuple[int, float]]:
        return sorted(
            (p.size_bytes, p.throughput_bps) for p in self.points
            if p.direction == direction and p.compensated == compensated)

    def fetch_store_gap(self, compensated: bool) -> float:
        """Mean relative throughput gap fetch vs. store across sizes."""
        store = dict(self.curve("store", compensated))
        fetch = dict(self.curve("fetch", compensated))
        gaps = [(store[s] - fetch[s]) / store[s]
                for s in store if s in fetch]
        return sum(gaps) / len(gaps) if gaps else 0.0

    def render(self) -> str:
        sizes = sorted({p.size_bytes for p in self.points})
        rows = []
        for size in sizes:
            row = [f"{size / MB:.1f} MB"]
            for direction, comp in (("store", True), ("fetch", False),
                                    ("fetch", True)):
                match = [p for p in self.points
                         if p.size_bytes == size and p.direction == direction
                         and p.compensated == comp]
                row.append(f"{match[0].throughput_bps / 1e6:.3f}"
                           if match else "-")
            rows.append(row)
        return render_table(
            ["Transfer", "Store Mb/s", "Fetch (no comp)", "Fetch (comp)"],
            rows,
            title="Figure 1: Effect of Delay Compensation",
            caption=("A perfect realization of the delay model would make "
                     "Fetch identical to Store; compensation subtracts the "
                     "modulating Ethernet's measured bottleneck cost from "
                     "inbound packets."),
        )


def _one_ftp(trace: ReplayTrace, direction: str, size_bytes: int,
             compensated: bool, comp_vb: float, seed: int) -> float:
    world = ModulationWorld(
        seed=derive_seed(seed, f"fig1:{direction}:{size_bytes}:{compensated}"))
    install_modulation(world.laptop, world.laptop_device, trace,
                       world.rngs.stream("modulation"),
                       compensation_vb=comp_vb if compensated else 0.0,
                       loop=True)
    FtpServer(world.server).start()
    client = FtpClient(world.laptop, SERVER_ADDR)
    sink: Dict[str, float] = {}

    def body() -> Generator:
        ftp_direction = "send" if direction == "store" else "recv"
        result = yield from client.transfer(ftp_direction, size_bytes)
        sink["elapsed"] = result.elapsed

    proc = world.laptop.spawn(body(), name="fig1-ftp")
    t = 0.0
    while proc.alive and t < 2400.0:
        t += 20.0
        world.run(until=t)
    if proc.error:
        raise proc.error
    return sink["elapsed"]


def figure1_compensation(seed: int = 0,
                         sizes: Sequence[int] = (MB // 2, MB, 2 * MB,
                                                 4 * MB, 8 * MB),
                         trace: Optional[ReplayTrace] = None
                         ) -> Figure1Result:
    """Reproduce Figure 1 with the synthetic WaveLAN-like trace."""
    trace = trace or wavelan_like_trace(duration=300.0)
    comp_vb = compensation_vb()
    result = Figure1Result()
    for size in sizes:
        for direction, compensated in (("store", True), ("store", False),
                                       ("fetch", False), ("fetch", True)):
            elapsed = _one_ftp(trace, direction, size, compensated,
                               comp_vb, seed)
            result.points.append(CompensationPoint(
                size_bytes=size, direction=direction,
                compensated=compensated, elapsed=elapsed))
    return result


def figure1_slow_network_check(seed: int = 0,
                               sizes: Sequence[int] = (MB // 2, MB, 2 * MB)
                               ) -> Figure1Result:
    """The paper's independence check: a much slower synthetic network.

    Compensation is measured from the testbed alone, so it should close
    the fetch/store gap here too, with the identical constant.
    """
    return figure1_compensation(seed=derive_seed(seed, "slow"), sizes=sizes,
                                trace=slow_network_trace(duration=600.0))


# ======================================================================
# Figures 2-5 — scenario characterization
# ======================================================================
@dataclass
class ScenarioCharacterization:
    """Distilled network quality of one scenario, across trials."""

    scenario: Scenario
    distillations: List[DistillationResult]

    # ------------------------------------------------------------------
    def checkpoint_ranges(self, quantity: str) -> Tuple[List[str],
                                                        List[float],
                                                        List[float]]:
        """(labels, lows, highs) across trials at each checkpoint."""
        labels = [cp.label for cp in self.scenario.checkpoints]
        per_label: Dict[str, List[float]] = {label: [] for label in labels}
        for dist in self.distillations:
            for t, value in self._series(dist, quantity):
                u = min(1.0, t / self.scenario.duration)
                label = self.scenario.checkpoint_for_fraction(u)
                if label:
                    per_label[label].append(value)
        lows, highs = [], []
        for label in labels:
            values = per_label[label] or [0.0]
            lows.append(min(values))
            highs.append(max(values))
        return labels, lows, highs

    def all_values(self, quantity: str) -> List[float]:
        values: List[float] = []
        for dist in self.distillations:
            values.extend(v for _, v in self._series(dist, quantity))
        return values

    def _series(self, dist: DistillationResult,
                quantity: str) -> List[Tuple[float, float]]:
        if quantity == "signal":
            base = min((r.timestamp for r in dist.status_records),
                       default=0.0)
            return [(r.timestamp - base, r.signal_level)
                    for r in dist.status_records]
        if quantity == "latency_ms":
            return [(e.time, e.F * 1e3) for e in dist.estimates]
        if quantity == "bandwidth_kbps":
            return [(e.time, (8.0 / e.Vb) / 1e3)
                    for e in dist.estimates if e.Vb > 0]
        if quantity == "loss_pct":
            out = []
            t = 0.0
            for tup in dist.replay:
                out.append((t, tup.L * 100.0))
                t += tup.d
            return out
        raise ValueError(f"unknown quantity {quantity!r}")

    # ------------------------------------------------------------------
    def render(self) -> str:
        parts = [f"Scenario characterization: {self.scenario.name} "
                 f"({len(self.distillations)} trials)"]
        quantities = (("signal", "WaveLAN units", False),
                      ("latency_ms", "ms", True),
                      ("bandwidth_kbps", "Kb/s", False),
                      ("loss_pct", "%", False))
        if self.scenario.has_motion:
            for quantity, unit, log in quantities:
                labels, lows, highs = self.checkpoint_ranges(quantity)
                parts.append(render_series(quantity, labels, lows, highs,
                                           unit=unit, log_scale=log))
        else:
            for quantity, unit, _ in quantities:
                values = self.all_values(quantity)
                parts.append(render_histogram(quantity,
                                              histogram(values, bins=8),
                                              unit=unit))
        return "\n\n".join(parts)


def characterize_scenario(scenario: Scenario, seed: int = 0,
                          trials: int = 4,
                          workers: int = 1) -> ScenarioCharacterization:
    """Collect and distill ``trials`` traversals (Figures 2-5 data).

    ``workers`` fans the traversals out over a process pool
    (:mod:`repro.validation.parallel`); results are bit-identical for
    any worker count because each traversal draws from named seeded
    RNG streams keyed only by ``(scenario, seed, trial)``.
    """
    if workers != 1:
        from .parallel import characterize_scenario_parallel

        return characterize_scenario_parallel(scenario, seed=seed,
                                              trials=trials, workers=workers)
    distillations = []
    for t in range(trials):
        records = collect_trace(scenario, seed, t)
        distillations.append(
            distill_scenario_trace(records, name=f"{scenario.name}-{t}"))
    return ScenarioCharacterization(scenario=scenario,
                                    distillations=distillations)


# ======================================================================
# Figures 6-8 — benchmark tables
# ======================================================================
def render_benchmark_table(validations: List[ScenarioValidation],
                           baseline: Dict[str, Summary],
                           title: str, caption: str = "") -> str:
    """The paper's real-vs-modulated table for one benchmark."""
    if not validations:
        raise ValueError("no validations to render")
    metrics = list(validations[0].comparisons)
    single = len(metrics) == 1
    rows: List[List[str]] = []
    for validation in validations:
        for i, metric in enumerate(metrics):
            comp = validation.comparisons[metric]
            name = validation.scenario.capitalize() if i == 0 else ""
            label = "" if single else metric
            rows.append([name, label, comp.real.format(),
                         comp.modulated.format(),
                         f"{comp.sigma_distance:.2f}",
                         "yes" if comp.accurate else "NO"])
    for i, metric in enumerate(metrics):
        rows.append(["Ethernet" if i == 0 else "",
                     "" if single else metric,
                     baseline[metric].format(), "-", "-", "-"])
    headers = ["Scenario", "Metric", "Real (s)", "Modulated (s)",
               "dist/sigma", "within"]
    if single:
        headers = [headers[0]] + headers[2:]
        rows = [[r[0]] + r[2:] for r in rows]
    return render_table(headers, rows, title=title, caption=caption)


def render_andrew_table(validations: List[ScenarioValidation],
                        baseline: Dict[str, Summary]) -> str:
    """Figure 8's wide layout: phases as columns."""
    phases = ("MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "Total")
    rows: List[List[str]] = []
    for validation in validations:
        for kind in ("Real", "Mod."):
            row = [validation.scenario.capitalize() if kind == "Real" else "",
                   kind]
            for phase in phases:
                comp = validation.comparisons[phase]
                summary = comp.real if kind == "Real" else comp.modulated
                row.append(summary.format())
            rows.append(row)
    row = ["Ethernet", "Real"]
    for phase in phases:
        row.append(baseline[phase].format())
    rows.append(row)
    return render_table(["Scenario", "", *phases], rows,
                        title="Figure 8: Elapsed Times for Andrew "
                              "Benchmark Phases",
                        caption="Per-phase mean elapsed seconds "
                                "(standard deviations in parentheses).")
