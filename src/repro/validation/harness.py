"""Live-vs-modulated validation harness (§4, §5).

For each (scenario, benchmark) pair the paper's protocol is:

1. run four **live trials** of the benchmark over the real (here:
   simulated) WaveLAN network while traversing the scenario;
2. **collect four traces** of the same traversal with the modified ping
   workload, interleaved with the trials;
3. **distill** each trace into a replay trace;
4. run one **modulated trial** of the benchmark over each distilled
   trace on the isolated Ethernet;
5. compare real vs. modulated means against the sum of the standard
   deviations.

The delay-compensation constant is measured once per testbed (§3.3)
and shared by every modulated run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..analysis.stats import Summary, sigma_distance, within_sigma_sum
from ..apps.andrew import AndrewBenchmark
from ..apps.ftp import FtpClient, FtpServer
from ..apps.nfs import NfsClient, NfsServer
from ..apps.ping import ModifiedPing
from ..apps.synrgen import SynRGenUser
from ..apps.web import WebBrowser, WebServer
from ..core.collection import trace_collection_run
from ..core.compensation import measure_modulation_network
from ..core.distill import DistillationResult, Distiller
from ..core.modulator import install_modulation
from ..core.replay import ReplayTrace
from ..hosts.worlds import LiveWorld, ModulationWorld, SERVER_ADDR
from ..obs import ObsConfig, attach_observability
from ..scenarios.base import Scenario
from ..sim.rng import derive_seed
from ..workloads.webtraces import all_user_traces, object_catalog

BENCH_START = 1.0          # benchmarks start shortly into the traversal
MAX_SIM_TIME = 2400.0      # hard cap on any single trial
RUN_CHUNK = 20.0           # polling granularity while waiting for a trial
TRACE_TRIAL_OFFSET = 100   # trace traversals use distinct trial indices


# ======================================================================
# Benchmark runners
# ======================================================================
class BenchmarkRunner:
    """One of the paper's three benchmarks, harness-pluggable."""

    name: str = "benchmark"
    metrics: tuple = ()

    def cache_token(self) -> Dict[str, Any]:
        """Deterministic identity for pipeline fingerprints.

        Subclasses with constructor parameters that change behaviour
        must extend this with those parameters.
        """
        return {"runner": type(self).__qualname__, "name": self.name}

    def variants(self) -> list:
        """Independent sub-experiments, each run in its own world.

        FTP send and receive are separate live experiments in the paper
        (each gets its own traversal); benchmarks whose metrics come
        from a single run return just themselves.
        """
        return [self]

    def install_servers(self, world, seed: int) -> None:
        raise NotImplementedError

    def client_body(self, world, seed: int,
                    sink: Dict[str, float]) -> Generator[Any, Any, None]:
        """Generator run on the laptop; writes metrics into ``sink``."""
        raise NotImplementedError


class WebRunner(BenchmarkRunner):
    """Figure 6: replaying five users' web reference traces."""

    name = "web"
    metrics = ("elapsed",)

    def __init__(self, workload_seed: int = 42, users: int = 5,
                 requests_per_user: int = 55):
        self.workload_seed = workload_seed
        self.users = users
        self.requests_per_user = requests_per_user
        self.traces = all_user_traces(workload_seed, users=users,
                                      requests=requests_per_user)

    def cache_token(self) -> Dict[str, Any]:
        token = super().cache_token()
        token.update(workload_seed=self.workload_seed, users=self.users,
                     requests_per_user=self.requests_per_user)
        return token

    def install_servers(self, world, seed: int) -> None:
        WebServer(world.server, object_catalog(self.traces)).start()

    def client_body(self, world, seed: int, sink: Dict[str, float]):
        browser = WebBrowser(world.laptop, SERVER_ADDR)
        result = yield from browser.replay(self.traces)
        sink["elapsed"] = result.elapsed


class FtpRunner(BenchmarkRunner):
    """Figure 7: a 10 MB disk-to-disk transfer in each direction.

    Send and receive are *independent experiments* — each variant runs
    in its own world/traversal, as in the paper, which is what lets
    Figure 7 expose live send/recv asymmetry.
    """

    name = "ftp"

    def __init__(self, nbytes: int = 10 * 1024 * 1024,
                 direction: str = "both"):
        self.nbytes = nbytes
        self.direction = direction
        self.metrics = (("send", "recv") if direction == "both"
                        else (direction,))

    def cache_token(self) -> Dict[str, Any]:
        token = super().cache_token()
        token.update(nbytes=self.nbytes, direction=self.direction)
        return token

    def variants(self) -> list:
        if self.direction == "both":
            return [FtpRunner(self.nbytes, "send"),
                    FtpRunner(self.nbytes, "recv")]
        return [self]

    def install_servers(self, world, seed: int) -> None:
        FtpServer(world.server).start()

    def client_body(self, world, seed: int, sink: Dict[str, float]):
        client = FtpClient(world.laptop, SERVER_ADDR)
        result = yield from client.transfer(self.direction, self.nbytes)
        sink[self.direction] = result.elapsed


class AndrewRunner(BenchmarkRunner):
    """Figure 8: the Andrew benchmark over NFS, cold caches."""

    name = "andrew"
    metrics = ("MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "Total")

    def install_servers(self, world, seed: int) -> None:
        server = ensure_nfs_server(world)
        self.tree = AndrewBenchmark.populate_server(server.fs)

    def client_body(self, world, seed: int, sink: Dict[str, float]):
        client = NfsClient(world.laptop, SERVER_ADDR)
        bench = AndrewBenchmark(client, tree=self.tree)
        result = yield from bench.run()
        sink.update(result.phase_times)


def ensure_nfs_server(world) -> NfsServer:
    """One NFS server per world, shared by Andrew and SynRGen traffic."""
    server = getattr(world, "_nfs_server", None)
    if server is None:
        server = NfsServer(world.server)
        server.start()
        world._nfs_server = server
    return server


# ======================================================================
# Cross traffic (Chatterbox)
# ======================================================================
def setup_cross_traffic(world: LiveWorld, seed: int, duration: float) -> None:
    """Start one SynRGen user per interfering laptop.

    Each trial draws its own user intensities: real SynRGen users were
    "bursty" enough that the paper's Chatterbox results carry very
    large standard deviations (§5.5), so the interference level must
    vary visibly between trials, not just within them.
    """
    import random as _random

    from ..apps.synrgen import SynRGenConfig

    if not world.cross_hosts:
        return
    server = ensure_nfs_server(world)
    rng = _random.Random(derive_seed(seed, "cross-intensity"))
    for i, host in enumerate(world.cross_hosts):
        config = SynRGenConfig(
            think_mean=SynRGenConfig.think_mean * rng.uniform(0.25, 3.0),
            compile_pause=SynRGenConfig.compile_pause * rng.uniform(0.6, 1.6),
            burst_files=rng.randint(3, 9),
            mean_file_bytes=int(SynRGenConfig.mean_file_bytes
                                * rng.uniform(0.6, 2.2)),
        )
        SynRGenUser.populate_server(server.fs, user_id=i, seed=seed,
                                    config=config)
        client = NfsClient(host, SERVER_ADDR)
        user = SynRGenUser(host, client, user_id=i,
                           seed=derive_seed(seed, f"user{i}"),
                           config=config)
        host.spawn(user.run(duration), name=f"synrgen{i}")


# ======================================================================
# Trial execution
# ======================================================================
def _run_until_done(world, proc, cap: float = MAX_SIM_TIME) -> None:
    """Advance the world until ``proc`` completes (or the cap hits)."""
    t = world.sim.now
    while proc.alive and t < cap:
        t = min(cap, t + RUN_CHUNK)
        world.run(until=t)
    if proc.error is not None:
        raise proc.error
    if proc.alive:
        raise RuntimeError(
            f"trial did not complete within {cap:.0f} simulated seconds")


def _profiled_run(wobs, world, proc, cap: float = MAX_SIM_TIME):
    """Run the trial body — under :mod:`cProfile` when the trial's
    :class:`~repro.obs.ObsConfig` asks for it.  Returns the profile's
    top rows (see :func:`repro.obs.telemetry.profile_rows`) or ``None``.

    Profiling observes wall clocks only; the simulated event sequence
    is untouched, so profiled metric values match unprofiled ones.
    """
    if wobs is None or not wobs.config.profile:
        _run_until_done(world, proc, cap=cap)
        return None
    import cProfile

    from ..obs.telemetry import profile_rows

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _run_until_done(world, proc, cap=cap)
    finally:
        profiler.disable()
    return profile_rows(profiler, top=wobs.config.profile_top)


def _delayed(world, gen) -> Generator[Any, Any, None]:
    from ..sim import Timeout

    yield Timeout(BENCH_START)
    yield from gen


def run_live_trial(scenario: Scenario, runner: BenchmarkRunner, seed: int,
                   trial: int,
                   obs: Optional[ObsConfig] = None,
                   world_out: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """One live benchmark trial over the scenario's WaveLAN world.

    With ``obs`` set, the returned sink carries the trial's metrics
    record under ``"__obs__"`` alongside the benchmark metrics.
    Attaching observability draws no RNG and schedules nothing, so the
    metric values are identical with or without it.

    ``world_out``, when given, receives the finished ``world`` and its
    ``obs`` handle — the post-trial state ``repro.check``'s invariant
    monitors inspect.  (Only for in-process callers: worlds are not
    picklable, so the parallel harness never uses it.)
    """
    world = scenario.make_live_world(seed, trial)
    wobs = attach_observability(world, obs)
    if world_out is not None:
        world_out["world"] = world
        world_out["obs"] = wobs
    setup_cross_traffic(world, derive_seed(seed, f"cross:{trial}"),
                        duration=MAX_SIM_TIME)
    runner.install_servers(world, seed)
    sink: Dict[str, Any] = {}
    proc = world.laptop.spawn(
        _delayed(world, runner.client_body(world, seed, sink)),
        name=f"{runner.name}-live")
    prof = _profiled_run(wobs, world, proc)
    if wobs is not None:
        extra = {"profile": prof} if prof is not None else {}
        sink["__obs__"] = wobs.record(kind="live", scenario=scenario.name,
                                      benchmark=runner.name, seed=seed,
                                      trial=trial, **extra)
    return sink


def collect_trace(scenario: Scenario, seed: int, trial: int,
                  duration: Optional[float] = None,
                  obs: Optional[ObsConfig] = None,
                  obs_out: Optional[Dict[str, Any]] = None,
                  world_out: Optional[Dict[str, Any]] = None) -> List:
    """One trace-collection traversal; returns the trace records.

    With ``obs`` set and ``obs_out`` given, the traversal's metrics
    record is placed in ``obs_out["record"]`` (the records list itself
    stays the collection daemon's, unchanged).  ``world_out`` exposes
    the finished world/obs pair for in-process invariant checking.
    """
    world = scenario.make_live_world(seed, TRACE_TRIAL_OFFSET + trial)
    wobs = attach_observability(world, obs)
    if world_out is not None:
        world_out["world"] = world
        world_out["obs"] = wobs
    setup_cross_traffic(world,
                        derive_seed(seed, f"cross-trace:{trial}"),
                        duration=MAX_SIM_TIME)
    daemon = trace_collection_run(world.laptop, world.radio)
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    span = duration if duration is not None else scenario.duration
    proc = world.laptop.spawn(ping.run(span), name="ping")
    prof = _profiled_run(wobs, world, proc, cap=span + 30.0)
    world.run(until=world.sim.now + 2.0)  # final daemon drain
    if wobs is not None and obs_out is not None:
        extra = {"profile": prof} if prof is not None else {}
        obs_out["record"] = wobs.record(kind="collect",
                                        scenario=scenario.name,
                                        seed=seed, trial=trial, **extra)
    return daemon.records


def distill_scenario_trace(records: List, name: str = "",
                           distiller: Optional[Distiller] = None
                           ) -> DistillationResult:
    """Distill collected records (thin wrapper with harness defaults)."""
    return (distiller or Distiller()).distill(records, name=name)


def collect_trace_two_ended(scenario: Scenario, seed: int, trial: int,
                            duration: Optional[float] = None
                            ) -> Tuple[List, List]:
    """One traversal traced at *both* endpoints (§6 extension).

    Requires the synchronized, low-drift clocks the paper lacked, so
    the laptop's simulated clock drift is forced to zero.  Returns
    (mobile_records, remote_records) for
    :class:`repro.core.oneway.OneWayDistiller`.
    """
    world = scenario.make_live_world(seed, TRACE_TRIAL_OFFSET + trial,
                                     laptop_clock_drift=0.0)
    setup_cross_traffic(world,
                        derive_seed(seed, f"cross-trace:{trial}"),
                        duration=MAX_SIM_TIME)
    mobile_daemon = trace_collection_run(world.laptop, world.radio)
    remote_daemon = trace_collection_run(world.server,
                                         world.server.devices[0])
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    span = duration if duration is not None else scenario.duration
    proc = world.laptop.spawn(ping.run(span), name="ping")
    _run_until_done(world, proc, cap=span + 30.0)
    world.run(until=world.sim.now + 2.0)
    return mobile_daemon.records, remote_daemon.records


def run_modulated_trial(replay: ReplayTrace, runner: BenchmarkRunner,
                        seed: int, trial: int,
                        compensation_vb: float,
                        obs: Optional[ObsConfig] = None,
                        world_out: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
    """One modulated benchmark trial on the isolated Ethernet.

    With ``obs`` set, the modulation layer additionally carries a
    fidelity audit, and the sink gains an ``"__obs__"`` metrics record
    including the per-tuple intended-vs-applied delay accounting.
    ``world_out`` additionally exposes the finished world, its ``obs``
    handle and the installed modulation ``layer`` for in-process
    invariant checking.
    """
    world = ModulationWorld(seed=derive_seed(seed, f"mod:{trial}"))
    wobs = attach_observability(world, obs)
    layer = install_modulation(world.laptop, world.laptop_device, replay,
                               world.rngs.stream("modulation"),
                               compensation_vb=compensation_vb, loop=True)
    if wobs is not None:
        wobs.attach_modulation(layer)
    if world_out is not None:
        world_out["world"] = world
        world_out["obs"] = wobs
        world_out["layer"] = layer
    runner.install_servers(world, seed)
    sink: Dict[str, Any] = {}
    proc = world.laptop.spawn(
        _delayed(world, runner.client_body(world, seed, sink)),
        name=f"{runner.name}-mod")
    prof = _profiled_run(wobs, world, proc)
    if wobs is not None:
        extra = {"profile": prof} if prof is not None else {}
        sink["__obs__"] = wobs.record(kind="modulated", replay=replay.name,
                                      benchmark=runner.name, seed=seed,
                                      trial=trial, **extra)
    return sink


def run_ethernet_trial(runner: BenchmarkRunner, seed: int,
                       trial: int,
                       obs: Optional[ObsConfig] = None) -> Dict[str, Any]:
    """The unmodulated Ethernet baseline (final row of Figures 6-8)."""
    world = ModulationWorld(seed=derive_seed(seed, f"ether:{trial}"))
    wobs = attach_observability(world, obs)
    runner.install_servers(world, seed)
    sink: Dict[str, Any] = {}
    proc = world.laptop.spawn(
        _delayed(world, runner.client_body(world, seed, sink)),
        name=f"{runner.name}-ether")
    prof = _profiled_run(wobs, world, proc)
    if wobs is not None:
        extra = {"profile": prof} if prof is not None else {}
        sink["__obs__"] = wobs.record(kind="ethernet",
                                      benchmark=runner.name, seed=seed,
                                      trial=trial, **extra)
    return sink


# ======================================================================
# Full validation of one (scenario, benchmark) pair
# ======================================================================
@dataclass
class MetricComparison:
    """Real vs. modulated for one reported metric."""

    metric: str
    real: Summary
    modulated: Summary

    @property
    def sigma_distance(self) -> float:
        return sigma_distance(self.real, self.modulated)

    @property
    def accurate(self) -> bool:
        return within_sigma_sum(self.real, self.modulated)


@dataclass
class ScenarioValidation:
    """All metrics of one benchmark on one scenario."""

    scenario: str
    benchmark: str
    comparisons: Dict[str, MetricComparison] = field(default_factory=dict)
    distillations: List[DistillationResult] = field(default_factory=list)

    def comparison(self, metric: str) -> MetricComparison:
        return self.comparisons[metric]


_COMPENSATION_CACHE: Dict[int, float] = {}


def compensation_vb(seed: int = 1729) -> float:
    """The testbed's measured bottleneck cost (cached: measured once)."""
    if seed not in _COMPENSATION_CACHE:
        _COMPENSATION_CACHE[seed] = measure_modulation_network(seed=seed).vb
    return _COMPENSATION_CACHE[seed]


def validate_scenario(scenario: Scenario, runner: BenchmarkRunner,
                      seed: int = 0, trials: int = 4,
                      distiller: Optional[Distiller] = None,
                      compensation: Optional[float] = None,
                      cache=None) -> ScenarioValidation:
    """The paper's full protocol for one scenario/benchmark pair.

    A thin serial front to :func:`repro.validation.parallel.run_validation`
    (``workers=1``), so the serial, parallel and cached paths are one
    code path; ``cache`` enables the content-addressed artifact store.
    """
    from .parallel import run_validation

    sweep = run_validation(scenario, runner, seed=seed, trials=trials,
                           distiller=distiller, compensation=compensation,
                           workers=1, cache=cache)
    return sweep.validations[0]


def ethernet_baseline(runner: BenchmarkRunner, seed: int = 0,
                      trials: int = 4) -> Dict[str, Summary]:
    """Summaries of the benchmark over the raw modulation Ethernet."""
    out: Dict[str, Summary] = {}
    for variant in runner.variants():
        runs = [run_ethernet_trial(variant, seed, t) for t in range(trials)]
        for metric in variant.metrics:
            out[metric] = Summary.of([r[metric] for r in runs])
    return out
