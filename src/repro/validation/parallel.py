"""Parallel trial fan-out for the validation harness.

Every figure in the paper's evaluation is built from batches of
*independent, seeded* trials: four live runs, four trace-collection
traversals, four modulated runs per scenario/benchmark pair.  Each
trial builds its own world from named seeded RNG streams
(:mod:`repro.sim.rng`), so trials share no state and their results
depend only on ``(scenario, runner, seed, trial)`` — which makes them
embarrassingly parallel *and* guarantees that a parallel run is
bit-identical to a serial one.

This module fans those trials out over a ``ProcessPoolExecutor``:

* :class:`TrialSpec` — a picklable description of one trial;
* :func:`execute_trial` — the worker entry point (module-level, so it
  pickles by reference);
* :class:`TrialExecutor` — an order-preserving map over specs with a
  configurable worker count, a warm worker pool, and an automatic —
  but *accounted* — serial fallback;
* :func:`run_validation` — the full multi-scenario sweep (the paper's
  Figures 6–8 protocol), collection and benchmark phases each fanned
  out across *all* scenarios at once;
* :func:`validate_scenario_parallel`, :func:`ethernet_baseline_parallel`,
  :func:`characterize_scenario_parallel` — parallel twins of the serial
  entry points in :mod:`repro.validation.harness` and
  :mod:`repro.validation.figures`.

The data plane between workers and the parent has two transports:

``"envelope"`` (the default on a pool)
    Bulk trial results never cross the pipe as Python pickles.  A
    worker encodes its result with the binary artifact codec
    (:mod:`repro.pipeline.codec`), writes it to a shared
    content-addressed :class:`~repro.pipeline.ArtifactStore` — the
    sweep's ``--cache-dir`` store when one is configured, else a
    tempdir-backed store owned by the executor — and returns only a
    tiny :class:`ResultEnvelope` ``(key, digest, nbytes, encode_ns)``.
    The parent rehydrates lazily from the store, verifying the
    digest.  Modulated trials receive their replay by store reference
    (``replay_ref``) instead of a materialized copy, and each worker
    memoizes decoded replays, so a distilled trace is shipped to each
    worker process at most once per sweep.
``"pickle"``
    The pre-envelope behaviour: results come back through the pool's
    result pipe.  Still available (``transport="pickle"``) for
    comparison benchmarks and as the measurement baseline.

Cheap trials (live, modulated, Ethernet — one benchmark transfer
each) are submitted in *chunks* so a 4-scenario sweep costs dozens,
not hundreds, of pool round-trips; expensive collection+distill
trials travel alone.  Workers are warmed once per process by a pool
initializer (scenario registry resolved, store handle opened).

Per-executor transport counters (``envelope_count``,
``ipc_bytes_sent``/``ipc_bytes_recv``, ``artifact_bytes``,
``encode_ns``, ``rehydrate_ns``, ``serial_fallbacks``) accumulate in a
:class:`~repro.obs.registry.MetricsRegistry` on the executor and are
surfaced through :attr:`ValidationSweep.transport`.  Every fallback to
in-process execution records *why* (:attr:`TrialExecutor.fallback_reason`)
instead of silently degrading.

Determinism contract: for any ``workers`` value and either transport
(including every fallback path), results are byte-identical to
``workers=1`` because every spec is executed by the same pure function
with the same arguments, the codec round-trip is exact, and results
are reassembled in submission order.  The only ordering freedom the
pool has is *wall-clock* completion order, which is never observed.
"""

from __future__ import annotations

import gc
import math
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.stats import Summary
from ..core.distill import DistillationResult, Distiller
from ..core.replay import ReplayTrace
from ..obs import ObsConfig
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import (
    SweepProgress,
    SweepTelemetry,
    capture_begin,
    capture_end,
    pack_spans,
    record_point,
    span_begin,
    span_end,
    unpack_spans,
)
from ..pipeline import (
    ArtifactStore,
    CollectStage,
    CompensationStage,
    DistillStage,
    EthernetTrialStage,
    LiveTrialStage,
    ModulatedTrialStage,
    Pipeline,
    as_pipeline,
    codec,
    digest,
)
from ..scenarios.base import Scenario
from .harness import (
    BenchmarkRunner,
    MetricComparison,
    ScenarioValidation,
    collect_trace,
    compensation_vb,
    distill_scenario_trace,
    run_ethernet_trial,
    run_live_trial,
    run_modulated_trial,
)

__all__ = [
    "TrialSpec",
    "TrialExecutor",
    "ResultEnvelope",
    "ValidationSweep",
    "execute_trial",
    "run_validation",
    "spec_fingerprint",
    "validate_scenario_parallel",
    "ethernet_baseline_parallel",
    "characterize_scenario_parallel",
    "default_workers",
]

# Specs whose cost hint is below this travel together in one chunked
# pool submission; everything above it (collection+distill traversals)
# gets a worker to itself.  Affects scheduling only, never results.
_CHUNK_THRESHOLD = 100.0


def default_workers() -> int:
    """Worker count used when the caller does not pin one."""
    return os.cpu_count() or 1


# ======================================================================
# Trial specs and the worker entry point
# ======================================================================
@dataclass(frozen=True)
class TrialSpec:
    """A picklable description of one independent trial.

    ``kind`` selects the work:

    ``"distill"``
        Collect one trace-collection traversal of ``scenario`` and
        distill it; returns a :class:`DistillationResult`.  (Collection
        and distillation stay in the worker so the bulky raw records
        never cross the process boundary.)
    ``"live"``
        One live benchmark trial; returns the metric dict.
    ``"modulated"``
        One modulated benchmark trial over ``replay``; returns the
        metric dict.
    ``"ethernet"``
        One unmodulated Ethernet baseline trial; returns the metric
        dict.

    ``obs`` (an :class:`~repro.obs.ObsConfig`, itself a frozen
    primitive-only dataclass, so the spec stays picklable) requests a
    per-trial metrics record.  Benchmark trials return it inside the
    sink under ``"__obs__"``; distill trials, whose natural result is a
    :class:`DistillationResult`, return a
    ``{"__distill__": ..., "__obs__": ...}`` wrapper instead.

    ``replay_ref`` names the distill artifact holding this modulated
    trial's replay in the executor's shared store.  On the envelope
    transport the materialized ``replay`` is stripped from the wire
    copy and workers resolve the reference (memoized per process);
    every other path uses ``replay`` directly.  The two are always
    byte-equivalent — the codec round-trip is exact — so the transport
    cannot change results.
    """

    kind: str
    seed: int
    trial: int
    scenario: Optional[Scenario] = None
    runner: Optional[BenchmarkRunner] = None
    replay: Optional[ReplayTrace] = None
    compensation: float = 0.0
    distiller: Optional[Distiller] = None
    name: str = ""
    obs: Optional[ObsConfig] = None
    # Pipeline-stage fingerprint of this trial's result.  Set by the
    # sweep when it runs with an artifact cache; ``None`` means the
    # trial is uncacheable and always executes.
    fingerprint: Optional[str] = None
    # Shared-store key of the upstream distill artifact (see above).
    replay_ref: Optional[str] = None
    # Sweep-scoped trace context: set on the wire copy when the sweep
    # runs with telemetry, so worker-side stage spans carry the sweep
    # they belong to.  Never part of any fingerprint (fingerprints are
    # computed from the pipeline stages, not this dataclass).
    sweep_id: Optional[str] = None

    def span_label(self) -> str:
        """How this trial appears in the sweep timeline."""
        if self.name:
            return self.name
        scenario = getattr(self.scenario, "name", None)
        parts = [p for p in (scenario, str(self.trial)) if p is not None]
        return ":".join(parts) if parts else str(self.trial)

    def cost_hint(self) -> float:
        """Rough relative wall-clock cost, for longest-first submission
        and chunking.

        Collection+distill trials simulate the scenario's full
        traversal with its cross traffic — seconds of wall clock.
        Live, modulated and Ethernet trials run one benchmark transfer
        (a far smaller event count; live worlds carry the scenario's
        cross traffic, modulated/Ethernet worlds are the small isolated
        pair).  The exact values only affect load balancing, never
        results.
        """
        if self.kind == "distill":
            scenario = self.scenario
            duration = getattr(scenario, "duration", 240.0)
            cross = getattr(scenario, "cross_laptops", 0)
            return duration * (1.0 + 2.0 * cross)
        if self.kind == "live":
            cross = getattr(self.scenario, "cross_laptops", 0)
            return 15.0 + 5.0 * cross
        if self.kind == "modulated":
            return 10.0
        return 5.0


@dataclass(frozen=True)
class ResultEnvelope:
    """What a worker returns instead of a bulk result: the shared-store
    key holding the encoded artifact, its content digest (verified by
    the parent before use), and the worker-side cost counters."""

    key: str
    digest: str
    nbytes: int
    encode_ns: int


@dataclass(frozen=True)
class _TransportFailure:
    """Worker-side transport problem (unresolvable ``replay_ref``).
    The parent recomputes the trial in-process and records the reason —
    a transport hiccup must never surface as a wrong result."""

    reason: str


class _ReplayResolveError(RuntimeError):
    """A ``replay_ref`` that the worker's shared store cannot supply."""


# -- worker-process state (set by the pool initializer) ----------------
_WORKER_STORE: Optional[ArtifactStore] = None
_WORKER_REPLAY_CACHE: Dict[str, ReplayTrace] = {}


# A worker runs gc.collect() between chunks instead of letting the
# cyclic collector interrupt trials; past this many chunk executions
# without a sweep it collects unconditionally.
_GC_CHUNKS_PER_SWEEP = 4
_worker_chunks_since_gc = 0


def _pool_init(store_root: Optional[str]) -> None:
    """Warm one worker process: open the shared artifact store and
    resolve the scenario registry once, so individual trials pay
    neither.

    Also moves garbage collection to chunk boundaries: the parent's
    heap (modules, scenario registry, codec tables) is frozen out of
    the collector's reach — it is effectively immortal in a forked
    worker, and scanning it on every generation-2 pass is the single
    largest fixed tax on trial execution — and the automatic collector
    is disabled.  Trials allocate in bursts; :func:`_execute_chunk`
    sweeps cycles explicitly between chunks, where a pause costs
    nothing.
    """
    global _WORKER_STORE, _worker_chunks_since_gc
    _WORKER_REPLAY_CACHE.clear()
    _worker_chunks_since_gc = 0
    _WORKER_STORE = ArtifactStore(store_root) if store_root else None
    from ..scenarios import registry

    registry.registered_scenarios()
    gc.freeze()
    gc.disable()


def _resolve_replay(ref: Optional[str]) -> ReplayTrace:
    """The replay trace behind a ``replay_ref``, memoized per worker."""
    if ref is None:
        raise _ReplayResolveError(
            "modulated spec carries neither replay nor replay_ref")
    replay = _WORKER_REPLAY_CACHE.get(ref)
    if replay is not None:
        return replay
    if _WORKER_STORE is None:
        raise _ReplayResolveError("worker has no shared store")
    tok = span_begin()
    found, blob = _WORKER_STORE.raw_get(ref)
    if not found:
        raise _ReplayResolveError(
            f"distill artifact {ref[:12]}... missing from shared store")
    try:
        value = codec.decode_gz(blob)
    except codec.CodecError as exc:
        raise _ReplayResolveError(f"distill artifact {ref[:12]}...: {exc}")
    if isinstance(value, dict) and "__distill__" in value:
        value = value["__distill__"]
    replay = value.replay if isinstance(value, DistillationResult) else value
    _WORKER_REPLAY_CACHE[ref] = replay
    span_end(tok, "replay_resolve", ref[:12], nbytes=len(blob))
    return replay


def execute_trial(spec: TrialSpec):
    """Run one trial described by ``spec`` (the pool's worker function).

    Pure: the result depends only on the spec, so serial and parallel
    execution agree bit-for-bit.
    """
    if spec.kind == "distill":
        if spec.obs is not None:
            obs_out: Dict[str, Dict] = {}
            records = collect_trace(spec.scenario, spec.seed, spec.trial,
                                    obs=spec.obs, obs_out=obs_out)
            result = distill_scenario_trace(records, name=spec.name,
                                            distiller=spec.distiller)
            return {"__distill__": result,
                    "__obs__": obs_out.get("record")}
        records = collect_trace(spec.scenario, spec.seed, spec.trial)
        return distill_scenario_trace(records, name=spec.name,
                                      distiller=spec.distiller)
    if spec.kind == "live":
        return run_live_trial(spec.scenario, spec.runner, spec.seed,
                              spec.trial, obs=spec.obs)
    if spec.kind == "modulated":
        replay = spec.replay
        if replay is None:
            replay = _resolve_replay(spec.replay_ref)
        return run_modulated_trial(replay, spec.runner, spec.seed,
                                   spec.trial, spec.compensation,
                                   obs=spec.obs)
    if spec.kind == "ethernet":
        return run_ethernet_trial(spec.runner, spec.seed, spec.trial,
                                  obs=spec.obs)
    raise ValueError(f"unknown trial kind {spec.kind!r}")


# Results whose encoded artifact is smaller than this ride the pool
# pipe inline: below it, a store write + parent read + digest check
# costs more than just shipping the bytes.  Bulk artifacts (trace
# record lists, distillation results) sit far above it.
_ENVELOPE_MIN_BYTES = 4096


def _seal(result, key: str, kind: str):
    """Encode a result, park it in the worker's shared store, and
    return the envelope.  Small results, and results the store cannot
    take, are returned raw instead (the pipe path for this item)."""
    tok = span_begin()
    t0 = time.perf_counter_ns()
    blob = codec.encode_gz(result)
    encode_ns = time.perf_counter_ns() - t0
    span_end(tok, "encode", kind, nbytes=len(blob))
    if len(blob) < _ENVELOPE_MIN_BYTES:
        return result
    tok = span_begin()
    try:
        _WORKER_STORE.put_encoded(key, blob, meta={"stage": kind})
    except OSError:
        return result
    span_end(tok, "store_write", kind, nbytes=len(blob))
    return ResultEnvelope(key=key, digest=codec.content_digest(blob),
                          nbytes=len(blob), encode_ns=encode_ns)


def _execute_chunk(wire: bytes, envelope: bool,
                   telemetry_ctx: Optional[Tuple[str, int]] = None) -> bytes:
    """Run a chunk of trials in one pool round-trip.

    ``wire`` is a pickled list of ``(spec, key)`` pairs; the return is
    a pickled ``(payloads, spans_blob)`` pair — per-item payloads
    (envelope / raw result / :class:`_TransportFailure`) aligned with
    the input, plus the chunk's stage spans as one codec frame (or
    ``None`` when telemetry is off).  Pickling is done here, not by the
    pool, so the parent can count the exact bytes that crossed the
    pipe.

    ``telemetry_ctx`` is ``(sweep_id, submit_ns)``: its presence turns
    span capture on for this chunk, and ``submit_ns`` (the parent's
    wall clock at submission) yields the queue-wait span — clamped at
    zero, since wall clocks across processes may disagree by more than
    a short queue wait.
    """
    chunk_tok = None
    if telemetry_ctx is not None:
        sweep_id, submit_ns = telemetry_ctx
        capture_begin(sweep_id)
        now = time.time_ns()
        record_point("queue", ts=submit_ns, dur=now - submit_ns)
        chunk_tok = span_begin()
    items: List[Tuple[TrialSpec, str]] = pickle.loads(wire)
    out: List[Any] = []
    for spec, key in items:
        trial_tok = span_begin()
        try:
            result = execute_trial(spec)
        except _ReplayResolveError as exc:
            span_end(trial_tok, spec.kind, spec.span_label(), failed=True)
            out.append(_TransportFailure(reason=str(exc)))
            continue
        span_end(trial_tok, spec.kind, spec.span_label())
        if envelope and _WORKER_STORE is not None:
            out.append(_seal(result, key, spec.kind))
        else:
            out.append(result)
    spans_blob = None
    if telemetry_ctx is not None:
        span_end(chunk_tok, "chunk", f"{len(items)} trial(s)")
        spans_blob = codec.encode(pack_spans(capture_end()))
    wire_out = pickle.dumps((out, spans_blob),
                            protocol=pickle.HIGHEST_PROTOCOL)
    global _worker_chunks_since_gc
    if not gc.isenabled():
        _worker_chunks_since_gc += 1
        if _worker_chunks_since_gc >= _GC_CHUNKS_PER_SWEEP:
            _worker_chunks_since_gc = 0
            gc.collect()
    return wire_out


def spec_fingerprint(spec: TrialSpec,
                     distill_stage: Optional[DistillStage] = None
                     ) -> Optional[str]:
    """The pipeline-stage fingerprint of a trial spec's result.

    Live, modulated and Ethernet specs return exactly what the matching
    pipeline stage computes, so they share the stage's own fingerprint
    (and thus its cached artifacts).  A ``"distill"`` spec folds collect
    and distill into one worker task; without observability its result
    is the :class:`DistillStage` artifact, with observability it is the
    ``{"__distill__", "__obs__"}`` wrapper, which gets its own keyspace.

    ``distill_stage`` supplies the upstream ancestry for ``"modulated"``
    specs (the spec itself only carries the materialized replay).
    Returns ``None`` — never cache — when an input has no stable token.
    """
    try:
        if spec.kind == "distill":
            stage = DistillStage(
                CollectStage(spec.scenario, spec.seed, spec.trial,
                             obs=spec.obs),
                distiller=spec.distiller, label=spec.name)
            if spec.obs is None:
                return stage.fingerprint()
            return digest({"trial": "distill+obs",
                           "stage": stage.fingerprint()})
        if spec.kind == "live":
            return LiveTrialStage(spec.scenario, spec.runner, spec.seed,
                                  spec.trial, obs=spec.obs).fingerprint()
        if spec.kind == "modulated":
            if distill_stage is None:
                return None
            return ModulatedTrialStage(distill_stage, spec.runner,
                                       spec.seed, spec.trial,
                                       compensation=spec.compensation,
                                       obs=spec.obs).fingerprint()
        if spec.kind == "ethernet":
            return EthernetTrialStage(spec.runner, spec.seed, spec.trial,
                                      obs=spec.obs).fingerprint()
    except TypeError:
        return None
    return None


# ======================================================================
# The executor
# ======================================================================
class _ChunkHandle:
    """One in-flight chunk: the pool future plus a decode-once cache,
    shared by every :class:`_TrialFuture` whose spec rode in it."""

    __slots__ = ("future", "_payload")

    def __init__(self, future):
        self.future = future
        self._payload = None

    def payload(self, executor: Optional["TrialExecutor"]) -> List[Any]:
        if self._payload is None:
            raw = self.future.result()
            if executor is not None:
                executor.metrics.counter(
                    "executor.ipc_bytes_recv").inc(len(raw))
            payloads, spans_blob = pickle.loads(raw)
            if spans_blob is not None and executor is not None \
                    and executor.telemetry is not None:
                try:
                    executor.telemetry.extend(
                        unpack_spans(codec.decode(spans_blob)))
                except codec.CodecError:
                    pass  # telemetry loss must never fail a trial
            self._payload = payloads
        return self._payload


class _TrialFuture:
    """Result handle for one submitted spec.

    In serial mode the trial runs lazily on the first ``result()`` call;
    on a pool it indexes into its chunk's payload and, if the pool
    broke, the chunk would not pickle, or an envelope cannot be
    rehydrated, recomputes the trial in-process (recording why on the
    executor).  Either way ``result()`` returns exactly what
    ``execute_trial(spec)`` returns, so the fallback paths cannot
    change any result.

    A future may instead be born *resolved* with a cached artifact
    (``value=``), or carry a ``pipeline`` that accounts the computed
    result under the spec's fingerprint the moment it lands — before
    the caller can mutate it.  ``store_key``, when set, names the
    shared-store artifact holding this result (the parent uses it to
    pass replays to downstream modulated trials by reference).
    """

    _UNSET = object()

    def __init__(self, spec: TrialSpec, future: Optional[_ChunkHandle] = None,
                 executor: Optional["TrialExecutor"] = None,
                 value=_UNSET, pipeline: Optional[Pipeline] = None,
                 chunk_index: int = 0, store_key: Optional[str] = None):
        self._spec = spec
        self._future = future
        self._executor = executor
        self._result = value
        self._pipeline = pipeline
        self._chunk_index = chunk_index
        self.store_key = store_key

    def result(self):
        if self._result is not self._UNSET:
            return self._result
        value = self._UNSET
        stored_remotely = False
        if self._future is not None:
            payload = None
            try:
                payload = self._future.payload(self._executor)
            except (BrokenProcessPool, pickle.PickleError, OSError) as exc:
                if self._executor is not None:
                    self._executor._mark_broken(exc)
            if payload is not None:
                item = payload[self._chunk_index]
                if isinstance(item, _TransportFailure):
                    if self._executor is not None:
                        self._executor._note_fallback(
                            f"worker transport: {item.reason}")
                elif isinstance(item, ResultEnvelope):
                    value = self._rehydrate(item)
                    if value is not self._UNSET:
                        self.store_key = item.key
                        stored_remotely = (
                            self._executor is not None
                            and self._executor._ipc_shared
                            and item.key == self._spec.fingerprint)
                else:
                    value = item
        if value is self._UNSET:
            exe = self._executor
            telemetry = exe.telemetry if exe is not None else None
            if telemetry is not None:
                tok = telemetry.begin()
                value = execute_trial(self._spec)
                telemetry.end(tok, self._spec.kind, self._spec.span_label(),
                              fallback=self._future is not None)
            else:
                value = execute_trial(self._spec)
            if self._future is None and exe is not None \
                    and exe.progress is not None:
                exe.progress.completed()
        self._result = value
        if self._pipeline is not None and self._spec.fingerprint is not None:
            if stored_remotely:
                # The worker already wrote the artifact into the
                # pipeline's own store; just account for the miss.
                self._pipeline.record_remote(self._spec.fingerprint,
                                             stage=self._spec.kind)
            else:
                self._pipeline.store_result(self._spec.fingerprint, value,
                                            stage=self._spec.kind)
        return self._result

    def _rehydrate(self, env: ResultEnvelope):
        """Decode an envelope's artifact from the shared store; on any
        integrity problem return ``_UNSET`` so the caller recomputes."""
        exe = self._executor
        store = exe._ipc_store if exe is not None else None
        if store is None:
            return self._UNSET
        t0 = time.perf_counter_ns()
        found, blob = store.raw_get(env.key)
        if not found or codec.content_digest(blob) != env.digest:
            exe._note_fallback(f"envelope {env.key[:12]}...: artifact "
                               f"missing or digest mismatch")
            return self._UNSET
        try:
            value = codec.decode_gz(blob)
        except codec.CodecError as exc:
            exe._note_fallback(f"envelope {env.key[:12]}...: {exc}")
            return self._UNSET
        elapsed = time.perf_counter_ns() - t0
        metrics = exe.metrics
        metrics.counter("executor.rehydrate_ns").inc(elapsed)
        metrics.counter("executor.envelope_count").inc()
        metrics.counter("executor.artifact_bytes").inc(env.nbytes)
        metrics.counter("executor.encode_ns").inc(env.encode_ns)
        if exe.telemetry is not None:
            exe.telemetry.point("rehydrate", self._spec.span_label(),
                                dur=elapsed, nbytes=env.nbytes)
        return value


class TrialExecutor:
    """Order-preserving trial execution with a warm process pool under it.

    ``workers=None`` sizes the pool to the machine; ``workers=1`` (or a
    pool that cannot be created — restricted sandboxes, missing
    semaphores) degrades to in-process serial execution of the very
    same ``execute_trial`` calls.  ``submit`` returns a trial future;
    ``map`` preserves submission order regardless of completion order —
    which is what makes parallel sweeps bit-identical to serial ones.

    ``transport`` selects the worker→parent data plane: ``"envelope"``
    (store-mediated handoff, see the module docstring), ``"pickle"``
    (results through the pool pipe), or ``"auto"`` (envelope whenever a
    pool is used).  Workers are initialized once per process
    (:func:`_pool_init`); cheap specs are submitted in chunks sized to
    the batch.

    Usable as a context manager; the pool is created lazily on the
    first parallel submission and reused across phases so worker
    startup is paid once per sweep, not once per phase.

    With a ``pipeline`` attached, fingerprinted specs are looked up in
    its artifact store at submission time — a hit returns an
    already-resolved future without touching the pool — and computed
    results are stored as they land.  Caching cannot change results:
    artifacts are keyed by the same inputs that determine the trial's
    output, and cached values round-trip through the binary codec so
    callers get fresh copies.

    Every degradation (broken pool, unpicklable spec, unreadable
    envelope) is counted in :attr:`metrics` and the first reason kept
    in :attr:`fallback_reason` — the executor never falls back
    silently.
    """

    def __init__(self, workers: Optional[int] = None,
                 pipeline: Optional[Pipeline] = None,
                 transport: str = "auto"):
        if transport not in ("auto", "envelope", "pickle"):
            raise ValueError(f"unknown transport {transport!r}")
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.pipeline = pipeline
        self.transport = transport
        self.metrics = MetricsRegistry()
        self.fallback_reason: Optional[str] = None
        # Every distinct fallback reason, in first-seen order (capped);
        # `fallback_reason` keeps only the first for compatibility.
        self.fallback_reasons: List[str] = []
        self.pool_broken = False
        # Sweep-scope hooks: a SweepTelemetry makes workers ship stage
        # spans back with each chunk; a SweepProgress gets completion
        # events.  Both None by default — the zero-cost path.
        self.telemetry: Optional[SweepTelemetry] = None
        self.progress: Optional[SweepProgress] = None
        if pipeline is not None:
            self.metrics.add_collector(pipeline.collector(), key="pipeline")
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial_fallback = self.workers <= 1
        self._transport_used = "serial"
        self._ipc_store: Optional[ArtifactStore] = None
        self._ipc_root: Optional[str] = None
        self._ipc_tmp: Optional[str] = None
        self._ipc_shared = False
        self._seq = 0

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._close_pool()
        if self._ipc_tmp is not None:
            shutil.rmtree(self._ipc_tmp, ignore_errors=True)
            self._ipc_tmp = None
            self._ipc_store = None
            self._ipc_root = None

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _mark_broken(self, exc: Optional[BaseException] = None) -> None:
        """Drop to serial for every later submission (pool died)."""
        reason = "process pool broke"
        if exc is not None:
            reason = f"process pool broke: {type(exc).__name__}: {exc}"
        self.pool_broken = True
        self._note_fallback(reason)
        self._serial_fallback = True
        self._close_pool()

    def _note_fallback(self, reason: str) -> None:
        """Count one in-process fallback; keep every distinct reason."""
        self.metrics.counter("executor.serial_fallbacks").inc()
        if self.fallback_reason is None:
            self.fallback_reason = reason
        if reason not in self.fallback_reasons \
                and len(self.fallback_reasons) < 16:
            self.fallback_reasons.append(reason)
        if self.telemetry is not None:
            self.telemetry.point("fallback", reason)

    @property
    def effective_workers(self) -> int:
        """1 when running serially, else the configured worker count."""
        return 1 if self._serial_fallback else self.workers

    @property
    def transport_used(self) -> str:
        """``"serial"`` until the pool carries work, then the resolved
        transport (``"envelope"`` or ``"pickle"``)."""
        return self._transport_used

    def transport_stats(self) -> Dict[str, Any]:
        """Snapshot of the executor's data-plane counters."""
        metrics = self.metrics
        return {
            "transport": self._transport_used,
            "workers": self.effective_workers,
            "envelope_count":
                metrics.counter("executor.envelope_count").value,
            "ipc_bytes_sent":
                metrics.counter("executor.ipc_bytes_sent").value,
            "ipc_bytes_recv":
                metrics.counter("executor.ipc_bytes_recv").value,
            "artifact_bytes":
                metrics.counter("executor.artifact_bytes").value,
            "encode_ns": metrics.counter("executor.encode_ns").value,
            "rehydrate_ns": metrics.counter("executor.rehydrate_ns").value,
            "serial_fallbacks":
                metrics.counter("executor.serial_fallbacks").value,
            "fallback_reason": self.fallback_reason,
            "fallback_reasons": list(self.fallback_reasons),
            "pool_broken": self.pool_broken,
        }

    # -- execution ------------------------------------------------------
    def submit(self, spec: TrialSpec) -> _TrialFuture:
        """Queue one trial; its result is read with ``.result()``."""
        return self.submit_all([spec])[0]

    def submit_all(self, specs: Sequence[TrialSpec]) -> List[_TrialFuture]:
        """Submit a batch: cache lookups first, then longest trials
        first, with cheap trials chunked.

        Submission order and chunking affect only wall time (short
        tasks fill the tail of the schedule); the returned futures
        align index-for-index with ``specs``.
        """
        specs = list(specs)
        if self.progress is not None:
            self.progress.add_total(len(specs))
        futures: List[Optional[_TrialFuture]] = [None] * len(specs)
        pending: List[Tuple[int, TrialSpec]] = []
        for i, spec in enumerate(specs):
            if self.pipeline is not None and spec.fingerprint is not None:
                found, value = self.pipeline.lookup(spec.fingerprint,
                                                    stage=spec.kind)
                if found:
                    skey = (spec.fingerprint
                            if self.pipeline.store.root is not None else None)
                    futures[i] = _TrialFuture(spec, value=value,
                                              store_key=skey)
                    if self.telemetry is not None:
                        self.telemetry.point("cache_hit", spec.span_label())
                    if self.progress is not None:
                        self.progress.cache_hit()
                    continue
            pending.append((i, spec))
        if not pending:
            return futures
        pool = self._ensure_pool()
        if self.progress is not None:
            self.progress.set_workers(self.effective_workers)
        if pool is None:
            for i, spec in pending:
                futures[i] = _TrialFuture(spec, executor=self,
                                          pipeline=self.pipeline)
            return futures
        envelope = self._resolve_transport() == "envelope"
        pending.sort(key=lambda item: item[1].cost_hint(), reverse=True)
        solo = [item for item in pending
                if item[1].cost_hint() >= _CHUNK_THRESHOLD]
        cheap = [item for item in pending
                 if item[1].cost_hint() < _CHUNK_THRESHOLD]
        chunks: List[List[Tuple[int, TrialSpec]]] = [[it] for it in solo]
        size = self._chunksize(len(cheap))
        chunks.extend(cheap[k:k + size] for k in range(0, len(cheap), size))
        for chunk in chunks:
            handle = self._submit_chunk(chunk, envelope)
            if handle is None:
                for i, spec in chunk:
                    futures[i] = _TrialFuture(spec, executor=self,
                                              pipeline=self.pipeline)
                continue
            for ci, (i, spec) in enumerate(chunk):
                futures[i] = _TrialFuture(spec, future=handle,
                                          executor=self,
                                          pipeline=self.pipeline,
                                          chunk_index=ci)
        return futures

    def map(self, specs: Sequence[TrialSpec]) -> List:
        """Execute all specs; results align index-for-index with specs.

        Always routed through :meth:`submit_all` (even for one spec or
        in serial mode, where futures resolve lazily in order) so cache
        lookups and stores apply uniformly.
        """
        return [f.result() for f in self.submit_all(list(specs))]

    # -- plumbing -------------------------------------------------------
    def _chunksize(self, n_cheap: int) -> int:
        """Chunk size tuned to the batch: enough chunks to keep every
        worker busy twice over, capped so one chunk never serializes a
        long tail."""
        if n_cheap <= 0:
            return 1
        return max(1, min(8, math.ceil(n_cheap / (self._pool_size() * 2))))

    def _pool_size(self) -> int:
        """Actual pool width: ``workers``, capped at core count + 1.

        Heavy oversubscription cannot finish CPU-bound trials sooner —
        it only time-slices them, which *stretches the longest trial*
        (the sweep's critical path: the big collection+distill
        traversals) while cheap work drains around it.  One extra
        worker beyond the core count is kept (the ``make -j N+1`` rule):
        it soaks up the slack whenever a sibling blocks on store I/O or
        the machine's background load steals a core's timeslice.
        """
        cores = os.cpu_count() or self.workers
        return max(1, min(self.workers, cores + 1))

    def _submit_chunk(self, chunk: List[Tuple[int, TrialSpec]],
                      envelope: bool) -> Optional[_ChunkHandle]:
        if self._serial_fallback or self._pool is None:
            return None
        telemetry = self.telemetry
        items: List[Tuple[TrialSpec, str]] = []
        for _, spec in chunk:
            wire = spec
            key = ""
            if envelope:
                key = spec.fingerprint
                if key is None or not self._ipc_shared:
                    key = f"ipc:{self._seq:08d}"
                    self._seq += 1
                if spec.replay is not None and spec.replay_ref is not None:
                    wire = replace(spec, replay=None)
            if telemetry is not None and wire.sweep_id is None:
                wire = replace(wire, sweep_id=telemetry.sweep_id)
            items.append((wire, key))
        try:
            blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError) as exc:
            self._note_fallback(
                f"spec not picklable: {type(exc).__name__}: {exc}")
            return None
        telemetry_ctx = None
        if telemetry is not None:
            telemetry_ctx = (telemetry.sweep_id, time.time_ns())
        try:
            future = self._pool.submit(_execute_chunk, blob, envelope,
                                       telemetry_ctx)
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            self._mark_broken(exc)
            return None
        self.metrics.counter("executor.ipc_bytes_sent").inc(len(blob))
        self._transport_used = "envelope" if envelope else "pickle"
        if self.progress is not None:
            progress, count = self.progress, len(chunk)
            future.add_done_callback(
                lambda _f: progress.completed(count))
        return _ChunkHandle(future)

    def _resolve_transport(self) -> str:
        return "pickle" if self.transport == "pickle" else "envelope"

    def _ensure_ipc_store(self) -> ArtifactStore:
        """The shared store envelopes travel through: the pipeline's
        own disk store when there is one (workers then write artifacts
        straight into the cache), else an executor-owned tempdir."""
        if self._ipc_store is not None:
            return self._ipc_store
        pipe_store = self.pipeline.store if self.pipeline is not None else None
        if pipe_store is not None and pipe_store.root is not None:
            self._ipc_store = pipe_store
            self._ipc_root = str(pipe_store.root)
            self._ipc_shared = True
        else:
            self._ipc_tmp = tempfile.mkdtemp(prefix="repro-ipc-")
            self._ipc_store = ArtifactStore(self._ipc_tmp)
            self._ipc_root = self._ipc_tmp
            self._ipc_shared = False
        return self._ipc_store

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._serial_fallback:
            return None
        if self._pool is None:
            store_root = None
            if self._resolve_transport() == "envelope":
                self._ensure_ipc_store()
                store_root = self._ipc_root
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._pool_size(),
                    initializer=_pool_init, initargs=(store_root,))
            except (OSError, ValueError, NotImplementedError,
                    ImportError) as exc:
                self._note_fallback(
                    f"pool unavailable: {type(exc).__name__}: {exc}")
                self._serial_fallback = True
        return self._pool


def _executor_for(workers: Optional[int],
                  executor: Optional[TrialExecutor],
                  pipeline: Optional[Pipeline] = None,
                  transport: str = "auto") -> tuple:
    """(executor, owns_it): reuse the caller's executor when given.

    A given ``pipeline`` is attached to the executor either way (a
    caller-supplied executor keeps its own pipeline if it already has
    one, and always keeps its own transport).
    """
    if executor is not None:
        if pipeline is not None and executor.pipeline is None:
            executor.pipeline = pipeline
            # The "pipeline" key makes this idempotent across reuse.
            executor.metrics.add_collector(pipeline.collector(),
                                           key="pipeline")
        return executor, False
    return TrialExecutor(workers=workers, pipeline=pipeline,
                         transport=transport), True


# ======================================================================
# Parallel twins of the harness entry points
# ======================================================================
def _distill_specs(scenario: Scenario, seed: int, trials: int,
                   distiller: Optional[Distiller],
                   obs: Optional[ObsConfig] = None) -> List[TrialSpec]:
    return [TrialSpec(kind="distill", seed=seed, trial=t, scenario=scenario,
                      distiller=distiller, name=f"{scenario.name}-{t}",
                      obs=obs)
            for t in range(trials)]


def _unwrap_distill(result) -> tuple:
    """(DistillationResult, metrics record | None) from a worker result."""
    if isinstance(result, dict) and "__distill__" in result:
        return result["__distill__"], result.get("__obs__")
    return result, None


def _assemble_validation(scenario: Scenario, runner: BenchmarkRunner,
                         distillations: List[DistillationResult],
                         real_by_variant: List[List[Dict[str, float]]],
                         mod_by_variant: List[List[Dict[str, float]]]
                         ) -> ScenarioValidation:
    """Fold per-trial metric dicts into the harness's result object.

    Mirrors :func:`repro.validation.harness.validate_scenario` exactly
    (same Summary construction, same comparison ordering) so rendered
    tables match the serial path byte-for-byte.
    """
    validation = ScenarioValidation(scenario=scenario.name,
                                    benchmark=runner.name,
                                    distillations=distillations)
    for variant, real_runs, modulated_runs in zip(runner.variants(),
                                                  real_by_variant,
                                                  mod_by_variant):
        for metric in variant.metrics:
            validation.comparisons[metric] = MetricComparison(
                metric=metric,
                real=Summary.of([r[metric] for r in real_runs]),
                modulated=Summary.of([m[metric] for m in modulated_runs]),
            )
    return validation


def validate_scenario_parallel(scenario: Scenario, runner: BenchmarkRunner,
                               seed: int = 0, trials: int = 4,
                               distiller: Optional[Distiller] = None,
                               compensation: Optional[float] = None,
                               workers: Optional[int] = None,
                               executor: Optional[TrialExecutor] = None,
                               cache=None) -> ScenarioValidation:
    """Parallel version of :func:`repro.validation.harness.validate_scenario`.

    Bit-identical to the serial implementation for the same arguments.
    """
    sweep = run_validation([scenario], runner, seed=seed, trials=trials,
                           distiller=distiller, compensation=compensation,
                           workers=workers, executor=executor, cache=cache)
    return sweep.validations[0]


def ethernet_baseline_parallel(runner: BenchmarkRunner, seed: int = 0,
                               trials: int = 4,
                               workers: Optional[int] = None,
                               executor: Optional[TrialExecutor] = None
                               ) -> Dict[str, Summary]:
    """Parallel version of :func:`repro.validation.harness.ethernet_baseline`."""
    exe, owned = _executor_for(workers, executor)
    try:
        variants = runner.variants()
        specs = [TrialSpec(kind="ethernet", seed=seed, trial=t,
                           runner=variant)
                 for variant in variants for t in range(trials)]
        results = exe.map(specs)
        out: Dict[str, Summary] = {}
        for v, variant in enumerate(variants):
            runs = results[v * trials:(v + 1) * trials]
            for metric in variant.metrics:
                out[metric] = Summary.of([r[metric] for r in runs])
        return out
    finally:
        if owned:
            exe.shutdown()


def characterize_scenario_parallel(scenario: Scenario, seed: int = 0,
                                   trials: int = 4,
                                   workers: Optional[int] = None,
                                   executor: Optional[TrialExecutor] = None,
                                   obs: Optional[ObsConfig] = None,
                                   trial_metrics: Optional[List[Dict]] = None):
    """Parallel version of :func:`repro.validation.figures.characterize_scenario`.

    With ``obs`` set, each traversal's metrics record is appended to
    the caller-supplied ``trial_metrics`` list in trial order.
    """
    from .figures import ScenarioCharacterization

    exe, owned = _executor_for(workers, executor)
    try:
        results = exe.map(_distill_specs(scenario, seed, trials, None, obs))
        distillations = []
        for result in results:
            dist, record = _unwrap_distill(result)
            distillations.append(dist)
            if record is not None and trial_metrics is not None:
                trial_metrics.append(record)
        return ScenarioCharacterization(scenario=scenario,
                                        distillations=distillations)
    finally:
        if owned:
            exe.shutdown()


# ======================================================================
# The full sweep
# ======================================================================
@dataclass
class ValidationSweep:
    """Everything one benchmark sweep produced, plus how it ran."""

    benchmark: str
    validations: List[ScenarioValidation] = field(default_factory=list)
    baseline: Optional[Dict[str, Summary]] = None
    workers_used: int = 1
    # One metrics record per trial (collect, live, modulated, ethernet)
    # when the sweep ran with an ObsConfig; empty otherwise.  Ordered
    # deterministically: per scenario, collections then live then
    # modulated (variant-major), then the baseline trials.
    trial_metrics: List[Dict] = field(default_factory=list)
    # Artifact-cache accounting when the sweep ran with ``cache=``:
    # how many trials were loaded versus recomputed (both zero means
    # the sweep ran uncached).
    cache_hits: int = 0
    cache_misses: int = 0
    # Data-plane accounting (see TrialExecutor.transport_stats):
    # which transport carried results, envelope/byte counters, and how
    # often — and why — execution fell back in-process.
    transport: Dict[str, Any] = field(default_factory=dict)
    fallback_reason: Optional[str] = None
    # Sweep-timeline rollup (SweepTelemetry.summary()) when the sweep
    # ran with telemetry; None otherwise.
    telemetry: Optional[Dict[str, Any]] = None

    def render(self, title: Optional[str] = None, caption: str = "") -> str:
        """The Figures 6–8 style table for this sweep.

        Byte-identical for any worker count and either transport — the
        determinism tests compare exactly this string across
        ``workers`` values.
        """
        from .figures import render_benchmark_table

        baseline = self.baseline
        if baseline is None:
            metrics = self.validations[0].comparisons if self.validations else {}
            baseline = {m: Summary(mean=float("nan"), std=float("nan"), n=0)
                        for m in metrics}
        return render_benchmark_table(
            self.validations, baseline,
            title=title or f"Validation sweep: {self.benchmark}",
            caption=caption)

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable sweep: per-scenario tables, cache and
        data-plane accounting (the CLI's ``--json`` surface)."""
        return {
            "benchmark": self.benchmark,
            "workers_used": self.workers_used,
            "scenarios": [
                {
                    "scenario": v.scenario,
                    "metrics": {
                        name: {
                            "real": c.real.as_dict(),
                            "modulated": c.modulated.as_dict(),
                            "sigma_distance": (
                                c.sigma_distance
                                if math.isfinite(c.sigma_distance)
                                else None),  # strict-JSON safe
                            "accurate": c.accurate,
                        }
                        for name, c in v.comparisons.items()
                    },
                }
                for v in self.validations
            ],
            "baseline": (
                {m: s.as_dict() for m, s in self.baseline.items()}
                if self.baseline is not None else None),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
            "transport": self.transport,
            "fallback_reason": self.fallback_reason,
            "telemetry": self.telemetry,
        }


def run_validation(scenarios: Union[Scenario, Sequence[Scenario]],
                   runner: BenchmarkRunner,
                   seed: int = 0, trials: int = 4,
                   distiller: Optional[Distiller] = None,
                   compensation: Optional[float] = None,
                   baseline: bool = False,
                   workers: Optional[int] = None,
                   executor: Optional[TrialExecutor] = None,
                   obs: Optional[ObsConfig] = None,
                   cache=None,
                   transport: str = "auto",
                   telemetry: Optional[SweepTelemetry] = None,
                   progress: Optional[SweepProgress] = None
                   ) -> ValidationSweep:
    """Run the paper's validation protocol over one or more scenarios.

    The sweep is fully pipelined: every trial with no input dependency
    — all trace-collection traversals, all live trials, the Ethernet
    baseline — is queued up front (longest first, cheap trials
    chunked), and each scenario's modulated trials are queued the
    moment its distillations resolve, carrying the distilled replay by
    store reference when the envelope transport is active.  The pool
    therefore never idles at a phase barrier; cheap scenarios'
    modulated trials run while expensive collections are still in
    flight.

    The delay-compensation constant is measured once, in the parent,
    and shipped to every worker — exactly like the serial harness,
    which measures it once per process.

    ``cache`` (a directory path, :class:`~repro.pipeline.ArtifactStore`
    or :class:`~repro.pipeline.Pipeline`) turns on content-addressed
    artifact caching: every trial is fingerprinted through the pipeline
    stages and looked up before it is executed, so a warm rerun of the
    same sweep recomputes nothing.  With a disk cache the envelope
    transport writes worker artifacts straight into it.  ``transport``
    selects the worker→parent data plane (see :class:`TrialExecutor`).
    Results are identical with or without a cache, on either transport.
    """
    if isinstance(scenarios, Scenario):
        scenarios = [scenarios]
    # Accept scenario classes (ALL_SCENARIOS is a tuple of classes).
    scenarios = [s() if isinstance(s, type) else s for s in scenarios]
    pipeline = as_pipeline(cache)
    cache_mark = len(pipeline.executions) if pipeline is not None else 0
    comp_tok = telemetry.begin() if telemetry is not None else None
    if compensation is not None:
        comp = compensation
    elif pipeline is not None:
        comp = pipeline.run(CompensationStage())
    else:
        comp = compensation_vb()
    if telemetry is not None:
        telemetry.end(comp_tok, "compensation")
    exe, owned = _executor_for(workers, executor, pipeline, transport)
    if telemetry is not None:
        exe.telemetry = telemetry
    if progress is not None:
        exe.progress = progress
    try:
        variants = runner.variants()
        n = len(scenarios)

        def _fp(spec: TrialSpec,
                dist_stage: Optional[DistillStage] = None) -> TrialSpec:
            if pipeline is None:
                return spec
            return replace(spec,
                           fingerprint=spec_fingerprint(spec, dist_stage))

        # Distill-stage ancestry per (scenario, trial): the modulated
        # specs chain these fingerprints so a changed scenario spec or
        # distiller invalidates exactly its downstream trials.
        dist_stages: List[List[DistillStage]] = []
        if pipeline is not None:
            for scenario in scenarios:
                dist_stages.append([
                    DistillStage(CollectStage(scenario, seed, t, obs=obs),
                                 distiller=distiller,
                                 label=f"{scenario.name}-{t}")
                    for t in range(trials)])

        # ---- queue every dependency-free trial -----------------------
        nodep_specs: List[TrialSpec] = []
        for scenario in scenarios:
            nodep_specs.extend(
                _fp(spec) for spec in
                _distill_specs(scenario, seed, trials, distiller, obs))
        for scenario in scenarios:
            for variant in variants:
                for t in range(trials):
                    nodep_specs.append(_fp(TrialSpec(
                        kind="live", seed=seed, trial=t,
                        scenario=scenario, runner=variant, obs=obs)))
        if baseline:
            for variant in variants:
                for t in range(trials):
                    nodep_specs.append(_fp(TrialSpec(
                        kind="ethernet", seed=seed, trial=t,
                        runner=variant, obs=obs)))
        nodep_futs = exe.submit_all(nodep_specs)
        dist_futs = [nodep_futs[s * trials:(s + 1) * trials]
                     for s in range(n)]
        bench_futs = nodep_futs[n * trials:]

        # ---- queue modulated trials as distillations resolve ---------
        # Cheapest scenarios first: their modulated trials slot in
        # behind the expensive collections still running.
        resolve_order = sorted(
            range(n), key=lambda s: dist_futs[s][0]._spec.cost_hint())
        dist_by_scenario: List[List[DistillationResult]] = [[] for _ in range(n)]
        collect_records: List[List[Dict]] = [[] for _ in range(n)]
        mod_futs: List[List[_TrialFuture]] = [[] for _ in range(n)]
        for s in resolve_order:
            for f in dist_futs[s]:
                dist, record = _unwrap_distill(f.result())
                dist_by_scenario[s].append(dist)
                if record is not None:
                    collect_records[s].append(record)
            mod_specs = [_fp(TrialSpec(kind="modulated", seed=seed, trial=t,
                                       runner=variant,
                                       replay=dist_by_scenario[s][t].replay,
                                       replay_ref=dist_futs[s][t].store_key,
                                       compensation=comp, obs=obs),
                             dist_stages[s][t] if pipeline is not None
                             else None)
                         for variant in variants for t in range(trials)]
            mod_futs[s] = exe.submit_all(mod_specs)

        # ---- reassembly ---------------------------------------------
        # Metrics records are pulled out of the sinks here, in a fixed
        # order (per scenario: collections, then live and modulated
        # variant-major; baseline last) — never in completion order.
        sweep = ValidationSweep(benchmark=runner.name,
                                workers_used=exe.effective_workers)

        def _take_records(runs: List[Dict]) -> List[Dict]:
            out = []
            for run in runs:
                record = run.pop("__obs__", None)
                if record is not None:
                    out.append(record)
            return out

        cursor = 0
        for s, scenario in enumerate(scenarios):
            sweep.trial_metrics.extend(collect_records[s])
            real_by_variant: List[List[Dict[str, float]]] = []
            mod_by_variant: List[List[Dict[str, float]]] = []
            for v, _variant in enumerate(variants):
                real_runs = [f.result()
                             for f in bench_futs[cursor:cursor + trials]]
                cursor += trials
                mod_runs = [f.result()
                            for f in mod_futs[s][v * trials:(v + 1) * trials]]
                sweep.trial_metrics.extend(_take_records(real_runs))
                sweep.trial_metrics.extend(_take_records(mod_runs))
                real_by_variant.append(real_runs)
                mod_by_variant.append(mod_runs)
            sweep.validations.append(_assemble_validation(
                scenario, runner, dist_by_scenario[s],
                real_by_variant, mod_by_variant))
        if baseline:
            out: Dict[str, Summary] = {}
            for variant in variants:
                runs = [f.result()
                        for f in bench_futs[cursor:cursor + trials]]
                cursor += trials
                sweep.trial_metrics.extend(_take_records(runs))
                for metric in variant.metrics:
                    out[metric] = Summary.of([r[metric] for r in runs])
            sweep.baseline = out
        if pipeline is not None:
            stats = pipeline.summary(since=cache_mark)
            sweep.cache_hits = stats["hits"]
            sweep.cache_misses = stats["misses"]
        sweep.workers_used = exe.effective_workers
        sweep.transport = exe.transport_stats()
        sweep.fallback_reason = exe.fallback_reason
        if telemetry is not None:
            sweep.telemetry = telemetry.summary()
        return sweep
    finally:
        if owned:
            exe.shutdown()
        else:
            # A caller-supplied executor outlives this sweep; detach
            # the sweep-scope hooks so a later sweep starts clean.
            if telemetry is not None and exe.telemetry is telemetry:
                exe.telemetry = None
            if progress is not None and exe.progress is progress:
                exe.progress = None
