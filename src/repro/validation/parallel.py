"""Parallel trial fan-out for the validation harness.

Every figure in the paper's evaluation is built from batches of
*independent, seeded* trials: four live runs, four trace-collection
traversals, four modulated runs per scenario/benchmark pair.  Each
trial builds its own world from named seeded RNG streams
(:mod:`repro.sim.rng`), so trials share no state and their results
depend only on ``(scenario, runner, seed, trial)`` — which makes them
embarrassingly parallel *and* guarantees that a parallel run is
bit-identical to a serial one.

This module fans those trials out over a ``ProcessPoolExecutor``:

* :class:`TrialSpec` — a picklable description of one trial;
* :func:`execute_trial` — the worker entry point (module-level, so it
  pickles by reference);
* :class:`TrialExecutor` — an order-preserving map over specs with a
  configurable worker count and an automatic serial fallback;
* :func:`run_validation` — the full multi-scenario sweep (the paper's
  Figures 6–8 protocol), collection and benchmark phases each fanned
  out across *all* scenarios at once;
* :func:`validate_scenario_parallel`, :func:`ethernet_baseline_parallel`,
  :func:`characterize_scenario_parallel` — parallel twins of the serial
  entry points in :mod:`repro.validation.harness` and
  :mod:`repro.validation.figures`.

Determinism contract: for any ``workers`` value (including the serial
fallback), results are byte-identical to ``workers=1`` because every
spec is executed by the same pure function with the same arguments and
results are reassembled in submission order.  The only ordering freedom
the pool has is *wall-clock* completion order, which is never observed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pickle import PicklingError
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..analysis.stats import Summary
from ..core.distill import DistillationResult, Distiller
from ..core.replay import ReplayTrace
from ..obs import ObsConfig
from ..pipeline import (
    CollectStage,
    CompensationStage,
    DistillStage,
    EthernetTrialStage,
    LiveTrialStage,
    ModulatedTrialStage,
    Pipeline,
    as_pipeline,
    digest,
)
from ..scenarios.base import Scenario
from .harness import (
    BenchmarkRunner,
    MetricComparison,
    ScenarioValidation,
    collect_trace,
    compensation_vb,
    distill_scenario_trace,
    run_ethernet_trial,
    run_live_trial,
    run_modulated_trial,
)

__all__ = [
    "TrialSpec",
    "TrialExecutor",
    "ValidationSweep",
    "execute_trial",
    "run_validation",
    "spec_fingerprint",
    "validate_scenario_parallel",
    "ethernet_baseline_parallel",
    "characterize_scenario_parallel",
    "default_workers",
]


def default_workers() -> int:
    """Worker count used when the caller does not pin one."""
    return os.cpu_count() or 1


# ======================================================================
# Trial specs and the worker entry point
# ======================================================================
@dataclass(frozen=True)
class TrialSpec:
    """A picklable description of one independent trial.

    ``kind`` selects the work:

    ``"distill"``
        Collect one trace-collection traversal of ``scenario`` and
        distill it; returns a :class:`DistillationResult`.  (Collection
        and distillation stay in the worker so the bulky raw records
        never cross the process boundary.)
    ``"live"``
        One live benchmark trial; returns the metric dict.
    ``"modulated"``
        One modulated benchmark trial over ``replay``; returns the
        metric dict.
    ``"ethernet"``
        One unmodulated Ethernet baseline trial; returns the metric
        dict.

    ``obs`` (an :class:`~repro.obs.ObsConfig`, itself a frozen
    primitive-only dataclass, so the spec stays picklable) requests a
    per-trial metrics record.  Benchmark trials return it inside the
    sink under ``"__obs__"``; distill trials, whose natural result is a
    :class:`DistillationResult`, return a
    ``{"__distill__": ..., "__obs__": ...}`` wrapper instead.
    """

    kind: str
    seed: int
    trial: int
    scenario: Optional[Scenario] = None
    runner: Optional[BenchmarkRunner] = None
    replay: Optional[ReplayTrace] = None
    compensation: float = 0.0
    distiller: Optional[Distiller] = None
    name: str = ""
    obs: Optional[ObsConfig] = None
    # Pipeline-stage fingerprint of this trial's result.  Set by the
    # sweep when it runs with an artifact cache; ``None`` means the
    # trial is uncacheable and always executes.
    fingerprint: Optional[str] = None

    def cost_hint(self) -> float:
        """Rough relative wall-clock cost, for longest-first submission.

        Live and collection trials simulate the full scenario traversal
        with its cross traffic; modulated and Ethernet trials run on the
        small isolated-Ethernet world.  The exact values only affect
        load balancing, never results.
        """
        if self.kind in ("distill", "live"):
            scenario = self.scenario
            duration = getattr(scenario, "duration", 240.0)
            cross = getattr(scenario, "cross_laptops", 0)
            return duration * (1.0 + 2.0 * cross)
        if self.kind == "modulated":
            return 60.0
        return 30.0


def execute_trial(spec: TrialSpec):
    """Run one trial described by ``spec`` (the pool's worker function).

    Pure: the result depends only on the spec, so serial and parallel
    execution agree bit-for-bit.
    """
    if spec.kind == "distill":
        if spec.obs is not None:
            obs_out: Dict[str, Dict] = {}
            records = collect_trace(spec.scenario, spec.seed, spec.trial,
                                    obs=spec.obs, obs_out=obs_out)
            result = distill_scenario_trace(records, name=spec.name,
                                            distiller=spec.distiller)
            return {"__distill__": result,
                    "__obs__": obs_out.get("record")}
        records = collect_trace(spec.scenario, spec.seed, spec.trial)
        return distill_scenario_trace(records, name=spec.name,
                                      distiller=spec.distiller)
    if spec.kind == "live":
        return run_live_trial(spec.scenario, spec.runner, spec.seed,
                              spec.trial, obs=spec.obs)
    if spec.kind == "modulated":
        return run_modulated_trial(spec.replay, spec.runner, spec.seed,
                                   spec.trial, spec.compensation,
                                   obs=spec.obs)
    if spec.kind == "ethernet":
        return run_ethernet_trial(spec.runner, spec.seed, spec.trial,
                                  obs=spec.obs)
    raise ValueError(f"unknown trial kind {spec.kind!r}")


def spec_fingerprint(spec: TrialSpec,
                     distill_stage: Optional[DistillStage] = None
                     ) -> Optional[str]:
    """The pipeline-stage fingerprint of a trial spec's result.

    Live, modulated and Ethernet specs return exactly what the matching
    pipeline stage computes, so they share the stage's own fingerprint
    (and thus its cached artifacts).  A ``"distill"`` spec folds collect
    and distill into one worker task; without observability its result
    is the :class:`DistillStage` artifact, with observability it is the
    ``{"__distill__", "__obs__"}`` wrapper, which gets its own keyspace.

    ``distill_stage`` supplies the upstream ancestry for ``"modulated"``
    specs (the spec itself only carries the materialized replay).
    Returns ``None`` — never cache — when an input has no stable token.
    """
    try:
        if spec.kind == "distill":
            stage = DistillStage(
                CollectStage(spec.scenario, spec.seed, spec.trial,
                             obs=spec.obs),
                distiller=spec.distiller, label=spec.name)
            if spec.obs is None:
                return stage.fingerprint()
            return digest({"trial": "distill+obs",
                           "stage": stage.fingerprint()})
        if spec.kind == "live":
            return LiveTrialStage(spec.scenario, spec.runner, spec.seed,
                                  spec.trial, obs=spec.obs).fingerprint()
        if spec.kind == "modulated":
            if distill_stage is None:
                return None
            return ModulatedTrialStage(distill_stage, spec.runner,
                                       spec.seed, spec.trial,
                                       compensation=spec.compensation,
                                       obs=spec.obs).fingerprint()
        if spec.kind == "ethernet":
            return EthernetTrialStage(spec.runner, spec.seed, spec.trial,
                                      obs=spec.obs).fingerprint()
    except TypeError:
        return None
    return None


# ======================================================================
# The executor
# ======================================================================
class _TrialFuture:
    """Result handle for one submitted spec.

    In serial mode the trial runs lazily on the first ``result()`` call;
    on a pool it wraps the real future and, if the pool breaks or the
    spec will not pickle, recomputes the trial in-process.  Either way
    ``result()`` returns exactly what ``execute_trial(spec)`` returns,
    so the executor's fallback paths cannot change any result.

    A future may instead be born *resolved* with a cached artifact
    (``value=``), or carry a ``pipeline`` that stores the computed
    result under the spec's fingerprint the moment it lands — before
    the caller can mutate it.
    """

    _UNSET = object()

    def __init__(self, spec: TrialSpec, future=None,
                 executor: Optional["TrialExecutor"] = None,
                 value=_UNSET, pipeline: Optional[Pipeline] = None):
        self._spec = spec
        self._future = future
        self._executor = executor
        self._result = value
        self._pipeline = pipeline

    def result(self):
        if self._result is not self._UNSET:
            return self._result
        if self._future is not None:
            try:
                self._result = self._future.result()
            except (BrokenProcessPool, PicklingError, OSError):
                if self._executor is not None:
                    self._executor._mark_broken()
                self._result = execute_trial(self._spec)
        else:
            self._result = execute_trial(self._spec)
        if self._pipeline is not None and self._spec.fingerprint is not None:
            self._pipeline.store_result(self._spec.fingerprint,
                                        self._result,
                                        stage=self._spec.kind)
        return self._result


class TrialExecutor:
    """Order-preserving trial execution with a process pool under it.

    ``workers=None`` sizes the pool to the machine; ``workers=1`` (or a
    pool that cannot be created — restricted sandboxes, missing
    semaphores) degrades to in-process serial execution of the very
    same ``execute_trial`` calls.  ``submit`` returns a
    :class:`_TrialFuture`; ``map`` preserves submission order
    regardless of completion order — which is what makes parallel
    sweeps bit-identical to serial ones.

    Usable as a context manager; the pool is created lazily on the
    first parallel submission and reused across phases so worker
    startup is paid once per sweep, not once per phase.

    With a ``pipeline`` attached, fingerprinted specs are looked up in
    its artifact store at submission time — a hit returns an
    already-resolved future without touching the pool — and computed
    results are stored as they land.  Caching cannot change results:
    artifacts are keyed by the same inputs that determine the trial's
    output, and cached values round-trip through pickle so callers get
    fresh copies.
    """

    def __init__(self, workers: Optional[int] = None,
                 pipeline: Optional[Pipeline] = None):
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.pipeline = pipeline
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial_fallback = self.workers <= 1

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _mark_broken(self) -> None:
        """Drop to serial for every later submission (pool died)."""
        self._serial_fallback = True
        self.shutdown()

    @property
    def effective_workers(self) -> int:
        """1 when running serially, else the configured worker count."""
        return 1 if self._serial_fallback else self.workers

    # -- execution ------------------------------------------------------
    def submit(self, spec: TrialSpec) -> _TrialFuture:
        """Queue one trial; its result is read with ``.result()``."""
        if self.pipeline is not None and spec.fingerprint is not None:
            found, value = self.pipeline.lookup(spec.fingerprint,
                                                stage=spec.kind)
            if found:
                return _TrialFuture(spec, value=value)
        pool = self._ensure_pool()
        if pool is None:
            return _TrialFuture(spec, pipeline=self.pipeline)
        try:
            future = pool.submit(execute_trial, spec)
        except (BrokenProcessPool, PicklingError, OSError, RuntimeError):
            self._mark_broken()
            return _TrialFuture(spec, pipeline=self.pipeline)
        return _TrialFuture(spec, future=future, executor=self,
                            pipeline=self.pipeline)

    def submit_all(self, specs: Sequence[TrialSpec]) -> List[_TrialFuture]:
        """Submit a batch, longest trials first.

        Submission order affects only wall time (short tasks fill the
        tail of the schedule); the returned futures align
        index-for-index with ``specs``.
        """
        specs = list(specs)
        order = sorted(range(len(specs)),
                       key=lambda i: specs[i].cost_hint(), reverse=True)
        futures: List[Optional[_TrialFuture]] = [None] * len(specs)
        for i in order:
            futures[i] = self.submit(specs[i])
        return futures

    def map(self, specs: Sequence[TrialSpec]) -> List:
        """Execute all specs; results align index-for-index with specs.

        Always routed through :meth:`submit_all` (even for one spec or
        in serial mode, where futures resolve lazily in order) so cache
        lookups and stores apply uniformly.
        """
        return [f.result() for f in self.submit_all(list(specs))]

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._serial_fallback:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError, NotImplementedError, ImportError):
                self._serial_fallback = True
        return self._pool


def _executor_for(workers: Optional[int],
                  executor: Optional[TrialExecutor],
                  pipeline: Optional[Pipeline] = None) -> tuple:
    """(executor, owns_it): reuse the caller's executor when given.

    A given ``pipeline`` is attached to the executor either way (a
    caller-supplied executor keeps its own pipeline if it already has
    one).
    """
    if executor is not None:
        if pipeline is not None and executor.pipeline is None:
            executor.pipeline = pipeline
        return executor, False
    return TrialExecutor(workers=workers, pipeline=pipeline), True


# ======================================================================
# Parallel twins of the harness entry points
# ======================================================================
def _distill_specs(scenario: Scenario, seed: int, trials: int,
                   distiller: Optional[Distiller],
                   obs: Optional[ObsConfig] = None) -> List[TrialSpec]:
    return [TrialSpec(kind="distill", seed=seed, trial=t, scenario=scenario,
                      distiller=distiller, name=f"{scenario.name}-{t}",
                      obs=obs)
            for t in range(trials)]


def _unwrap_distill(result) -> tuple:
    """(DistillationResult, metrics record | None) from a worker result."""
    if isinstance(result, dict) and "__distill__" in result:
        return result["__distill__"], result.get("__obs__")
    return result, None


def _assemble_validation(scenario: Scenario, runner: BenchmarkRunner,
                         distillations: List[DistillationResult],
                         real_by_variant: List[List[Dict[str, float]]],
                         mod_by_variant: List[List[Dict[str, float]]]
                         ) -> ScenarioValidation:
    """Fold per-trial metric dicts into the harness's result object.

    Mirrors :func:`repro.validation.harness.validate_scenario` exactly
    (same Summary construction, same comparison ordering) so rendered
    tables match the serial path byte-for-byte.
    """
    validation = ScenarioValidation(scenario=scenario.name,
                                    benchmark=runner.name,
                                    distillations=distillations)
    for variant, real_runs, modulated_runs in zip(runner.variants(),
                                                  real_by_variant,
                                                  mod_by_variant):
        for metric in variant.metrics:
            validation.comparisons[metric] = MetricComparison(
                metric=metric,
                real=Summary.of([r[metric] for r in real_runs]),
                modulated=Summary.of([m[metric] for m in modulated_runs]),
            )
    return validation


def validate_scenario_parallel(scenario: Scenario, runner: BenchmarkRunner,
                               seed: int = 0, trials: int = 4,
                               distiller: Optional[Distiller] = None,
                               compensation: Optional[float] = None,
                               workers: Optional[int] = None,
                               executor: Optional[TrialExecutor] = None,
                               cache=None) -> ScenarioValidation:
    """Parallel version of :func:`repro.validation.harness.validate_scenario`.

    Bit-identical to the serial implementation for the same arguments.
    """
    sweep = run_validation([scenario], runner, seed=seed, trials=trials,
                           distiller=distiller, compensation=compensation,
                           workers=workers, executor=executor, cache=cache)
    return sweep.validations[0]


def ethernet_baseline_parallel(runner: BenchmarkRunner, seed: int = 0,
                               trials: int = 4,
                               workers: Optional[int] = None,
                               executor: Optional[TrialExecutor] = None
                               ) -> Dict[str, Summary]:
    """Parallel version of :func:`repro.validation.harness.ethernet_baseline`."""
    exe, owned = _executor_for(workers, executor)
    try:
        variants = runner.variants()
        specs = [TrialSpec(kind="ethernet", seed=seed, trial=t,
                           runner=variant)
                 for variant in variants for t in range(trials)]
        results = exe.map(specs)
        out: Dict[str, Summary] = {}
        for v, variant in enumerate(variants):
            runs = results[v * trials:(v + 1) * trials]
            for metric in variant.metrics:
                out[metric] = Summary.of([r[metric] for r in runs])
        return out
    finally:
        if owned:
            exe.shutdown()


def characterize_scenario_parallel(scenario: Scenario, seed: int = 0,
                                   trials: int = 4,
                                   workers: Optional[int] = None,
                                   executor: Optional[TrialExecutor] = None,
                                   obs: Optional[ObsConfig] = None,
                                   trial_metrics: Optional[List[Dict]] = None):
    """Parallel version of :func:`repro.validation.figures.characterize_scenario`.

    With ``obs`` set, each traversal's metrics record is appended to
    the caller-supplied ``trial_metrics`` list in trial order.
    """
    from .figures import ScenarioCharacterization

    exe, owned = _executor_for(workers, executor)
    try:
        results = exe.map(_distill_specs(scenario, seed, trials, None, obs))
        distillations = []
        for result in results:
            dist, record = _unwrap_distill(result)
            distillations.append(dist)
            if record is not None and trial_metrics is not None:
                trial_metrics.append(record)
        return ScenarioCharacterization(scenario=scenario,
                                        distillations=distillations)
    finally:
        if owned:
            exe.shutdown()


# ======================================================================
# The full sweep
# ======================================================================
@dataclass
class ValidationSweep:
    """Everything one benchmark sweep produced, plus how it ran."""

    benchmark: str
    validations: List[ScenarioValidation] = field(default_factory=list)
    baseline: Optional[Dict[str, Summary]] = None
    workers_used: int = 1
    # One metrics record per trial (collect, live, modulated, ethernet)
    # when the sweep ran with an ObsConfig; empty otherwise.  Ordered
    # deterministically: per scenario, collections then live then
    # modulated (variant-major), then the baseline trials.
    trial_metrics: List[Dict] = field(default_factory=list)
    # Artifact-cache accounting when the sweep ran with ``cache=``:
    # how many trials were loaded versus recomputed (both zero means
    # the sweep ran uncached).
    cache_hits: int = 0
    cache_misses: int = 0

    def render(self, title: Optional[str] = None, caption: str = "") -> str:
        """The Figures 6–8 style table for this sweep.

        Byte-identical for any worker count — the determinism tests
        compare exactly this string across ``workers`` values.
        """
        from .figures import render_benchmark_table

        baseline = self.baseline
        if baseline is None:
            metrics = self.validations[0].comparisons if self.validations else {}
            baseline = {m: Summary(mean=float("nan"), std=float("nan"), n=0)
                        for m in metrics}
        return render_benchmark_table(
            self.validations, baseline,
            title=title or f"Validation sweep: {self.benchmark}",
            caption=caption)


def run_validation(scenarios: Union[Scenario, Sequence[Scenario]],
                   runner: BenchmarkRunner,
                   seed: int = 0, trials: int = 4,
                   distiller: Optional[Distiller] = None,
                   compensation: Optional[float] = None,
                   baseline: bool = False,
                   workers: Optional[int] = None,
                   executor: Optional[TrialExecutor] = None,
                   obs: Optional[ObsConfig] = None,
                   cache=None) -> ValidationSweep:
    """Run the paper's validation protocol over one or more scenarios.

    The sweep is fully pipelined: every trial with no input dependency
    — all trace-collection traversals, all live trials, the Ethernet
    baseline — is queued up front (longest first), and each scenario's
    modulated trials are queued the moment its distillations resolve.
    The pool therefore never idles at a phase barrier; cheap
    scenarios' modulated trials run while expensive collections are
    still in flight.

    The delay-compensation constant is measured once, in the parent,
    and shipped to every worker — exactly like the serial harness,
    which measures it once per process.

    ``cache`` (a directory path, :class:`~repro.pipeline.ArtifactStore`
    or :class:`~repro.pipeline.Pipeline`) turns on content-addressed
    artifact caching: every trial is fingerprinted through the pipeline
    stages and looked up before it is executed, so a warm rerun of the
    same sweep recomputes nothing.  Results are identical with or
    without a cache.
    """
    if isinstance(scenarios, Scenario):
        scenarios = [scenarios]
    # Accept scenario classes (ALL_SCENARIOS is a tuple of classes).
    scenarios = [s() if isinstance(s, type) else s for s in scenarios]
    pipeline = as_pipeline(cache)
    cache_mark = len(pipeline.executions) if pipeline is not None else 0
    if compensation is not None:
        comp = compensation
    elif pipeline is not None:
        comp = pipeline.run(CompensationStage())
    else:
        comp = compensation_vb()
    exe, owned = _executor_for(workers, executor, pipeline)
    try:
        variants = runner.variants()
        n = len(scenarios)

        def _fp(spec: TrialSpec,
                dist_stage: Optional[DistillStage] = None) -> TrialSpec:
            if pipeline is None:
                return spec
            return replace(spec,
                           fingerprint=spec_fingerprint(spec, dist_stage))

        # Distill-stage ancestry per (scenario, trial): the modulated
        # specs chain these fingerprints so a changed scenario spec or
        # distiller invalidates exactly its downstream trials.
        dist_stages: List[List[DistillStage]] = []
        if pipeline is not None:
            for scenario in scenarios:
                dist_stages.append([
                    DistillStage(CollectStage(scenario, seed, t, obs=obs),
                                 distiller=distiller,
                                 label=f"{scenario.name}-{t}")
                    for t in range(trials)])

        # ---- queue every dependency-free trial -----------------------
        nodep_specs: List[TrialSpec] = []
        for scenario in scenarios:
            nodep_specs.extend(
                _fp(spec) for spec in
                _distill_specs(scenario, seed, trials, distiller, obs))
        for scenario in scenarios:
            for variant in variants:
                for t in range(trials):
                    nodep_specs.append(_fp(TrialSpec(
                        kind="live", seed=seed, trial=t,
                        scenario=scenario, runner=variant, obs=obs)))
        if baseline:
            for variant in variants:
                for t in range(trials):
                    nodep_specs.append(_fp(TrialSpec(
                        kind="ethernet", seed=seed, trial=t,
                        runner=variant, obs=obs)))
        nodep_futs = exe.submit_all(nodep_specs)
        dist_futs = [nodep_futs[s * trials:(s + 1) * trials]
                     for s in range(n)]
        bench_futs = nodep_futs[n * trials:]

        # ---- queue modulated trials as distillations resolve ---------
        # Cheapest scenarios first: their modulated trials slot in
        # behind the expensive collections still running.
        resolve_order = sorted(
            range(n), key=lambda s: dist_futs[s][0]._spec.cost_hint())
        dist_by_scenario: List[List[DistillationResult]] = [[] for _ in range(n)]
        collect_records: List[List[Dict]] = [[] for _ in range(n)]
        mod_futs: List[List[_TrialFuture]] = [[] for _ in range(n)]
        for s in resolve_order:
            for f in dist_futs[s]:
                dist, record = _unwrap_distill(f.result())
                dist_by_scenario[s].append(dist)
                if record is not None:
                    collect_records[s].append(record)
            mod_specs = [_fp(TrialSpec(kind="modulated", seed=seed, trial=t,
                                       runner=variant,
                                       replay=dist_by_scenario[s][t].replay,
                                       compensation=comp, obs=obs),
                             dist_stages[s][t] if pipeline is not None
                             else None)
                         for variant in variants for t in range(trials)]
            mod_futs[s] = exe.submit_all(mod_specs)

        # ---- reassembly ---------------------------------------------
        # Metrics records are pulled out of the sinks here, in a fixed
        # order (per scenario: collections, then live and modulated
        # variant-major; baseline last) — never in completion order.
        sweep = ValidationSweep(benchmark=runner.name,
                                workers_used=exe.effective_workers)

        def _take_records(runs: List[Dict]) -> List[Dict]:
            out = []
            for run in runs:
                record = run.pop("__obs__", None)
                if record is not None:
                    out.append(record)
            return out

        cursor = 0
        for s, scenario in enumerate(scenarios):
            sweep.trial_metrics.extend(collect_records[s])
            real_by_variant: List[List[Dict[str, float]]] = []
            mod_by_variant: List[List[Dict[str, float]]] = []
            for v, _variant in enumerate(variants):
                real_runs = [f.result()
                             for f in bench_futs[cursor:cursor + trials]]
                cursor += trials
                mod_runs = [f.result()
                            for f in mod_futs[s][v * trials:(v + 1) * trials]]
                sweep.trial_metrics.extend(_take_records(real_runs))
                sweep.trial_metrics.extend(_take_records(mod_runs))
                real_by_variant.append(real_runs)
                mod_by_variant.append(mod_runs)
            sweep.validations.append(_assemble_validation(
                scenario, runner, dist_by_scenario[s],
                real_by_variant, mod_by_variant))
        if baseline:
            out: Dict[str, Summary] = {}
            for variant in variants:
                runs = [f.result()
                        for f in bench_futs[cursor:cursor + trials]]
                cursor += trials
                sweep.trial_metrics.extend(_take_records(runs))
                for metric in variant.metrics:
                    out[metric] = Summary.of([r[metric] for r in runs])
            sweep.baseline = out
        if pipeline is not None:
            stats = pipeline.summary(since=cache_mark)
            sweep.cache_hits = stats["hits"]
            sweep.cache_misses = stats["misses"]
        return sweep
    finally:
        if owned:
            exe.shutdown()
