"""Validation trials on the unified execution runtime.

Every figure in the paper's evaluation is built from batches of
*independent, seeded* trials: four live runs, four trace-collection
traversals, four modulated runs per scenario/benchmark pair.  Each
trial builds its own world from named seeded RNG streams
(:mod:`repro.sim.rng`), so trials share no state and their results
depend only on ``(scenario, runner, seed, trial)`` — which makes them
embarrassingly parallel *and* guarantees that a parallel run is
bit-identical to a serial one.

This module is the *trial-specific glue* over :mod:`repro.runtime` —
all scheduling, worker-pool lifecycle, transport, chunking, retry and
rehydration machinery lives there.  What stays here:

* :class:`TrialSpec` — a picklable description of one trial (one
  registered job kind of the runtime);
* :func:`execute_trial` — the trial runner (module-level, resolved by
  reference in workers);
* :class:`TrialExecutor` — the
  :class:`~repro.runtime.scheduler.Scheduler` subclass that accepts
  trial specs (converting them to runtime jobs);
* :func:`run_validation` — the full multi-scenario sweep (the paper's
  Figures 6–8 protocol), collection and benchmark phases each fanned
  out across *all* scenarios at once;
* :func:`validate_scenario_parallel`, :func:`ethernet_baseline_parallel`,
  :func:`characterize_scenario_parallel` — parallel twins of the serial
  entry points in :mod:`repro.validation.harness` and
  :mod:`repro.validation.figures`.

The worker→parent data plane (``"envelope"`` store-mediated handoff
vs ``"pickle"`` through the pipe) and the backend choice (warm process
pool vs loopback-socket workers) are the scheduler's business; see
:mod:`repro.runtime.backends`.  Modulated trials receive their replay
by store reference (``replay_ref``) when the envelope plane is active
— the spec's ``slim_payload`` wire variant strips the materialized
replay, and each worker memoizes decoded replays, so a distilled
trace is shipped to each worker process at most once per sweep.

Determinism contract: for any ``workers`` value, any transport and
any backend (including every fallback path), results are
byte-identical to ``workers=1`` because every spec is executed by the
same pure function with the same arguments, the codec round-trip is
exact, and results are reassembled in submission order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.stats import Summary
from ..core.distill import DistillationResult, Distiller
from ..core.replay import ReplayTrace
from ..obs import ObsConfig
from ..obs.telemetry import SweepProgress, SweepTelemetry, span_begin, span_end
from ..pipeline import (
    CollectStage,
    CompensationStage,
    DistillStage,
    EthernetTrialStage,
    LiveTrialStage,
    ModulatedTrialStage,
    Pipeline,
    as_pipeline,
    codec,
    digest,
)
from ..runtime.backends import worker_store
from ..runtime.job import (
    Job,
    JobTransportError,
    ResultEnvelope,
    register_job_kind,
    runner_ref,
)
from ..runtime.scheduler import JobFuture, Scheduler, default_workers
from ..scenarios.base import Scenario
from .harness import (
    BenchmarkRunner,
    MetricComparison,
    ScenarioValidation,
    collect_trace,
    compensation_vb,
    distill_scenario_trace,
    run_ethernet_trial,
    run_live_trial,
    run_modulated_trial,
)

__all__ = [
    "TrialSpec",
    "TrialExecutor",
    "ResultEnvelope",
    "ValidationSweep",
    "execute_trial",
    "job_for_spec",
    "run_validation",
    "spec_fingerprint",
    "validate_scenario_parallel",
    "ethernet_baseline_parallel",
    "characterize_scenario_parallel",
    "default_workers",
]


# ======================================================================
# Trial specs and the worker entry point
# ======================================================================
@dataclass(frozen=True)
class TrialSpec:
    """A picklable description of one independent trial.

    ``kind`` selects the work:

    ``"distill"``
        Collect one trace-collection traversal of ``scenario`` and
        distill it; returns a :class:`DistillationResult`.  (Collection
        and distillation stay in the worker so the bulky raw records
        never cross the process boundary.)
    ``"live"``
        One live benchmark trial; returns the metric dict.
    ``"modulated"``
        One modulated benchmark trial over ``replay``; returns the
        metric dict.
    ``"ethernet"``
        One unmodulated Ethernet baseline trial; returns the metric
        dict.

    ``obs`` (an :class:`~repro.obs.ObsConfig`, itself a frozen
    primitive-only dataclass, so the spec stays picklable) requests a
    per-trial metrics record.  Benchmark trials return it inside the
    sink under ``"__obs__"``; distill trials, whose natural result is a
    :class:`DistillationResult`, return a
    ``{"__distill__": ..., "__obs__": ...}`` wrapper instead.

    ``replay_ref`` names the distill artifact holding this modulated
    trial's replay in the scheduler's shared store.  On the envelope
    data plane the materialized ``replay`` is stripped from the wire
    copy and workers resolve the reference (memoized per process);
    every other path uses ``replay`` directly.  The two are always
    byte-equivalent — the codec round-trip is exact — so the transport
    cannot change results.
    """

    kind: str
    seed: int
    trial: int
    scenario: Optional[Scenario] = None
    runner: Optional[BenchmarkRunner] = None
    replay: Optional[ReplayTrace] = None
    compensation: float = 0.0
    distiller: Optional[Distiller] = None
    name: str = ""
    obs: Optional[ObsConfig] = None
    # Pipeline-stage fingerprint of this trial's result.  Set by the
    # sweep when it runs with an artifact cache; ``None`` means the
    # trial is uncacheable and always executes.
    fingerprint: Optional[str] = None
    # Shared-store key of the upstream distill artifact (see above).
    replay_ref: Optional[str] = None
    # Sweep-scoped trace context: set on the wire copy when the sweep
    # runs with telemetry, so worker-side stage spans carry the sweep
    # they belong to.  Never part of any fingerprint (fingerprints are
    # computed from the pipeline stages, not this dataclass).
    sweep_id: Optional[str] = None

    def span_label(self) -> str:
        """How this trial appears in the sweep timeline."""
        if self.name:
            return self.name
        scenario = getattr(self.scenario, "name", None)
        parts = [p for p in (scenario, str(self.trial)) if p is not None]
        return ":".join(parts) if parts else str(self.trial)

    def cost_hint(self) -> float:
        """Rough relative wall-clock cost, for longest-first submission
        and chunking.

        Collection+distill trials simulate the scenario's full
        traversal with its cross traffic — seconds of wall clock.
        Live, modulated and Ethernet trials run one benchmark transfer
        (a far smaller event count; live worlds carry the scenario's
        cross traffic, modulated/Ethernet worlds are the small isolated
        pair).  The exact values only affect load balancing, never
        results.
        """
        if self.kind == "distill":
            scenario = self.scenario
            duration = getattr(scenario, "duration", 240.0)
            cross = getattr(scenario, "cross_laptops", 0)
            return duration * (1.0 + 2.0 * cross)
        if self.kind == "live":
            cross = getattr(self.scenario, "cross_laptops", 0)
            return 15.0 + 5.0 * cross
        if self.kind == "modulated":
            return 10.0
        return 5.0


class _ReplayResolveError(JobTransportError):
    """A ``replay_ref`` that the worker's shared store cannot supply.
    A :class:`JobTransportError`, so the chunk executor converts it to
    a transport failure and the parent re-executes with the
    materialized replay — a transport hiccup must never surface as a
    wrong result."""


# Decoded replays memoized per worker process (see TrialSpec.replay_ref).
_WORKER_REPLAY_CACHE: Dict[str, ReplayTrace] = {}


def _resolve_replay(ref: Optional[str]) -> ReplayTrace:
    """The replay trace behind a ``replay_ref``, memoized per worker."""
    if ref is None:
        raise _ReplayResolveError(
            "modulated spec carries neither replay nor replay_ref")
    replay = _WORKER_REPLAY_CACHE.get(ref)
    if replay is not None:
        return replay
    store = worker_store()
    if store is None:
        raise _ReplayResolveError("worker has no shared store")
    tok = span_begin()
    found, blob = store.raw_get(ref)
    if not found:
        raise _ReplayResolveError(
            f"distill artifact {ref[:12]}... missing from shared store")
    try:
        value = codec.decode_gz(blob)
    except codec.CodecError as exc:
        raise _ReplayResolveError(f"distill artifact {ref[:12]}...: {exc}")
    if isinstance(value, dict) and "__distill__" in value:
        value = value["__distill__"]
    replay = value.replay if isinstance(value, DistillationResult) else value
    _WORKER_REPLAY_CACHE[ref] = replay
    span_end(tok, "replay_resolve", ref[:12], nbytes=len(blob))
    return replay


def execute_trial(spec: TrialSpec):
    """Run one trial described by ``spec`` (the runtime's trial runner).

    Pure: the result depends only on the spec, so serial and parallel
    execution agree bit-for-bit.
    """
    if spec.kind == "distill":
        if spec.obs is not None:
            obs_out: Dict[str, Dict] = {}
            records = collect_trace(spec.scenario, spec.seed, spec.trial,
                                    obs=spec.obs, obs_out=obs_out)
            result = distill_scenario_trace(records, name=spec.name,
                                            distiller=spec.distiller)
            return {"__distill__": result,
                    "__obs__": obs_out.get("record")}
        records = collect_trace(spec.scenario, spec.seed, spec.trial)
        return distill_scenario_trace(records, name=spec.name,
                                      distiller=spec.distiller)
    if spec.kind == "live":
        return run_live_trial(spec.scenario, spec.runner, spec.seed,
                              spec.trial, obs=spec.obs)
    if spec.kind == "modulated":
        replay = spec.replay
        if replay is None:
            replay = _resolve_replay(spec.replay_ref)
        return run_modulated_trial(replay, spec.runner, spec.seed,
                                   spec.trial, spec.compensation,
                                   obs=spec.obs)
    if spec.kind == "ethernet":
        return run_ethernet_trial(spec.runner, spec.seed, spec.trial,
                                  obs=spec.obs)
    raise ValueError(f"unknown trial kind {spec.kind!r}")


_EXECUTE_TRIAL = runner_ref(execute_trial)
register_job_kind("trial", _EXECUTE_TRIAL)


def job_for_spec(spec: TrialSpec) -> Job:
    """The runtime job for one trial spec.

    ``slim_payload`` (the envelope-plane wire variant) strips a
    materialized replay whenever the spec also carries its store
    reference, so a distilled trace crosses the process boundary at
    most once per worker.
    """
    slim = None
    refs: tuple = ()
    if spec.replay is not None and spec.replay_ref is not None:
        slim = replace(spec, replay=None)
        # Multi-node backends push this store artifact to the
        # executing node (HAVE-deduplicated) before dispatch, so the
        # slim spec resolves there exactly as it does on one machine.
        refs = (spec.replay_ref,)
    return Job(kind=spec.kind, runner=_EXECUTE_TRIAL, payload=spec,
               label=spec.span_label(), fingerprint=spec.fingerprint,
               cost_hint=spec.cost_hint(), slim_payload=slim,
               input_refs=refs)


def spec_fingerprint(spec: TrialSpec,
                     distill_stage: Optional[DistillStage] = None
                     ) -> Optional[str]:
    """The pipeline-stage fingerprint of a trial spec's result.

    Live, modulated and Ethernet specs return exactly what the matching
    pipeline stage computes, so they share the stage's own fingerprint
    (and thus its cached artifacts).  A ``"distill"`` spec folds collect
    and distill into one worker task; without observability its result
    is the :class:`DistillStage` artifact, with observability it is the
    ``{"__distill__", "__obs__"}`` wrapper, which gets its own keyspace.

    ``distill_stage`` supplies the upstream ancestry for ``"modulated"``
    specs (the spec itself only carries the materialized replay).
    Returns ``None`` — never cache — when an input has no stable token.
    """
    try:
        if spec.kind == "distill":
            stage = DistillStage(
                CollectStage(spec.scenario, spec.seed, spec.trial,
                             obs=spec.obs),
                distiller=spec.distiller, label=spec.name)
            if spec.obs is None:
                return stage.fingerprint()
            return digest({"trial": "distill+obs",
                           "stage": stage.fingerprint()})
        if spec.kind == "live":
            return LiveTrialStage(spec.scenario, spec.runner, spec.seed,
                                  spec.trial, obs=spec.obs).fingerprint()
        if spec.kind == "modulated":
            if distill_stage is None:
                return None
            return ModulatedTrialStage(distill_stage, spec.runner,
                                       spec.seed, spec.trial,
                                       compensation=spec.compensation,
                                       obs=spec.obs).fingerprint()
        if spec.kind == "ethernet":
            return EthernetTrialStage(spec.runner, spec.seed, spec.trial,
                                      obs=spec.obs).fingerprint()
    except TypeError:
        return None
    return None


# ======================================================================
# The executor
# ======================================================================
class TrialExecutor(Scheduler):
    """Order-preserving trial execution — the runtime
    :class:`~repro.runtime.scheduler.Scheduler` specialized to accept
    :class:`TrialSpec` batches.

    ``submit`` / ``submit_all`` / ``map`` take trial specs and convert
    them to runtime jobs (:func:`job_for_spec`); the inherited
    ``submit_jobs`` / ``map_jobs`` remain available for generic jobs,
    so one warm backend can serve a validation sweep and, say, a
    golden regeneration in the same invocation.  Everything else —
    worker counts, transports, caching, fallback accounting — is the
    scheduler's contract; see its docstring.
    """

    def submit(self, spec: TrialSpec) -> JobFuture:
        """Queue one trial; its result is read with ``.result()``."""
        return self.submit_all([spec])[0]

    def submit_all(self, specs: Sequence[TrialSpec]) -> List[JobFuture]:
        """Submit a batch of trial specs: cache lookups first, then
        longest trials first, with cheap trials chunked.  The returned
        futures align index-for-index with ``specs``."""
        return self.submit_jobs([job_for_spec(spec) for spec in specs])

    def map(self, specs: Sequence[TrialSpec]) -> List:
        """Execute all specs; results align index-for-index with specs."""
        return [f.result() for f in self.submit_all(list(specs))]


def _executor_for(workers: Optional[int],
                  executor: Optional[TrialExecutor],
                  pipeline: Optional[Pipeline] = None,
                  transport: str = "auto",
                  hosts=None) -> tuple:
    """(executor, owns_it): reuse the caller's executor when given.

    A given ``pipeline`` is attached to the executor either way (a
    caller-supplied executor keeps its own pipeline if it already has
    one, and always keeps its own transport and hosts).
    """
    if executor is not None:
        if pipeline is not None and executor.pipeline is None:
            executor.pipeline = pipeline
            # The "pipeline" key makes this idempotent across reuse.
            executor.metrics.add_collector(pipeline.collector(),
                                           key="pipeline")
        return executor, False
    return TrialExecutor(workers=workers, pipeline=pipeline,
                         transport=transport, hosts=hosts), True


# ======================================================================
# Parallel twins of the harness entry points
# ======================================================================
def _distill_specs(scenario: Scenario, seed: int, trials: int,
                   distiller: Optional[Distiller],
                   obs: Optional[ObsConfig] = None) -> List[TrialSpec]:
    return [TrialSpec(kind="distill", seed=seed, trial=t, scenario=scenario,
                      distiller=distiller, name=f"{scenario.name}-{t}",
                      obs=obs)
            for t in range(trials)]


def _unwrap_distill(result) -> tuple:
    """(DistillationResult, metrics record | None) from a worker result."""
    if isinstance(result, dict) and "__distill__" in result:
        return result["__distill__"], result.get("__obs__")
    return result, None


def _assemble_validation(scenario: Scenario, runner: BenchmarkRunner,
                         distillations: List[DistillationResult],
                         real_by_variant: List[List[Dict[str, float]]],
                         mod_by_variant: List[List[Dict[str, float]]]
                         ) -> ScenarioValidation:
    """Fold per-trial metric dicts into the harness's result object.

    Mirrors :func:`repro.validation.harness.validate_scenario` exactly
    (same Summary construction, same comparison ordering) so rendered
    tables match the serial path byte-for-byte.
    """
    validation = ScenarioValidation(scenario=scenario.name,
                                    benchmark=runner.name,
                                    distillations=distillations)
    for variant, real_runs, modulated_runs in zip(runner.variants(),
                                                  real_by_variant,
                                                  mod_by_variant):
        for metric in variant.metrics:
            validation.comparisons[metric] = MetricComparison(
                metric=metric,
                real=Summary.of([r[metric] for r in real_runs]),
                modulated=Summary.of([m[metric] for m in modulated_runs]),
            )
    return validation


def validate_scenario_parallel(scenario: Scenario, runner: BenchmarkRunner,
                               seed: int = 0, trials: int = 4,
                               distiller: Optional[Distiller] = None,
                               compensation: Optional[float] = None,
                               workers: Optional[int] = None,
                               executor: Optional[TrialExecutor] = None,
                               cache=None) -> ScenarioValidation:
    """Parallel version of :func:`repro.validation.harness.validate_scenario`.

    Bit-identical to the serial implementation for the same arguments.
    """
    sweep = run_validation([scenario], runner, seed=seed, trials=trials,
                           distiller=distiller, compensation=compensation,
                           workers=workers, executor=executor, cache=cache)
    return sweep.validations[0]


def ethernet_baseline_parallel(runner: BenchmarkRunner, seed: int = 0,
                               trials: int = 4,
                               workers: Optional[int] = None,
                               executor: Optional[TrialExecutor] = None
                               ) -> Dict[str, Summary]:
    """Parallel version of :func:`repro.validation.harness.ethernet_baseline`."""
    exe, owned = _executor_for(workers, executor)
    try:
        variants = runner.variants()
        specs = [TrialSpec(kind="ethernet", seed=seed, trial=t,
                           runner=variant)
                 for variant in variants for t in range(trials)]
        results = exe.map(specs)
        out: Dict[str, Summary] = {}
        for v, variant in enumerate(variants):
            runs = results[v * trials:(v + 1) * trials]
            for metric in variant.metrics:
                out[metric] = Summary.of([r[metric] for r in runs])
        return out
    finally:
        if owned:
            exe.shutdown()


def characterize_scenario_parallel(scenario: Scenario, seed: int = 0,
                                   trials: int = 4,
                                   workers: Optional[int] = None,
                                   executor: Optional[TrialExecutor] = None,
                                   obs: Optional[ObsConfig] = None,
                                   trial_metrics: Optional[List[Dict]] = None):
    """Parallel version of :func:`repro.validation.figures.characterize_scenario`.

    With ``obs`` set, each traversal's metrics record is appended to
    the caller-supplied ``trial_metrics`` list in trial order.
    """
    from .figures import ScenarioCharacterization

    exe, owned = _executor_for(workers, executor)
    try:
        results = exe.map(_distill_specs(scenario, seed, trials, None, obs))
        distillations = []
        for result in results:
            dist, record = _unwrap_distill(result)
            distillations.append(dist)
            if record is not None and trial_metrics is not None:
                trial_metrics.append(record)
        return ScenarioCharacterization(scenario=scenario,
                                        distillations=distillations)
    finally:
        if owned:
            exe.shutdown()


# ======================================================================
# The full sweep
# ======================================================================
@dataclass
class ValidationSweep:
    """Everything one benchmark sweep produced, plus how it ran."""

    benchmark: str
    validations: List[ScenarioValidation] = field(default_factory=list)
    baseline: Optional[Dict[str, Summary]] = None
    workers_used: int = 1
    # One metrics record per trial (collect, live, modulated, ethernet)
    # when the sweep ran with an ObsConfig; empty otherwise.  Ordered
    # deterministically: per scenario, collections then live then
    # modulated (variant-major), then the baseline trials.
    trial_metrics: List[Dict] = field(default_factory=list)
    # Artifact-cache accounting when the sweep ran with ``cache=``:
    # how many trials were loaded versus recomputed (both zero means
    # the sweep ran uncached).
    cache_hits: int = 0
    cache_misses: int = 0
    # Data-plane accounting (see Scheduler.transport_stats): which
    # transport carried results, envelope/byte counters, and how often
    # — and why — execution fell back in-process.
    transport: Dict[str, Any] = field(default_factory=dict)
    fallback_reason: Optional[str] = None
    # Sweep-timeline rollup (SweepTelemetry.summary()) when the sweep
    # ran with telemetry; None otherwise.
    telemetry: Optional[Dict[str, Any]] = None

    def render(self, title: Optional[str] = None, caption: str = "") -> str:
        """The Figures 6–8 style table for this sweep.

        Byte-identical for any worker count and any transport — the
        determinism tests compare exactly this string across
        ``workers`` values.
        """
        from .figures import render_benchmark_table

        baseline = self.baseline
        if baseline is None:
            metrics = self.validations[0].comparisons if self.validations else {}
            baseline = {m: Summary(mean=float("nan"), std=float("nan"), n=0)
                        for m in metrics}
        return render_benchmark_table(
            self.validations, baseline,
            title=title or f"Validation sweep: {self.benchmark}",
            caption=caption)

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable sweep: per-scenario tables, cache and
        data-plane accounting (the CLI's ``--json`` surface)."""
        return {
            "benchmark": self.benchmark,
            "workers_used": self.workers_used,
            "scenarios": [
                {
                    "scenario": v.scenario,
                    "metrics": {
                        name: {
                            "real": c.real.as_dict(),
                            "modulated": c.modulated.as_dict(),
                            "sigma_distance": (
                                c.sigma_distance
                                if math.isfinite(c.sigma_distance)
                                else None),  # strict-JSON safe
                            "accurate": c.accurate,
                        }
                        for name, c in v.comparisons.items()
                    },
                }
                for v in self.validations
            ],
            "baseline": (
                {m: s.as_dict() for m, s in self.baseline.items()}
                if self.baseline is not None else None),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
            "transport": self.transport,
            "fallback_reason": self.fallback_reason,
            "telemetry": self.telemetry,
        }


def run_validation(scenarios: Union[Scenario, Sequence[Scenario]],
                   runner: BenchmarkRunner,
                   seed: int = 0, trials: int = 4,
                   seeds: int = 1,
                   distiller: Optional[Distiller] = None,
                   compensation: Optional[float] = None,
                   baseline: bool = False,
                   workers: Optional[int] = None,
                   executor: Optional[TrialExecutor] = None,
                   obs: Optional[ObsConfig] = None,
                   cache=None,
                   transport: str = "auto",
                   hosts=None,
                   telemetry: Optional[SweepTelemetry] = None,
                   progress: Optional[SweepProgress] = None
                   ) -> ValidationSweep:
    """Run the paper's validation protocol over one or more scenarios.

    The sweep is fully pipelined: every trial with no input dependency
    — all trace-collection traversals, all live trials, the Ethernet
    baseline — is queued up front (longest first, cheap trials
    chunked), and each scenario's modulated trials are queued the
    moment its distillations resolve, carrying the distilled replay by
    store reference when the envelope transport is active.  The
    backend therefore never idles at a phase barrier; cheap scenarios'
    modulated trials run while expensive collections are still in
    flight.

    The delay-compensation constant is measured once, in the parent,
    and shipped to every worker — exactly like the serial harness,
    which measures it once per process.

    ``cache`` (a directory path, :class:`~repro.pipeline.ArtifactStore`
    or :class:`~repro.pipeline.Pipeline`) turns on content-addressed
    artifact caching: every trial is fingerprinted through the pipeline
    stages and looked up before it is executed, so a warm rerun of the
    same sweep recomputes nothing.  With a disk cache the envelope
    transport writes worker artifacts straight into it.  ``transport``
    selects the backend and data plane (see
    :class:`~repro.runtime.scheduler.Scheduler`).  Results are
    identical with or without a cache, on every transport.

    ``seeds`` widens the sweep into a Monte Carlo workload: the full
    trial protocol repeats for ``seed, seed+1, ..., seed+seeds-1`` and
    every per-metric summary pools all ``seeds × trials`` runs.  The
    default ``seeds=1`` is byte-identical to the pre-``seeds``
    behavior; ``hosts`` (an ``"a:4,b:8"`` expression, hosts-file path
    or spec list) routes the sweep onto the multi-node fleet backend.
    """
    if isinstance(scenarios, Scenario):
        scenarios = [scenarios]
    # Accept scenario classes (ALL_SCENARIOS is a tuple of classes).
    scenarios = [s() if isinstance(s, type) else s for s in scenarios]
    seeds_n = max(1, int(seeds))
    # One entry per (seed, trial) execution of the protocol, seed-major
    # — with seeds=1 this is exactly the classic trial list, so all
    # slicing below degenerates to the original layout byte-for-byte.
    runs = [(sd, t) for sd in range(seed, seed + seeds_n)
            for t in range(trials)]
    n_runs = len(runs)
    pipeline = as_pipeline(cache)
    cache_mark = len(pipeline.executions) if pipeline is not None else 0
    comp_tok = telemetry.begin() if telemetry is not None else None
    if compensation is not None:
        comp = compensation
    elif pipeline is not None:
        comp = pipeline.run(CompensationStage())
    else:
        comp = compensation_vb()
    if telemetry is not None:
        telemetry.end(comp_tok, "compensation")
    exe, owned = _executor_for(workers, executor, pipeline, transport,
                               hosts)
    if telemetry is not None:
        exe.telemetry = telemetry
    if progress is not None:
        exe.progress = progress
    try:
        variants = runner.variants()
        n = len(scenarios)

        def _fp(spec: TrialSpec,
                dist_stage: Optional[DistillStage] = None) -> TrialSpec:
            if pipeline is None:
                return spec
            return replace(spec,
                           fingerprint=spec_fingerprint(spec, dist_stage))

        # Distill-stage ancestry per (scenario, trial): the modulated
        # specs chain these fingerprints so a changed scenario spec or
        # distiller invalidates exactly its downstream trials.
        dist_stages: List[List[DistillStage]] = []
        if pipeline is not None:
            for scenario in scenarios:
                dist_stages.append([
                    DistillStage(CollectStage(scenario, sd, t, obs=obs),
                                 distiller=distiller,
                                 label=f"{scenario.name}-{t}")
                    for sd, t in runs])

        # ---- queue every dependency-free trial -----------------------
        nodep_specs: List[TrialSpec] = []
        for scenario in scenarios:
            nodep_specs.extend(
                _fp(TrialSpec(kind="distill", seed=sd, trial=t,
                              scenario=scenario, distiller=distiller,
                              name=f"{scenario.name}-{t}", obs=obs))
                for sd, t in runs)
        for scenario in scenarios:
            for variant in variants:
                for sd, t in runs:
                    nodep_specs.append(_fp(TrialSpec(
                        kind="live", seed=sd, trial=t,
                        scenario=scenario, runner=variant, obs=obs)))
        if baseline:
            for variant in variants:
                for sd, t in runs:
                    nodep_specs.append(_fp(TrialSpec(
                        kind="ethernet", seed=sd, trial=t,
                        runner=variant, obs=obs)))
        nodep_futs = exe.submit_all(nodep_specs)
        dist_futs = [nodep_futs[s * n_runs:(s + 1) * n_runs]
                     for s in range(n)]
        bench_futs = nodep_futs[n * n_runs:]

        # ---- queue modulated trials as distillations resolve ---------
        # Cheapest scenarios first: their modulated trials slot in
        # behind the expensive collections still running.
        resolve_order = sorted(
            range(n), key=lambda s: dist_futs[s][0].job.cost_hint)
        dist_by_scenario: List[List[DistillationResult]] = [[] for _ in range(n)]
        collect_records: List[List[Dict]] = [[] for _ in range(n)]
        mod_futs: List[List[JobFuture]] = [[] for _ in range(n)]
        for s in resolve_order:
            for f in dist_futs[s]:
                dist, record = _unwrap_distill(f.result())
                dist_by_scenario[s].append(dist)
                if record is not None:
                    collect_records[s].append(record)
            mod_specs = [_fp(TrialSpec(kind="modulated", seed=sd, trial=t,
                                       runner=variant,
                                       replay=dist_by_scenario[s][r].replay,
                                       replay_ref=dist_futs[s][r].store_key,
                                       compensation=comp, obs=obs),
                             dist_stages[s][r] if pipeline is not None
                             else None)
                         for variant in variants
                         for r, (sd, t) in enumerate(runs)]
            mod_futs[s] = exe.submit_all(mod_specs)

        # ---- reassembly ---------------------------------------------
        # Metrics records are pulled out of the sinks here, in a fixed
        # order (per scenario: collections, then live and modulated
        # variant-major; baseline last) — never in completion order.
        sweep = ValidationSweep(benchmark=runner.name,
                                workers_used=exe.effective_workers)

        def _take_records(runs: List[Dict]) -> List[Dict]:
            out = []
            for run in runs:
                record = run.pop("__obs__", None)
                if record is not None:
                    out.append(record)
            return out

        cursor = 0
        for s, scenario in enumerate(scenarios):
            sweep.trial_metrics.extend(collect_records[s])
            real_by_variant: List[List[Dict[str, float]]] = []
            mod_by_variant: List[List[Dict[str, float]]] = []
            for v, _variant in enumerate(variants):
                real_runs = [f.result()
                             for f in bench_futs[cursor:cursor + n_runs]]
                cursor += n_runs
                mod_runs = [f.result()
                            for f in mod_futs[s][v * n_runs:(v + 1) * n_runs]]
                sweep.trial_metrics.extend(_take_records(real_runs))
                sweep.trial_metrics.extend(_take_records(mod_runs))
                real_by_variant.append(real_runs)
                mod_by_variant.append(mod_runs)
            sweep.validations.append(_assemble_validation(
                scenario, runner, dist_by_scenario[s],
                real_by_variant, mod_by_variant))
        if baseline:
            out: Dict[str, Summary] = {}
            for variant in variants:
                base_runs = [f.result()
                             for f in bench_futs[cursor:cursor + n_runs]]
                cursor += n_runs
                sweep.trial_metrics.extend(_take_records(base_runs))
                for metric in variant.metrics:
                    out[metric] = Summary.of(
                        [r[metric] for r in base_runs])
            sweep.baseline = out
        if pipeline is not None:
            stats = pipeline.summary(since=cache_mark)
            sweep.cache_hits = stats["hits"]
            sweep.cache_misses = stats["misses"]
        sweep.workers_used = exe.effective_workers
        sweep.transport = exe.transport_stats()
        sweep.fallback_reason = exe.fallback_reason
        if telemetry is not None:
            sweep.telemetry = telemetry.summary()
        return sweep
    finally:
        if owned:
            exe.shutdown()
        else:
            # A caller-supplied executor outlives this sweep; detach
            # the sweep-scope hooks so a later sweep starts clean.
            if telemetry is not None and exe.telemetry is telemetry:
                exe.telemetry = None
            if progress is not None and exe.progress is progress:
                exe.progress = None
