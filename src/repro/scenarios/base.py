"""Scenario infrastructure.

A scenario stands in for a physical traversal at CMU: it defines the
time-varying channel the mobile laptop experiences (signal level, loss,
usable bandwidth, media-access latency — per direction, so live
asymmetry is expressible), the checkpoint labels the paper's Figures
2–4 use on their X axes, and how many interfering laptops share the
medium (Chatterbox).

Per-trial variation: every trial draws its own control points through a
trial-specific RNG stream, so the four trials of a scenario differ the
way repeated walks of the same path differ — that spread is exactly
what the range bars in Figures 2–5 show.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hosts.worlds import LiveWorld
from ..net.wavelan import ChannelConditions, ChannelProfile, PiecewiseProfile
from ..sim.rng import derive_seed

CONTROL_POINT_SPACING = 2.0  # seconds between profile control points


@dataclass(frozen=True)
class Checkpoint:
    """A labelled location along the path (fraction of the traversal)."""

    label: str
    fraction: float


class Scenario:
    """Base class: subclasses implement :meth:`base_conditions`."""

    name: str = "scenario"
    duration: float = 240.0
    checkpoints: Tuple[Checkpoint, ...] = ()
    cross_laptops: int = 0
    has_motion: bool = True

    def base_conditions(self, u: float,
                        rng: random.Random) -> ChannelConditions:
        """Channel conditions at normalized position ``u`` in [0, 1].

        ``rng`` is trial-specific; subclasses draw their jitter and
        spikes from it so trials vary realistically.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def profile(self, seed: int, trial: int) -> ChannelProfile:
        """The channel profile one trial of this scenario experiences."""
        rng = random.Random(derive_seed(seed, f"{self.name}:trial{trial}"))
        points = []
        t = 0.0
        while t <= self.duration + CONTROL_POINT_SPACING:
            u = min(1.0, t / self.duration)
            points.append((t, self.base_conditions(u, rng)))
            t += CONTROL_POINT_SPACING
        return PiecewiseProfile(points)

    def make_live_world(self, seed: int, trial: int,
                        **world_kwargs) -> LiveWorld:
        """A live WaveLAN world configured for one trial."""
        profile = self.profile(seed, trial)
        return LiveWorld(profile=profile,
                         seed=derive_seed(seed, f"{self.name}:world{trial}"),
                         cross_laptops=self.cross_laptops,
                         **world_kwargs)

    # ------------------------------------------------------------------
    def checkpoint_for_fraction(self, u: float) -> str:
        """The nearest checkpoint label at or before fraction ``u``."""
        label = self.checkpoints[0].label if self.checkpoints else ""
        for cp in self.checkpoints:
            if cp.fraction <= u:
                label = cp.label
            else:
                break
        return label

    def cache_token(self) -> dict:
        """Stable identity used in pipeline fingerprints.

        Spec-based scenarios hash their full spec; class-based scenarios
        (like roaming) must override this to include every constructor
        parameter that affects behaviour.
        """
        return {
            "type": type(self).__qualname__,
            "name": self.name,
            "duration": self.duration,
            "checkpoints": [[cp.label, cp.fraction]
                            for cp in self.checkpoints],
            "cross_laptops": self.cross_laptops,
            "has_motion": self.has_motion,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Scenario {self.name} {self.duration:.0f}s>"


def jittered(rng: random.Random, value: float, rel: float = 0.15,
             lo: float = 0.0, hi: Optional[float] = None) -> float:
    """Gaussian jitter of ``value`` by relative sigma ``rel``, clamped."""
    out = rng.gauss(value, abs(value) * rel)
    if hi is not None:
        out = min(hi, out)
    return max(lo, out)


def spike(rng: random.Random, probability: float, magnitude: float) -> float:
    """Occasionally return ``magnitude`` (scaled), else 0."""
    if rng.random() < probability:
        return magnitude * rng.uniform(0.6, 1.4)
    return 0.0
