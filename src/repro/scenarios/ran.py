"""ERRANT-style statistical RAN profiles.

ERRANT showed that realistic cellular channels can be *sampled* from
measured per-technology distributions instead of replayed from one
trace.  A :class:`RanFamily` does the spec-level equivalent: each
channel field is a single full-span :class:`FieldPiece` whose value is
redrawn i.i.d. from a parameterized distribution at every 2-second
control point — a stationary statistical channel rather than a
scripted traversal.

``RAN_PRESETS`` carries three technology envelopes ("3g", "4g", "5g")
tuned to the emulator's field units (signal in dB-ish units matching
the paper scenarios, loss as a probability, bandwidth as a fraction of
the 2 Mb/s WaveLAN nominal, media-access latency in seconds).  A
family picks a technology and may override any field's distribution
with an explicit :class:`FieldDist`.

Draw distributions come from the spec layer's ``FieldPiece.dist``:
``gauss`` (symmetric), ``lognormal`` (heavy right tail — the natural
shape for latency and loss), ``uniform``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from .base import Checkpoint
from .registry import register
from .spec import (
    FIELD_NAMES,
    PIECE_DISTS,
    FieldPiece,
    LossModel,
    ScenarioSpec,
    SpecError,
    SpecScenario,
)

RAN_TECHNOLOGIES = ("3g", "4g", "5g")


@dataclass(frozen=True)
class FieldDist:
    """One field's stationary draw distribution.

    ``spread`` is the relative sigma handed to the piece (``rel``):
    Gaussian sigma for ``gauss``, log-sigma for ``lognormal``,
    half-width fraction for ``uniform``.  Draws clamp to ``[lo, hi]``.
    """

    dist: str = "gauss"
    center: float = 0.0
    spread: float = 0.15
    lo: float = 0.0
    hi: Optional[float] = None

    def validate(self, where: str) -> "FieldDist":
        if self.dist not in PIECE_DISTS:
            raise SpecError(f"{where}: unknown dist {self.dist!r}; "
                            f"choose from {PIECE_DISTS}")
        if self.dist == "lognormal" and self.center < 0:
            raise SpecError(f"{where}: lognormal center must be "
                            f"non-negative, got {self.center}")
        if self.spread < 0:
            raise SpecError(f"{where}: spread cannot be negative")
        if self.hi is not None and self.hi < self.lo:
            raise SpecError(f"{where}: hi {self.hi} below lo {self.lo}")
        return self

    def piece(self) -> FieldPiece:
        """The single full-span piece realizing this distribution."""
        return FieldPiece(end=1.0, base=self.center, rel=self.spread,
                          lo=self.lo, hi=self.hi, dist=self.dist)

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"dist": self.dist, "center": self.center,
                               "spread": self.spread, "lo": self.lo}
        if self.hi is not None:
            doc["hi"] = self.hi
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str) -> "FieldDist":
        if not isinstance(data, Mapping):
            raise SpecError(f"{where}: field distribution must be a "
                            f"table, got {type(data).__name__}")
        unknown = set(data) - {"dist", "center", "spread", "lo", "hi"}
        if unknown:
            raise SpecError(f"{where}: unknown keys {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        if "dist" in data:
            kwargs["dist"] = str(data["dist"])
        for key in ("center", "spread", "lo", "hi"):
            if key in data and data[key] is not None:
                kwargs[key] = float(data[key])
        return cls(**kwargs).validate(where)


# Technology envelopes: median-ish centers with per-technology tails.
RAN_PRESETS: Dict[str, Dict[str, FieldDist]] = {
    "3g": {
        "signal": FieldDist("gauss", center=12.0, spread=0.25, lo=1.0,
                            hi=22.0),
        "loss": FieldDist("lognormal", center=0.02, spread=0.8,
                          hi=0.30),
        "bandwidth": FieldDist("uniform", center=0.35, spread=0.30,
                               lo=0.12, hi=0.60),
        "access": FieldDist("lognormal", center=8e-3, spread=0.5,
                            lo=1e-3, hi=60e-3),
    },
    "4g": {
        "signal": FieldDist("gauss", center=18.0, spread=0.15, lo=3.0,
                            hi=25.0),
        "loss": FieldDist("lognormal", center=0.008, spread=0.7,
                          hi=0.20),
        "bandwidth": FieldDist("uniform", center=0.60, spread=0.20,
                               lo=0.30, hi=0.85),
        "access": FieldDist("lognormal", center=2.5e-3, spread=0.5,
                            lo=0.5e-3, hi=30e-3),
    },
    "5g": {
        "signal": FieldDist("gauss", center=23.0, spread=0.10, lo=6.0,
                            hi=28.0),
        "loss": FieldDist("lognormal", center=0.003, spread=0.6,
                          hi=0.10),
        "bandwidth": FieldDist("uniform", center=0.80, spread=0.12,
                               lo=0.50, hi=0.95),
        "access": FieldDist("lognormal", center=0.8e-3, spread=0.4,
                            lo=0.2e-3, hi=10e-3),
    },
}


@dataclass(frozen=True)
class RanFamily:
    """A stationary statistical RAN channel: preset plus overrides."""

    kind = "ran"

    technology: str = "4g"
    signal: Optional[FieldDist] = None
    loss: Optional[FieldDist] = None
    bandwidth: Optional[FieldDist] = None
    access: Optional[FieldDist] = None

    def validate(self) -> "RanFamily":
        if self.technology not in RAN_TECHNOLOGIES:
            raise SpecError(f"RAN technology {self.technology!r} unknown; "
                            f"choose from {RAN_TECHNOLOGIES}")
        for fname in FIELD_NAMES:
            override = getattr(self, fname)
            if override is None:
                continue
            if not isinstance(override, FieldDist):
                raise SpecError(f"RAN field {fname!r} override must be a "
                                f"FieldDist, got "
                                f"{type(override).__name__}")
            override.validate(f"ran field {fname!r}")
        return self

    def field_dist(self, fname: str) -> FieldDist:
        override = getattr(self, fname)
        return override if override is not None \
            else RAN_PRESETS[self.technology][fname]

    def compile_fields(self) -> Dict[str, Tuple[FieldPiece, ...]]:
        """One full-span statistical piece per field — pure, no RNG."""
        self.validate()
        return {fname: (self.field_dist(fname).piece(),)
                for fname in FIELD_NAMES}

    # -- serialization -------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"kind": self.kind,
                               "technology": self.technology}
        for fname in FIELD_NAMES:
            override = getattr(self, fname)
            if override is not None:
                doc[fname] = override.as_dict()
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str) -> "RanFamily":
        unknown = set(data) - {"kind", "technology"} - set(FIELD_NAMES)
        if unknown:
            raise SpecError(f"{where}: unknown RAN keys "
                            f"{sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        if "technology" in data:
            kwargs["technology"] = str(data["technology"])
        for fname in FIELD_NAMES:
            if fname in data:
                kwargs[fname] = FieldDist.from_dict(
                    data[fname], f"{where}.{fname}")
        return cls(**kwargs).validate()


# ======================================================================
# Builtins: a congested 3G cell and a healthy 4G cell
# ======================================================================
def _ran_spec(name: str, family: RanFamily, description: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        duration=120.0,
        checkpoints=(Checkpoint("attach", 0.0), Checkpoint("steady", 0.5)),
        has_motion=False,
        description=description,
        fields=family.compile_fields(),
        loss_model=LossModel(up_scale=1.1, up_cap=0.9, down_scale=0.95),
        family=family,
    )


RAN3G_FAMILY = RanFamily(technology="3g")
RAN3G_SPEC = _ran_spec("ran3g", RAN3G_FAMILY,
                       "Stationary 3G cell sampled from statistical "
                       "distributions (ERRANT-style).")

RAN4G_FAMILY = RanFamily(technology="4g")
RAN4G_SPEC = _ran_spec("ran4g", RAN4G_FAMILY,
                       "Stationary 4G cell sampled from statistical "
                       "distributions (ERRANT-style).")


@register
class Ran3gScenario(SpecScenario):
    """Congested 3G cell drawn from statistical distributions."""

    spec = RAN3G_SPEC


@register
class Ran4gScenario(SpecScenario):
    """Healthy 4G cell drawn from statistical distributions."""

    spec = RAN4G_SPEC
