"""Mobility-derived profiles: waypoints through a path-loss model.

Instead of hand-drawing signal curves, a :class:`MobilityFamily`
describes *movement*: a list of ``(u, x, y)`` waypoints (traversal
fraction, metres east/north of the base station) that the mobile host
walks through.  At compile time each traversal sample is mapped
through a radio path-loss model — log-distance or two-ray ground
reflection — to a link margin, and the margin to the four channel
fields (signal, loss, bandwidth, access latency) the emulator drives.

Shadowing stays *stochastic*: the compiled pieces carry a relative
jitter sigma derived from ``shadowing_db``, so every trial draws its
own shadow fades from the per-trial RNG stream exactly like the
hand-written scenarios do.  Compilation itself is a pure function of
the family parameters — no RNG — which is what lets a family-backed
spec round-trip losslessly through TOML/JSON (the loader recompiles
the identical pieces).

Path-loss models
----------------

``log_distance``
    ``PL(d) = ref_loss_db + 10 * n * log10(d / d0)`` — the classic
    indoor model; ``n`` (``path_loss_exponent``) around 3 for
    obstructed office buildings.

``two_ray``
    ``PL(d) = max(free-space, 40 log10 d - 20 log10(ht * hr))`` —
    free-space up close, fourth-power distance decay beyond the
    crossover, as for outdoor shuttle routes.  Taking the max of the
    two regimes keeps the loss monotone in distance (the property
    suite pins this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from .base import Checkpoint
from .registry import register
from .spec import FieldPiece, LossModel, ScenarioSpec, SpecError, SpecScenario

MOBILITY_MODELS = ("log_distance", "two_ray")

# Link-quality envelope: what a saturated (margin >= good_margin_db)
# link looks like, and the floor a dead link degrades to.  Chosen to
# span the same ranges the hand-written paper scenarios use.
_SIGNAL_FLOOR_DB = 2.0
_SIGNAL_CEIL_DB = 25.0
_LOSS_CEILING = 0.35
_BANDWIDTH_FLOOR = 0.15
_BANDWIDTH_CEIL = 0.78
_ACCESS_FLOOR_S = 0.3e-3
_ACCESS_CEIL_S = 80e-3


def path_loss_log_distance(distance_m: float, ref_loss_db: float,
                           ref_distance_m: float,
                           exponent: float) -> float:
    """Log-distance path loss in dB; clamped to the reference distance."""
    d = max(distance_m, ref_distance_m)
    return ref_loss_db + 10.0 * exponent * math.log10(d / ref_distance_m)


def path_loss_two_ray(distance_m: float, ref_loss_db: float,
                      ref_distance_m: float, base_antenna_m: float,
                      mobile_antenna_m: float) -> float:
    """Two-ray ground-reflection path loss in dB.

    Free-space (20 dB/decade) near the transmitter, ground-bounce
    (40 dB/decade) far away; the max of the two is monotone
    nondecreasing in distance.
    """
    d = max(distance_m, ref_distance_m)
    free_space = ref_loss_db + 20.0 * math.log10(d / ref_distance_m)
    ground = (40.0 * math.log10(d)
              - 20.0 * math.log10(base_antenna_m * mobile_antenna_m))
    return max(free_space, ground)


def position_at(waypoints: Tuple[Tuple[float, float, float], ...],
                u: float) -> Tuple[float, float]:
    """Piecewise-linear ``(x, y)`` along the waypoint path at ``u``."""
    if u <= waypoints[0][0]:
        return waypoints[0][1], waypoints[0][2]
    for (u0, x0, y0), (u1, x1, y1) in zip(waypoints, waypoints[1:]):
        if u <= u1:
            span = u1 - u0
            frac = (u - u0) / span if span > 0 else 1.0
            return x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac
    return waypoints[-1][1], waypoints[-1][2]


def link_quality(margin_db: float,
                 good_margin_db: float) -> Tuple[float, float, float, float]:
    """Map a link margin to ``(signal_db, loss, bandwidth, access_s)``.

    ``q = clamp(margin / good_margin, 0, 1)`` interpolates between a
    dead link and a saturated one; loss and access latency degrade
    quadratically/cubically so a healthy link is nearly clean.  Every
    output is bounded regardless of the margin's sign or magnitude
    (the property suite asserts the bounds).
    """
    q = min(1.0, max(0.0, margin_db / good_margin_db))
    signal = _SIGNAL_FLOOR_DB + (_SIGNAL_CEIL_DB - _SIGNAL_FLOOR_DB) * q
    loss = _LOSS_CEILING * (1.0 - q) ** 2
    bandwidth = _BANDWIDTH_FLOOR + (_BANDWIDTH_CEIL - _BANDWIDTH_FLOOR) * q
    access = _ACCESS_FLOOR_S + (_ACCESS_CEIL_S - _ACCESS_FLOOR_S) \
        * (1.0 - q) ** 3
    return signal, loss, bandwidth, access


@dataclass(frozen=True)
class MobilityFamily:
    """Channel fields derived from waypoint movement through path loss.

    ``waypoints`` are ``(u, x, y)`` tuples — traversal fraction and
    metres from the base station (at the origin); fractions must be
    nondecreasing, starting at 0 and ending at 1.
    """

    kind = "mobility"

    waypoints: Tuple[Tuple[float, float, float], ...]
    model: str = "log_distance"
    tx_power_dbm: float = 18.0
    ref_loss_db: float = 40.0
    ref_distance_m: float = 1.0
    path_loss_exponent: float = 3.0
    base_antenna_m: float = 10.0
    mobile_antenna_m: float = 1.5
    sensitivity_dbm: float = -90.0
    shadowing_db: float = 3.0
    good_margin_db: float = 22.0
    samples: int = 48

    # -- validation ----------------------------------------------------
    def validate(self) -> "MobilityFamily":
        if self.model not in MOBILITY_MODELS:
            raise SpecError(f"mobility model {self.model!r} unknown; "
                            f"choose from {MOBILITY_MODELS}")
        if len(self.waypoints) < 2:
            raise SpecError("mobility family needs at least 2 waypoints")
        prev = None
        for i, wp in enumerate(self.waypoints):
            if len(wp) != 3:
                raise SpecError(f"waypoint {i} must be (u, x, y), "
                                f"got {wp!r}")
            u = wp[0]
            if not 0.0 <= u <= 1.0:
                raise SpecError(f"waypoint {i}: fraction {u} outside "
                                f"[0, 1]")
            if prev is not None and u < prev:
                raise SpecError("waypoint fractions must be nondecreasing")
            prev = u
        if self.waypoints[0][0] != 0.0 or self.waypoints[-1][0] != 1.0:
            raise SpecError("waypoints must start at u=0 and end at u=1")
        if self.ref_distance_m <= 0:
            raise SpecError("ref_distance_m must be positive")
        if self.path_loss_exponent <= 0:
            raise SpecError("path_loss_exponent must be positive")
        if self.base_antenna_m <= 0 or self.mobile_antenna_m <= 0:
            raise SpecError("antenna heights must be positive")
        if not 0.0 <= self.shadowing_db <= 12.0:
            raise SpecError(f"shadowing_db must lie in [0, 12], "
                            f"got {self.shadowing_db}")
        if self.good_margin_db <= 0:
            raise SpecError("good_margin_db must be positive")
        if not 4 <= self.samples <= 512:
            raise SpecError(f"samples must lie in [4, 512], "
                            f"got {self.samples}")
        return self

    # -- the compiler --------------------------------------------------
    def path_loss(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` under the chosen model."""
        if self.model == "two_ray":
            return path_loss_two_ray(distance_m, self.ref_loss_db,
                                     self.ref_distance_m,
                                     self.base_antenna_m,
                                     self.mobile_antenna_m)
        return path_loss_log_distance(distance_m, self.ref_loss_db,
                                      self.ref_distance_m,
                                      self.path_loss_exponent)

    def margin_at(self, u: float) -> float:
        """Link margin (dB above sensitivity) at traversal fraction."""
        x, y = position_at(self.waypoints, u)
        distance = math.hypot(x, y)
        return self.tx_power_dbm - self.path_loss(distance) \
            - self.sensitivity_dbm

    def compile_fields(self) -> Dict[str, Tuple[FieldPiece, ...]]:
        """Derive the four piecewise channel fields — pure, no RNG."""
        self.validate()
        rows = []
        for i in range(self.samples):
            end = 1.0 if i == self.samples - 1 else (i + 1) / self.samples
            margin = self.margin_at((i + 0.5) / self.samples)
            rows.append((end, link_quality(margin, self.good_margin_db)))
        fields: Dict[str, List[FieldPiece]] = {
            "signal": [], "loss": [], "bandwidth": [], "access": []}
        for end, (signal, loss, bandwidth, access) in rows:
            # Shadow fading: sigma of shadowing_db in signal units;
            # jittered() takes a relative sigma, so divide it out.
            sig_rel = min(0.6, self.shadowing_db / max(signal, 1.0))
            shade = self.shadowing_db / 8.0  # 0..1-ish fade coupling
            fields["signal"].append(FieldPiece(
                end=end, base=signal, rel=sig_rel, lo=0.5,
                hi=_SIGNAL_CEIL_DB + 3.0 * self.shadowing_db))
            fields["loss"].append(FieldPiece(
                end=end, base=loss, rel=min(0.8, 0.25 + shade * 0.25),
                hi=min(0.6, _LOSS_CEILING + 0.1)))
            fields["bandwidth"].append(FieldPiece(
                end=end, base=bandwidth, rel=0.06 + 0.02 * shade,
                lo=0.10, hi=0.92))
            fields["access"].append(FieldPiece(
                end=end, base=access, rel=0.3, lo=0.1e-3,
                hi=_ACCESS_CEIL_S * 2.0))
        return {name: tuple(pieces) for name, pieces in fields.items()}

    # -- serialization -------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "waypoints": [[u, x, y] for u, x, y in self.waypoints],
            "model": self.model,
            "tx_power_dbm": self.tx_power_dbm,
            "ref_loss_db": self.ref_loss_db,
            "ref_distance_m": self.ref_distance_m,
            "path_loss_exponent": self.path_loss_exponent,
            "base_antenna_m": self.base_antenna_m,
            "mobile_antenna_m": self.mobile_antenna_m,
            "sensitivity_dbm": self.sensitivity_dbm,
            "shadowing_db": self.shadowing_db,
            "good_margin_db": self.good_margin_db,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  where: str) -> "MobilityFamily":
        known = {"kind", "waypoints", "model", "tx_power_dbm",
                 "ref_loss_db", "ref_distance_m", "path_loss_exponent",
                 "base_antenna_m", "mobile_antenna_m", "sensitivity_dbm",
                 "shadowing_db", "good_margin_db", "samples"}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"{where}: unknown mobility keys "
                            f"{sorted(unknown)}")
        if "waypoints" not in data:
            raise SpecError(f"{where}: mobility family needs 'waypoints'")
        raw_wps = data["waypoints"]
        if not isinstance(raw_wps, (list, tuple)):
            raise SpecError(f"{where}: waypoints must be a list of "
                            f"[u, x, y] triples")
        waypoints = []
        for i, wp in enumerate(raw_wps):
            if not isinstance(wp, (list, tuple)) or len(wp) != 3:
                raise SpecError(f"{where}: waypoint {i} must be a "
                                f"[u, x, y] triple, got {wp!r}")
            waypoints.append(tuple(float(v) for v in wp))
        kwargs: Dict[str, Any] = {"waypoints": tuple(waypoints)}
        if "model" in data:
            kwargs["model"] = str(data["model"])
        for key in ("tx_power_dbm", "ref_loss_db", "ref_distance_m",
                    "path_loss_exponent", "base_antenna_m",
                    "mobile_antenna_m", "sensitivity_dbm", "shadowing_db",
                    "good_margin_db"):
            if key in data:
                kwargs[key] = float(data[key])
        if "samples" in data:
            kwargs["samples"] = int(data["samples"])
        return cls(**kwargs).validate()


# ======================================================================
# Builtin: the campus shuttle loop (two-ray outdoor drive)
# ======================================================================
SHUTTLE_FAMILY = MobilityFamily(
    # A loop past the base station: approach from 600 m out, swing by
    # at 40 m, idle at a stop, then pull away to 700 m.
    waypoints=(
        (0.0, -600.0, 80.0),
        (0.25, -180.0, 50.0),
        (0.45, -40.0, 20.0),
        (0.55, 30.0, 15.0),    # the shuttle stop next to the AP
        (0.70, 220.0, 60.0),
        (1.0, 700.0, 120.0),
    ),
    model="two_ray",
    tx_power_dbm=18.0,
    ref_loss_db=32.0,
    path_loss_exponent=2.8,
    base_antenna_m=12.0,
    mobile_antenna_m=2.0,
    # -80 dBm sensitivity keeps the link margin unsaturated at the
    # loop's far ends (~600-700 m), so the compiled curve shows the
    # approach / drive-by / departure structure instead of pegging at
    # the signal ceiling for the whole traversal.
    sensitivity_dbm=-80.0,
    shadowing_db=4.0,
    samples=60,
)

SHUTTLE_SPEC = ScenarioSpec(
    name="shuttle",
    duration=180.0,
    checkpoints=(
        Checkpoint("depot", 0.0),
        Checkpoint("approach", 0.25),
        Checkpoint("stop", 0.50),
        Checkpoint("depart", 0.70),
        Checkpoint("loop-end", 0.96),
    ),
    description="Campus shuttle loop past the access point, two-ray "
                "outdoor path loss.",
    fields=SHUTTLE_FAMILY.compile_fields(),
    loss_model=LossModel(up_scale=1.15, up_cap=0.9, down_scale=0.9),
    family=SHUTTLE_FAMILY,
)


@register
class ShuttleScenario(SpecScenario):
    """Campus shuttle loop derived from waypoint mobility."""

    spec = SHUTTLE_SPEC
