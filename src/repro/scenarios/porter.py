"""Porter: inter-building travel (§4.1.1, Figure 2).

Wean Hall lobby (x0) → outdoor Wean–Porter patio (x1–x3) → through
Porter Hall (x4–x6).  Signal is highly variable in the lobby, improves
steadily across the patio, then falls off inside Porter Hall, turning
highly variable near x5.  Latency sits between 1.5 and 10 ms with
occasional spikes toward 100 ms; bandwidth is typically 1.4–1.6 Mb/s
with dips toward 900 Kb/s; loss stays below ~10 %, worst on the early
patio and at the end of Porter Hall.
"""

from __future__ import annotations

import random

from ..net.wavelan import ChannelConditions
from .base import Checkpoint, Scenario, jittered, spike


class PorterScenario(Scenario):
    """Inter-building walk from Wean Hall to and through Porter Hall."""

    name = "porter"
    duration = 240.0
    checkpoints = tuple(
        Checkpoint(f"x{i}", frac)
        for i, frac in enumerate((0.0, 0.12, 0.26, 0.40, 0.55, 0.75, 0.92))
    )

    def base_conditions(self, u: float,
                        rng: random.Random) -> ChannelConditions:
        # --- signal level -------------------------------------------------
        if u < 0.12:                      # lobby: highly variable
            signal = jittered(rng, 14.0, rel=0.40)
        elif u < 0.40:                    # patio: steady improvement
            ramp = (u - 0.12) / 0.28
            signal = jittered(rng, 14.0 + 9.0 * ramp, rel=0.12)
        elif u < 0.75:                    # Porter Hall: falling off
            ramp = (u - 0.40) / 0.35
            signal = jittered(rng, 23.0 - 10.0 * ramp, rel=0.15)
        else:                             # near x5-x6: variable again
            signal = jittered(rng, 11.0, rel=0.45)

        # --- loss: worst early patio and end of hall ----------------------
        if u < 0.25:
            base_loss = 0.010
        elif u > 0.80:
            base_loss = 0.012
        else:
            base_loss = 0.004
        loss = jittered(rng, base_loss, rel=0.5, hi=0.04)

        # --- bandwidth 1.4-1.6 Mb/s, dips to ~0.9 -------------------------
        bw = jittered(rng, 0.70, rel=0.04, lo=0.35, hi=0.80)
        if rng.random() < 0.05:           # occasional deep dip
            bw = rng.uniform(0.42, 0.55)

        # --- latency: 1.5-10 ms typical, spikes toward 100 ms -------------
        access = jittered(rng, 0.35e-3, rel=0.5, lo=0.05e-3)
        access += spike(rng, 0.025, 8e-3)

        return ChannelConditions(
            signal_level=signal,
            loss_prob_up=loss * 1.25,     # mild live asymmetry (§5.3)
            loss_prob_down=loss * 0.8,
            bandwidth_factor=bw,
            access_latency_mean=access,
        )
