"""Porter: inter-building travel (§4.1.1, Figure 2).

Wean Hall lobby (x0) → outdoor Wean–Porter patio (x1–x3) → through
Porter Hall (x4–x6).  Signal is highly variable in the lobby, improves
steadily across the patio, then falls off inside Porter Hall, turning
highly variable near x5.  Latency sits between 1.5 and 10 ms with
occasional spikes toward 100 ms; bandwidth is typically 1.4–1.6 Mb/s
with dips toward 900 Kb/s; loss stays below ~10 %, worst on the early
patio and at the end of Porter Hall.

The traversal is pure data: ``PORTER_SPEC`` below.  Ramp ``span``
values are pinned to the paper-era literals (e.g. the patio ramp's
0.28) so the spec replays bit-identically to the original hand-written
profile — the golden-master corpus checks exactly that.
"""

from __future__ import annotations

from .base import Checkpoint
from .registry import register
from .spec import FieldPiece, LossModel, ScenarioSpec, SpecScenario

PORTER_SPEC = ScenarioSpec(
    name="porter",
    duration=240.0,
    checkpoints=tuple(
        Checkpoint(f"x{i}", frac)
        for i, frac in enumerate((0.0, 0.12, 0.26, 0.40, 0.55, 0.75, 0.92))
    ),
    description="Inter-building walk from Wean Hall to and through "
                "Porter Hall.",
    fields={
        # Signal: variable lobby, steady patio improvement, falling off
        # through Porter Hall, variable again near x5-x6.
        "signal": (
            FieldPiece(end=0.12, base=14.0, rel=0.40),
            FieldPiece(end=0.40, base=14.0, slope=9.0, span=0.28, rel=0.12),
            FieldPiece(end=0.75, base=23.0, slope=-10.0, span=0.35,
                       rel=0.15),
            FieldPiece(end=1.0, base=11.0, rel=0.45),
        ),
        # Loss: worst on the early patio and at the end of the hall.
        "loss": (
            FieldPiece(end=0.25, base=0.010, rel=0.5, hi=0.04),
            FieldPiece(end=0.80, base=0.004, rel=0.5, hi=0.04,
                       inclusive=True),
            FieldPiece(end=1.0, base=0.012, rel=0.5, hi=0.04),
        ),
        # Bandwidth 1.4-1.6 Mb/s with occasional deep dips toward 900 Kb/s.
        "bandwidth": (
            FieldPiece(end=1.0, base=0.70, rel=0.04, lo=0.35, hi=0.80,
                       dip_prob=0.05, dip_lo=0.42, dip_hi=0.55),
        ),
        # Latency 1.5-10 ms typical, spikes toward 100 ms.
        "access": (
            FieldPiece(end=1.0, base=0.35e-3, rel=0.5, lo=0.05e-3,
                       spike_prob=0.025, spike_magnitude=8e-3),
        ),
    },
    # Mild live asymmetry (§5.3).
    loss_model=LossModel(up_scale=1.25, down_scale=0.8),
)


@register
class PorterScenario(SpecScenario):
    """Inter-building walk from Wean Hall to and through Porter Hall."""

    spec = PORTER_SPEC
