"""Seeded scenario generator: random-but-valid specs for fuzzing.

:func:`generate_spec` deterministically derives one
:class:`~repro.scenarios.spec.ScenarioSpec` from ``(seed, index)``
through the same :func:`~repro.sim.rng.derive_seed` stream-splitting
the trial RNG uses, so a fuzz corpus is byte-reproducible: the same
seed always yields the same specs in the same order, on any worker
layout.

Four generation kinds, weighted toward the piecewise shape the paper
scenarios use:

* ``piecewise`` — hand-written-style random piecewise curves,
* ``mobility`` — random waypoint paths through a path-loss model,
* ``ran`` — a statistical RAN cell (random technology + overrides),
* ``leo`` — a random satellite pass.

Every generated spec passes ``validate()`` *and* stays inside
parameter envelopes chosen so a 25 KB FTP trial finishes well inside
the harness's simulated-time cap — sustained loss stays below ~0.35,
bandwidth keeps a floor, durations are tens of seconds.  A generated
spec carries a ``generator`` provenance stamp
(``repro.fuzz/v<version> seed=<s> index=<i>``), which is what makes
fuzz artifacts distinguishable in ``repro scenarios --json``.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..sim.rng import derive_seed
from .base import Checkpoint
from .leo import LeoFamily
from .mobility import MOBILITY_MODELS, MobilityFamily
from .ran import RAN_TECHNOLOGIES, FieldDist, RanFamily
from .spec import (
    DEFAULT_DRAW_ORDER,
    FieldPiece,
    LossModel,
    ScenarioSpec,
    SpecScenario,
)

GENERATOR_VERSION = 1

GENERATOR_KINDS = ("piecewise", "mobility", "ran", "leo")
_KIND_WEIGHTS = (4, 2, 2, 1)

# Trial-feasibility envelopes: sustained loss and bandwidth floors that
# keep a 25 KB transfer far from the harness's simulated-time cap.
_MAX_BASE_LOSS = 0.30
_MIN_BANDWIDTH = 0.15
_DURATION_RANGE = (24.0, 90.0)


def _stamp(seed: int, index: int) -> str:
    return f"repro.fuzz/v{GENERATOR_VERSION} seed={seed} index={index}"


def _gen_checkpoints(rng: random.Random) -> Tuple[Checkpoint, ...]:
    count = rng.randint(0, 4)
    fractions = sorted(round(rng.uniform(0.0, 1.0), 3)
                       for _ in range(count))
    return tuple(Checkpoint(f"p{i}", frac)
                 for i, frac in enumerate(fractions))


def _gen_piece(rng: random.Random, fname: str, end: float) -> FieldPiece:
    dist = rng.choices(("gauss", "lognormal", "uniform"),
                       weights=(6, 2, 2))[0]
    if fname == "signal":
        base = rng.uniform(2.0, 25.0)
        kwargs: Dict[str, Any] = dict(base=base,
                                      rel=rng.uniform(0.05, 0.4),
                                      lo=0.5, hi=30.0)
    elif fname == "loss":
        base = rng.uniform(0.0, _MAX_BASE_LOSS)
        kwargs = dict(base=base, rel=rng.uniform(0.2, 0.7),
                      lo=0.0, hi=min(0.5, base + 0.15))
        if rng.random() < 0.25:
            kwargs.update(dip_prob=rng.uniform(0.0, 0.1),
                          dip_lo=0.0, dip_hi=min(0.4, base + 0.1))
    elif fname == "bandwidth":
        base = rng.uniform(_MIN_BANDWIDTH + 0.05, 0.9)
        kwargs = dict(base=base, rel=rng.uniform(0.02, 0.15),
                      lo=_MIN_BANDWIDTH, hi=0.95)
    else:  # access
        base = rng.uniform(0.2e-3, 40e-3)
        kwargs = dict(base=base, rel=rng.uniform(0.1, 0.5),
                      lo=0.1e-3, hi=0.2)
        if rng.random() < 0.2:
            kwargs.update(spike_prob=rng.uniform(0.0, 0.05),
                          spike_magnitude=rng.uniform(1e-3, 20e-3))
    if dist == "uniform" and rng.random() < 0.5:
        kwargs["slope"] = rng.uniform(-0.3, 0.3) * abs(kwargs["base"])
    elif dist == "gauss" and rng.random() < 0.4:
        kwargs["slope"] = rng.uniform(-0.4, 0.4) * abs(kwargs["base"])
    return FieldPiece(end=end, dist=dist, **kwargs)


def _gen_piecewise_fields(rng: random.Random) -> Dict[str, Tuple[FieldPiece, ...]]:
    fields = {}
    for fname in DEFAULT_DRAW_ORDER:
        count = rng.randint(1, 4)
        ends = sorted(round(rng.uniform(0.08, 0.95), 3)
                      for _ in range(count - 1))
        # Strictly increasing ends, final piece at 1.0.
        uniq = []
        for e in ends:
            if not uniq or e > uniq[-1]:
                uniq.append(e)
        uniq.append(1.0)
        fields[fname] = tuple(_gen_piece(rng, fname, end) for end in uniq)
    return fields


def _gen_mobility(rng: random.Random) -> MobilityFamily:
    model = rng.choice(MOBILITY_MODELS)
    count = rng.randint(3, 6)
    fracs = [0.0] + sorted(round(rng.uniform(0.05, 0.95), 3)
                           for _ in range(count - 2)) + [1.0]
    # Keep at least one waypoint near the base station so the link is
    # usable for part of the traversal (feasibility envelope).
    near = rng.randrange(len(fracs))
    waypoints = []
    for i, u in enumerate(fracs):
        if i == near:
            radius = rng.uniform(5.0, 60.0)
        else:
            radius = rng.uniform(20.0, 420.0)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        waypoints.append((u, round(radius * math.cos(angle), 2),
                          round(radius * math.sin(angle), 2)))
    return MobilityFamily(
        waypoints=tuple(waypoints),
        model=model,
        tx_power_dbm=rng.uniform(15.0, 26.0),
        ref_loss_db=rng.uniform(30.0, 45.0),
        path_loss_exponent=rng.uniform(2.0, 3.5),
        base_antenna_m=rng.uniform(3.0, 15.0),
        mobile_antenna_m=rng.uniform(1.0, 2.5),
        sensitivity_dbm=rng.uniform(-95.0, -82.0),
        shadowing_db=rng.uniform(1.0, 6.0),
        good_margin_db=rng.uniform(15.0, 30.0),
        samples=rng.choice((24, 32, 48, 60)),
    )


def _gen_ran(rng: random.Random) -> RanFamily:
    kwargs: Dict[str, Any] = {"technology": rng.choice(RAN_TECHNOLOGIES)}
    if rng.random() < 0.5:
        kwargs["loss"] = FieldDist(
            "lognormal", center=rng.uniform(0.001, 0.05),
            spread=rng.uniform(0.3, 0.9), hi=0.30)
    if rng.random() < 0.4:
        kwargs["bandwidth"] = FieldDist(
            "uniform", center=rng.uniform(0.3, 0.8),
            spread=rng.uniform(0.05, 0.3), lo=_MIN_BANDWIDTH, hi=0.95)
    if rng.random() < 0.3:
        kwargs["access"] = FieldDist(
            "lognormal", center=rng.uniform(0.5e-3, 20e-3),
            spread=rng.uniform(0.2, 0.7), lo=0.1e-3, hi=0.1)
    return RanFamily(**kwargs)


def _gen_leo(rng: random.Random) -> LeoFamily:
    min_elev = rng.uniform(5.0, 35.0)
    horizon_sig = rng.uniform(4.0, 12.0)
    loss_peak = rng.uniform(0.0, 0.01)
    bw_horizon = rng.uniform(0.2, 0.5)
    return LeoFamily(
        altitude_km=rng.uniform(300.0, 1400.0),
        min_elevation_deg=min_elev,
        peak_elevation_deg=rng.uniform(min_elev + 15.0, 90.0),
        processing_delay_s=rng.uniform(0.001, 0.01),
        peak_signal_db=horizon_sig + rng.uniform(5.0, 18.0),
        horizon_signal_db=horizon_sig,
        loss_peak=loss_peak,
        loss_horizon=loss_peak + rng.uniform(0.005, 0.08),
        bandwidth_peak=bw_horizon + rng.uniform(0.1, 0.45),
        bandwidth_horizon=bw_horizon,
        samples=rng.choice((24, 32, 48)),
    )


def generate_spec(seed: int, index: int,
                  kinds: Optional[Sequence[str]] = None) -> ScenarioSpec:
    """The ``index``-th random-but-valid spec of stream ``seed``."""
    kinds = tuple(kinds) if kinds else GENERATOR_KINDS
    for kind in kinds:
        if kind not in GENERATOR_KINDS:
            raise ValueError(f"unknown generator kind {kind!r}; "
                             f"choose from {GENERATOR_KINDS}")
    rng = random.Random(derive_seed(
        seed, f"scenario-gen:{GENERATOR_VERSION}:{index}"))
    weights = [_KIND_WEIGHTS[GENERATOR_KINDS.index(k)] for k in kinds]
    kind = rng.choices(kinds, weights=weights)[0]
    name = f"fuzz-s{seed}-i{index:04d}"
    duration = round(rng.uniform(*_DURATION_RANGE), 1)
    checkpoints = _gen_checkpoints(rng)
    loss_model = LossModel(
        up_scale=round(rng.uniform(0.8, 1.3), 3),
        up_cap=round(rng.uniform(0.5, 0.95), 3)
        if rng.random() < 0.5 else None,
        down_scale=round(rng.uniform(0.7, 1.1), 3),
    )
    family = None
    if kind == "piecewise":
        fields = _gen_piecewise_fields(rng)
    else:
        family = {"mobility": _gen_mobility, "ran": _gen_ran,
                  "leo": _gen_leo}[kind](rng)
        fields = family.compile_fields()
    spec = ScenarioSpec(
        name=name,
        duration=duration,
        checkpoints=checkpoints,
        cross_laptops=rng.choices((0, 1, 2), weights=(8, 1, 1))[0],
        has_motion=kind not in ("ran", "leo"),
        fields=fields,
        loss_model=loss_model,
        description=f"generated {kind} scenario",
        family=family,
        generator=_stamp(seed, index),
    )
    return spec.validate()


def generate_specs(seed: int, count: int,
                   kinds: Optional[Sequence[str]] = None,
                   start: int = 0) -> Iterator[ScenarioSpec]:
    """``count`` specs of stream ``seed`` starting at ``start``."""
    for index in range(start, start + count):
        yield generate_spec(seed, index, kinds=kinds)


def generated_scenario(seed: int, index: int) -> SpecScenario:
    """A runnable scenario straight from the generator stream."""
    return SpecScenario(generate_spec(seed, index))
