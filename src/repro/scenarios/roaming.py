"""WavePoint roaming and handoffs (§3.1.1 extension).

The paper's infrastructure is "a collection of base stations called
WavePoints that serve as bridges to an Ethernet.  A roaming protocol
triggers handoffs between WavePoints as a WaveLAN host moves."  The
four evaluation scenarios fold handoff effects into their hand-built
profiles; this module models the mechanism explicitly:

* a row of :class:`WavePointSite` placements along the path, each with
  a distance-dependent signal;
* a :class:`RoamingProfile` — a stateful channel profile that tracks
  which WavePoint the mobile is associated with, switches when another
  station's signal exceeds the current one by a hysteresis margin, and
  imposes a brief total outage (deauth/reauth) at each handoff;
* a :class:`RoamingScenario` usable with the whole validation harness,
  whose distilled traces show the handoff signature: latency/loss
  spikes at the coverage boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.wavelan import ChannelConditions, ChannelProfile
from ..sim.rng import derive_seed
from .base import Checkpoint, Scenario, jittered
from .registry import register

DEFAULT_HANDOFF_OUTAGE = 0.35   # seconds of deauth/reauth blackout
DEFAULT_HYSTERESIS = 2.0        # signal units required to switch


@dataclass(frozen=True)
class WavePointSite:
    """One base station along the (normalized) path."""

    position: float             # fraction of the traversal, 0..1
    peak_signal: float = 26.0   # signal level directly underneath
    falloff: float = 45.0       # signal units lost per unit of path

    def signal_at(self, u: float) -> float:
        return max(0.0, self.peak_signal - self.falloff * abs(u - self.position))


def evenly_spaced_sites(count: int, peak_signal: float = 26.0,
                        falloff: float = 45.0) -> Tuple[WavePointSite, ...]:
    """``count`` WavePoints spread along the path with edge margins."""
    if count < 1:
        raise ValueError("need at least one WavePoint")
    return tuple(
        WavePointSite(position=(i + 0.5) / count, peak_signal=peak_signal,
                      falloff=falloff)
        for i in range(count)
    )


class RoamingProfile(ChannelProfile):
    """Channel conditions driven by WavePoint association state.

    The profile is stateful: it must be queried with nondecreasing
    times (which is how the medium and status sampler use it).  The
    association switches when a rival WavePoint beats the current one
    by ``hysteresis``; each switch opens an outage window during which
    every frame is lost and media-access latency spikes.
    """

    def __init__(self, sites: Tuple[WavePointSite, ...], duration: float,
                 seed: int = 0,
                 handoff_outage: float = DEFAULT_HANDOFF_OUTAGE,
                 hysteresis: float = DEFAULT_HYSTERESIS,
                 base_loss: float = 0.004):
        if not sites:
            raise ValueError("need at least one WavePoint site")
        self.sites = sites
        self.duration = duration
        self.handoff_outage = handoff_outage
        self.hysteresis = hysteresis
        self.base_loss = base_loss
        self.rng = random.Random(derive_seed(seed, "roaming"))
        self.current_ap = 0
        self.handoff_until = -1.0
        self.handoff_times: List[float] = []

    # ------------------------------------------------------------------
    def _maybe_handoff(self, t: float, u: float) -> None:
        best = max(range(len(self.sites)),
                   key=lambda i: self.sites[i].signal_at(u))
        if best != self.current_ap:
            gain = (self.sites[best].signal_at(u)
                    - self.sites[self.current_ap].signal_at(u))
            if gain >= self.hysteresis:
                self.current_ap = best
                self.handoff_until = t + self.handoff_outage
                self.handoff_times.append(t)

    def conditions(self, t: float) -> ChannelConditions:
        u = min(1.0, max(0.0, t / self.duration))
        if t >= self.handoff_until:
            self._maybe_handoff(t, u)
        in_handoff = t < self.handoff_until
        signal = self.sites[self.current_ap].signal_at(u)
        signal = jittered(self.rng, max(signal, 0.5), rel=0.10)
        # Weak coverage degrades loss and usable rate smoothly; the
        # handoff itself is a hard outage.
        weakness = max(0.0, (12.0 - signal) / 12.0)
        loss = self.base_loss + 0.05 * weakness ** 2
        bw = max(0.35, 0.78 - 0.3 * weakness)
        access = 0.4e-3 + 2e-3 * weakness
        if in_handoff:
            loss = 1.0
            access = 50e-3
        return ChannelConditions(
            signal_level=signal,
            loss_prob_up=min(1.0, loss * 1.2),
            loss_prob_down=min(1.0, loss * 0.9),
            bandwidth_factor=bw,
            access_latency_mean=access,
        ).clamped()


@register
class RoamingScenario(Scenario):
    """A straight walk under a row of WavePoints with live handoffs."""

    name = "roaming"
    duration = 240.0
    checkpoints = tuple(Checkpoint(f"r{i}", i / 5) for i in range(6))

    def __init__(self, wavepoints: int = 4,
                 handoff_outage: float = DEFAULT_HANDOFF_OUTAGE,
                 hysteresis: float = DEFAULT_HYSTERESIS):
        self.sites = evenly_spaced_sites(wavepoints)
        self.handoff_outage = handoff_outage
        self.hysteresis = hysteresis

    def profile(self, seed: int, trial: int) -> RoamingProfile:
        return RoamingProfile(
            self.sites, self.duration,
            seed=derive_seed(seed, f"{self.name}:trial{trial}"),
            handoff_outage=self.handoff_outage,
            hysteresis=self.hysteresis)

    def base_conditions(self, u, rng):  # pragma: no cover - not used
        raise NotImplementedError("RoamingScenario builds its own profile")

    def expected_handoffs(self) -> int:
        """A straight walk crosses every coverage boundary once."""
        return len(self.sites) - 1

    def cache_token(self) -> dict:
        token = super().cache_token()
        token.update(
            sites=[[s.position, s.peak_signal, s.falloff]
                   for s in self.sites],
            handoff_outage=self.handoff_outage,
            hysteresis=self.hysteresis,
        )
        return token
